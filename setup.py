"""Setup shim enabling ``python setup.py develop`` in the offline sandbox.

The sandbox has no ``wheel`` package, so ``pip install -e .`` cannot build
editable metadata; ``setup.py develop`` performs the equivalent install.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
