"""Node-for-node parity of all evaluators on the tricky path shapes.

The three evaluators (tree reference, naive navigation, schema-driven)
plus the cached-plan entry point must agree on exactly the shapes the
planner special-cases: positional predicates under ``//`` steps (whole
-selection semantics → naive), inner-step attribute/child predicates
(→ hybrid prefix scan), and paths whose result merges several schema
nodes' block lists (→ k-way label merge).
"""

import pytest

from repro.mapping import untyped_document_to_tree
from repro.query import StorageQueryEngine, evaluate_tree
from repro.storage import StorageEngine
from repro.workloads import make_library_document
from repro.xmlio import parse_document, serialize_document

_SHELF_DOC = """<lib>
  <book lang="en" year="1977"><t>Illusions</t><a>Bach</a></book>
  <book lang="ru"><t>Dead Souls</t></book>
  <book lang="en"><t>Ulysses</t><a>Joyce</a><a>Other</a></book>
  <shelf>
    <book lang="fr"><t>Nausea</t><a>Sartre</a></book>
    <book lang="en"><t>Molloy</t></book>
  </shelf>
</lib>"""

#: Positional predicates under // steps (whole-selection semantics).
DESCENDANT_POSITIONAL = (
    "//book[1]",
    "//book[2]/t",
    "//book[last()]",
    "//t[1]",
    "//a[last()]",
    "//book[4]/t",
    "//book[9]",
)

#: Predicates on inner steps (the hybrid strategy's territory).
INNER_PREDICATES = (
    "/lib/book[@lang='en']/t",
    "/lib/book[@lang='en'][2]/t",
    "/lib/book[@year]/a",
    "/lib/book[a]/t",
    "/lib/book[a='Joyce']/t",
    "//book[@lang='en']/t",
    "//book[@lang]/a",
    "//book[a]/t",
    "/lib/book[1]/a",
    "/lib/book[last()]/a",
    "/lib/shelf/book[@lang='fr']/a",
    "/lib/book[@zzz]/t",
)

#: Results merged across several schema nodes' block lists.
MULTI_SCHEMA_MERGES = (
    "//book",
    "//t",
    "//a",
    "//t/text()",
    "//book/@lang",
    "/lib/*/t",
)


def _storage_setup(text):
    document = parse_document(text)
    engine = StorageEngine()
    engine.load_document(document)
    return engine, StorageQueryEngine(engine)


@pytest.fixture(scope="module")
def shelf():
    tree = untyped_document_to_tree(parse_document(_SHELF_DOC))
    engine, queries = _storage_setup(_SHELF_DOC)
    return tree, engine, queries


@pytest.fixture(scope="module")
def library():
    text = serialize_document(
        make_library_document(books=25, papers=25, seed=11))
    tree = untyped_document_to_tree(parse_document(text))
    engine, queries = _storage_setup(text)
    return tree, engine, queries


def _assert_parity(tree, engine, queries, path):
    """All four evaluation routes agree node-for-node."""
    from_tree = [node.string_value()
                 for node in evaluate_tree(tree, path)]
    naive = queries.evaluate_naive(path)
    driven = queries.evaluate_schema_driven(path)
    cached_cold = queries.evaluate(path)
    cached_warm = queries.evaluate(path)
    # Node-for-node: identical labels in identical order.
    assert [d.nid for d in driven] == [d.nid for d in naive]
    assert [d.nid for d in cached_cold] == [d.nid for d in naive]
    assert [d.nid for d in cached_warm] == [d.nid for d in naive]
    # And the storage answer matches the reference semantics.
    assert [engine.string_value(d) for d in naive] == from_tree


@pytest.mark.parametrize("path", DESCENDANT_POSITIONAL)
def test_descendant_positional_parity(shelf, path):
    _assert_parity(*shelf, path)


@pytest.mark.parametrize("path", INNER_PREDICATES)
def test_inner_predicate_parity(shelf, path):
    _assert_parity(*shelf, path)


@pytest.mark.parametrize("path", MULTI_SCHEMA_MERGES)
def test_multi_schema_merge_parity(shelf, path):
    _assert_parity(*shelf, path)


@pytest.mark.parametrize(
    "path",
    DESCENDANT_POSITIONAL[:4] + INNER_PREDICATES[:6]
    + MULTI_SCHEMA_MERGES[:4])
def test_parity_on_scaled_library(library, path):
    """The same shapes over the scaled Example 8 workload (paths that
    name the shelf fixture's tags simply select nothing here — the
    empty results must also agree)."""
    _assert_parity(*library, path)


def test_merge_results_stay_in_document_order(library):
    _tree, _engine, queries = library
    for path in MULTI_SCHEMA_MERGES:
        symbols = [d.nid.symbols() for d in queries.evaluate(path)]
        assert symbols == sorted(symbols)
