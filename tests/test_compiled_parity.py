"""Closure-chain executors agree node-for-node with interpreted plans.

The lowering of :mod:`repro.query.compiled` must be invisible to every
caller: for each query of the parity corpus, ``execute_compiled`` (the
cached hot path) returns nid-identical results to the interpreted
``execute`` — for every strategy the planner emits (scan / hybrid /
empty / naive / index), after DDL (closure chains re-lower against the
fresh probe bindings) and after data mutations (schema-bound closures
see live block chains, so no recompilation is needed or taken).
"""

import pytest

from repro.query import StorageQueryEngine
from repro.storage import StorageEngine
from repro.workloads import make_library_document
from repro.xmlio import parse_document, serialize_document
from repro.xmlio.qname import QName

from tests.test_query_parity import (
    _SHELF_DOC,
    DESCENDANT_POSITIONAL,
    INNER_PREDICATES,
    MULTI_SCHEMA_MERGES,
)

#: The full parity corpus — every shape the planner special-cases.
CORPUS = DESCENDANT_POSITIONAL + INNER_PREDICATES + MULTI_SCHEMA_MERGES


def _setup(text):
    engine = StorageEngine()
    engine.load_document(parse_document(text))
    return engine, StorageQueryEngine(engine)


def _nids(descriptors):
    return [descriptor.nid for descriptor in descriptors]


def _assert_compiled_parity(queries, path):
    """Interpreted plan, closure chain (cold and warm) and the naive
    navigator agree node-for-node."""
    plan = queries.compile(path)
    interpreted = _nids(plan.execute(queries))
    cold = _nids(plan.execute_compiled(queries))
    assert plan.executor is not None, "lowering did not happen"
    warm = _nids(plan.execute_compiled(queries))
    naive = _nids(queries.evaluate_naive(path))
    assert cold == interpreted
    assert warm == interpreted
    assert interpreted == naive
    return plan


@pytest.fixture(scope="module")
def shelf_queries():
    return _setup(_SHELF_DOC)[1]


@pytest.fixture(scope="module")
def library_queries():
    text = serialize_document(
        make_library_document(books=25, papers=25, seed=11))
    return _setup(text)[1]


@pytest.mark.parametrize("path", CORPUS)
def test_shelf_corpus_compiled_parity(shelf_queries, path):
    _assert_compiled_parity(shelf_queries, path)


@pytest.mark.parametrize("path", CORPUS)
def test_library_corpus_compiled_parity(library_queries, path):
    _assert_compiled_parity(library_queries, path)


def test_corpus_covers_the_interpreter_strategies(shelf_queries):
    """The corpus exercises every non-index strategy, so the parity
    runs above are not vacuous."""
    strategies = {shelf_queries.compile(path).strategy
                  for path in CORPUS}
    assert {"scan", "hybrid", "naive", "empty"} <= strategies


class TestIndexStrategyParity:
    """Compiled parity for index-answered plans, across DDL."""

    @pytest.fixture()
    def setup(self):
        engine, queries = _setup(_SHELF_DOC)
        return engine, queries

    def test_value_index_probe_parity(self, setup):
        engine, queries = setup
        engine.create_index("lib/book/@lang")
        plan = _assert_compiled_parity(queries,
                                       "/lib/book[@lang='en']/t")
        assert plan.strategy == "index"

    def test_element_value_index_via_parent_parity(self, setup):
        engine, queries = setup
        engine.create_index("lib/book/a")
        plan = _assert_compiled_parity(queries, "/lib/book[a='Joyce']/t")
        assert plan.strategy == "index"

    def test_path_index_probe_parity(self, setup):
        engine, queries = setup
        engine.create_index("//a", kind="path")
        plan = _assert_compiled_parity(queries, "//a")
        assert plan.strategy == "index"

    def test_ddl_restamp_drops_the_stale_executor(self, setup):
        """CREATE INDEX on an unrelated path restamps the plan in
        place — but the closure chain is dropped and re-lowered, so it
        can never run against dead probe bindings."""
        engine, queries = setup
        path = "/lib/book[@lang='en']/t"
        plan = queries.compile(path)
        plan.execute_compiled(queries)
        assert plan.executor is not None
        engine.create_index("lib/book/@year")
        restamped = queries.compile(path)
        assert restamped is plan  # decision unchanged: kept in place
        assert plan.executor is None  # ...but the chain was dropped
        _assert_compiled_parity(queries, path)

    def test_create_then_drop_index_keeps_parity(self, setup):
        engine, queries = setup
        path = "/lib/book[@lang='en']/t"
        before_ddl = _assert_compiled_parity(queries, path)
        assert before_ddl.strategy == "hybrid"
        engine.create_index("lib/book/@lang")
        with_index = _assert_compiled_parity(queries, path)
        assert with_index.strategy == "index"
        engine.drop_index("lib/book/@lang")
        after_drop = _assert_compiled_parity(queries, path)
        assert after_drop.strategy == "hybrid"


class TestMutationParity:
    """Warm closure chains see data mutations without recompiling."""

    PATHS = ("/lib/book/t", "/lib/book[@lang='en']/t", "//a",
             "/lib/book[a]/t", "//book/@lang")

    @pytest.fixture()
    def setup(self):
        engine, queries = _setup(_SHELF_DOC)
        # Warm every executor before mutating.
        for path in self.PATHS:
            queries.evaluate(path)
        return engine, queries

    def _assert_all(self, queries):
        for path in self.PATHS:
            assert (_nids(queries.evaluate(path))
                    == _nids(queries.evaluate_naive(path)))

    def test_same_schema_insert_reuses_the_warm_executor(self, setup):
        engine, queries = setup
        path = "/lib/book/t"
        plan = queries.compile(path)
        executor = plan.executor
        assert executor is not None
        lib = engine.children(engine.document)[0]
        book = engine.insert_child(lib, 0, name=QName("", "book"))
        engine.insert_child(book, 0, name=QName("", "t"))
        engine.set_attribute(book, QName("", "lang"), "en")
        # No new schema path: the very same closure chain serves the
        # grown data.
        assert queries.compile(path).executor is executor
        self._assert_all(queries)

    def test_schema_growing_insert_invalidates_the_plan(self, setup):
        engine, queries = setup
        stale = queries.compile("/lib/book/t")
        lib = engine.children(engine.document)[0]
        engine.insert_child(lib, 0, name=QName("", "magazine"))
        fresh = queries.compile("/lib/book/t")
        assert fresh is not stale
        self._assert_all(queries)

    def test_delete_subtree_keeps_parity(self, setup):
        engine, queries = setup
        lib = engine.children(engine.document)[0]
        engine.delete_subtree(engine.children(lib)[0])
        self._assert_all(queries)

    def test_attribute_value_update_keeps_parity(self, setup):
        engine, queries = setup
        lib = engine.children(engine.document)[0]
        first_book = engine.children(lib)[0]
        engine.set_attribute(first_book, QName("", "lang"), "de",
                             replace=True)
        self._assert_all(queries)
