"""Unit tests for the from-scratch XML parser."""

import pytest

from repro.errors import XmlSyntaxError
from repro.xmlio import (
    QName,
    XmlElement,
    XmlText,
    parse_document,
    parse_element,
)


class TestBasicParsing:
    def test_minimal_document(self):
        doc = parse_document("<a/>")
        assert doc.root.name == QName("", "a")
        assert doc.root.children == []
        assert doc.root.attributes == {}

    def test_element_with_text(self):
        root = parse_element("<a>hello</a>")
        assert len(root.children) == 1
        assert isinstance(root.children[0], XmlText)
        assert root.children[0].text == "hello"

    def test_nested_elements(self):
        root = parse_element("<a><b/><c><d/></c></a>")
        names = [c.name.local for c in root.element_children()]
        assert names == ["b", "c"]
        assert root.element_children()[1].element_children()[0].name.local == "d"

    def test_attributes(self):
        root = parse_element('<a x="1" y="two"/>')
        assert root.get("x") == "1"
        assert root.get("y") == "two"
        assert root.get("z") is None
        assert root.get("z", "dflt") == "dflt"

    def test_attribute_order_preserved(self):
        root = parse_element('<a b="1" a="2" c="3"/>')
        assert [q.local for q in root.attributes] == ["b", "a", "c"]

    def test_single_quoted_attribute(self):
        root = parse_element("<a x='v'/>")
        assert root.get("x") == "v"

    def test_mixed_content(self):
        root = parse_element("<p>one<b>two</b>three</p>")
        kinds = ["text" if isinstance(c, XmlText) else "elem"
                 for c in root.children]
        assert kinds == ["text", "elem", "text"]
        assert root.text_content() == "onetwothree"

    def test_xml_declaration(self):
        doc = parse_document('<?xml version="1.0" encoding="UTF-8"?>\n<a/>')
        assert doc.root.name.local == "a"

    def test_doctype_skipped(self):
        doc = parse_document('<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>')
        assert doc.root.name.local == "a"

    def test_comments_skipped(self):
        root = parse_element("<a><!-- hidden --><b/><!-- more --></a>")
        assert [c.name.local for c in root.element_children()] == ["b"]

    def test_processing_instruction_skipped(self):
        root = parse_element("<a><?target data?><b/></a>")
        assert [c.name.local for c in root.element_children()] == ["b"]

    def test_base_uri_recorded(self):
        doc = parse_document("<a/>", base_uri="http://example.org/doc.xml")
        assert doc.base_uri == "http://example.org/doc.xml"


class TestCharacterData:
    def test_predefined_entities(self):
        root = parse_element("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert root.text_content() == "<>&'\""

    def test_decimal_character_reference(self):
        root = parse_element("<a>&#65;&#66;</a>")
        assert root.text_content() == "AB"

    def test_hex_character_reference(self):
        root = parse_element("<a>&#x41;&#x1F600;</a>")
        assert root.text_content() == "A\U0001F600"

    def test_cdata_section(self):
        root = parse_element("<a><![CDATA[<not> &parsed;]]></a>")
        assert root.text_content() == "<not> &parsed;"

    def test_cdata_merges_with_text(self):
        root = parse_element("<a>x<![CDATA[y]]>z</a>")
        assert len(root.children) == 1
        assert root.text_content() == "xyz"

    def test_entity_in_attribute(self):
        root = parse_element('<a x="a&amp;b&lt;c"/>')
        assert root.get("x") == "a&b<c"

    def test_attribute_whitespace_normalized(self):
        root = parse_element('<a x="a\n b\tc"/>')
        assert root.get("x") == "a  b c"

    def test_crlf_normalized_in_content(self):
        root = parse_element("<a>l1\r\nl2\rl3</a>")
        assert root.text_content() == "l1\nl2\nl3"

    def test_adjacent_text_merged(self):
        root = parse_element("<a>x&amp;y</a>")
        assert len(root.children) == 1


class TestNamespaces:
    def test_default_namespace(self):
        root = parse_element('<a xmlns="urn:x"><b/></a>')
        assert root.name == QName("urn:x", "a")
        assert root.element_children()[0].name == QName("urn:x", "b")

    def test_prefixed_namespace(self):
        root = parse_element('<p:a xmlns:p="urn:p"/>')
        assert root.name == QName("urn:p", "a")
        assert root.name.prefix == "p"

    def test_unprefixed_attribute_has_no_namespace(self):
        root = parse_element('<a xmlns="urn:x" k="v"/>')
        assert root.attributes == {QName("", "k"): "v"}

    def test_prefixed_attribute(self):
        root = parse_element('<a xmlns:p="urn:p" p:k="v"/>')
        assert root.attributes == {QName("urn:p", "k"): "v"}

    def test_namespace_scoping(self):
        root = parse_element(
            '<a xmlns="urn:outer"><b xmlns="urn:inner"><c/></b><d/></a>')
        b, d = root.element_children()
        assert b.name.uri == "urn:inner"
        assert b.element_children()[0].name.uri == "urn:inner"
        assert d.name.uri == "urn:outer"

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(XmlSyntaxError):
            parse_element("<p:a/>")

    def test_xml_prefix_is_builtin(self):
        root = parse_element('<a xml:lang="en"/>')
        (qname,) = root.attributes
        assert qname.uri == "http://www.w3.org/XML/1998/namespace"

    def test_qname_equality_ignores_prefix(self):
        assert QName("urn:x", "n", "p") == QName("urn:x", "n", "q")
        assert hash(QName("urn:x", "n", "p")) == hash(QName("urn:x", "n", "q"))


class TestWellFormednessErrors:
    @pytest.mark.parametrize("text", [
        "",
        "just text",
        "<a>",
        "<a></b>",
        "<a><b></a></b>",
        "<a/><b/>",
        "<a x=1/>",
        '<a x="1" x="2"/>',
        "<a><b/>",
        '<a x="<"/>',
        "<a>&undefined;</a>",
        "<a>&#xZZ;</a>",
        "<a>]]></a>",
        "<a><!-- -- --></a>",
        "<1a/>",
        "<a><?xml bad?></a>",
        '<a xmlns:p=""/>',
        "<a b:c='1'/>",
    ])
    def test_rejected(self, text):
        with pytest.raises(XmlSyntaxError):
            parse_document(text)

    def test_error_carries_position(self):
        with pytest.raises(XmlSyntaxError) as exc_info:
            parse_document("<a>\n  <b></c>\n</a>")
        assert exc_info.value.line == 2

    def test_content_after_root_rejected(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("<a/>trailing")


class TestNodeHelpers:
    def test_find_and_find_all(self):
        root = parse_element("<a><b i='1'/><c/><b i='2'/></a>")
        assert root.find("b").get("i") == "1"
        assert root.find("missing") is None
        assert [e.get("i") for e in root.find_all("b")] == ["1", "2"]

    def test_iter_preorder(self):
        root = parse_element("<a><b><c/></b><d/></a>")
        assert [e.name.local for e in root.iter()] == ["a", "b", "c", "d"]

    def test_append_merges_text(self):
        element = XmlElement(QName("", "a"))
        element.append(XmlText("x"))
        element.append(XmlText("y"))
        assert len(element.children) == 1
        assert element.text_content() == "xy"
