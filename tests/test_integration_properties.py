"""Cross-cutting property tests over the whole stack.

These tie the layers together: content equality is an equivalence
relation; random conforming instances survive every representation
change (tree → text → tree, tree → storage) unharmed; document order
stays a strict total order under mutation; storage accessors agree
with the formal model on arbitrary instances.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import InstanceBuilder, check_conformance
from repro.mapping import (
    content_equal,
    document_to_tree,
    tree_to_document,
    untyped_document_to_tree,
)
from repro.order import document_order, is_total_order
from repro.schema import parse_schema
from repro.storage import StorageEngine
from repro.xmlio import parse_document, serialize_document
from repro.workloads import make_library_document
from repro.workloads.fixtures import (
    EXAMPLE_6_SCHEMA,
    LIBRARY_SCHEMA,
    wrap_in_schema,
)

_seeds = st.integers(min_value=0, max_value=10**9)

# A schema exercising every §6.2 branch: choice, repetition, nil,
# attributes, simple content and mixed content.
_KITCHEN_SINK = wrap_in_schema("""
 <xsd:complexType name="Entry">
  <xsd:sequence>
   <xsd:element name="label" type="xsd:string" nillable="true"/>
   <xsd:choice minOccurs="0" maxOccurs="3">
    <xsd:element name="num" type="xsd:integer"/>
    <xsd:element name="flag" type="xsd:boolean"/>
   </xsd:choice>
  </xsd:sequence>
  <xsd:attribute name="id" type="xsd:string"/>
 </xsd:complexType>
 <xsd:element name="log">
  <xsd:complexType mixed="true">
   <xsd:sequence>
    <xsd:element name="entry" type="Entry"
                 minOccurs="0" maxOccurs="unbounded"/>
   </xsd:sequence>
  </xsd:complexType>
 </xsd:element>
""")


class TestContentEqualityIsEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(seed=_seeds)
    def test_reflexive(self, seed):
        schema = parse_schema(LIBRARY_SCHEMA)
        document = tree_to_document(
            InstanceBuilder(schema, seed=seed).build())
        assert content_equal(document, document)

    @settings(max_examples=20, deadline=None)
    @given(seed=_seeds)
    def test_symmetric(self, seed):
        schema = parse_schema(LIBRARY_SCHEMA)
        tree = InstanceBuilder(schema, seed=seed).build()
        first = tree_to_document(tree)
        second = parse_document(serialize_document(first))
        assert content_equal(first, second) == content_equal(second,
                                                             first)

    @settings(max_examples=15, deadline=None)
    @given(seed=_seeds)
    def test_transitive_through_representations(self, seed):
        schema = parse_schema(LIBRARY_SCHEMA)
        tree = InstanceBuilder(schema, seed=seed).build()
        a = tree_to_document(tree)
        b = parse_document(serialize_document(a))
        c = tree_to_document(document_to_tree(b, schema))
        assert content_equal(a, b)
        assert content_equal(b, c)
        assert content_equal(a, c)


class TestKitchenSinkRoundTrips:
    @settings(max_examples=30, deadline=None)
    @given(seed=_seeds)
    def test_every_feature_round_trips(self, seed):
        schema = parse_schema(_KITCHEN_SINK)
        builder = InstanceBuilder(schema, seed=seed)
        tree = builder.build()
        assert check_conformance(tree, schema) == []
        text = serialize_document(tree_to_document(tree))
        tree2 = document_to_tree(parse_document(text), schema)
        assert check_conformance(tree2, schema) == []
        assert content_equal(tree_to_document(tree),
                             tree_to_document(tree2))

    @settings(max_examples=15, deadline=None)
    @given(seed=_seeds)
    def test_document_order_is_total_on_random_instances(self, seed):
        schema = parse_schema(_KITCHEN_SINK)
        tree = InstanceBuilder(schema, seed=seed).build()
        if len(document_order(tree)) <= 60:  # keep the O(n²) check sane
            assert is_total_order(tree)


class TestStorageAgreesWithModel:
    @settings(max_examples=20, deadline=None)
    @given(seed=_seeds)
    def test_random_instance_storage_agreement(self, seed):
        schema = parse_schema(EXAMPLE_6_SCHEMA)
        tree = InstanceBuilder(schema, seed=seed).build()
        engine = StorageEngine()
        engine.load_tree(tree)
        engine.check_invariants()

        def compare(node, descriptor):
            assert node.node_kind() == engine.node_kind(descriptor)
            if node.node_kind() == "element":
                assert node.name == engine.node_name(descriptor)
                node_attrs = [(a.node_name().head().local,
                               a.string_value())
                              for a in node.attributes()]
                stored_attrs = [(engine.node_name(d).local, d.value)
                                for d in engine.attributes(descriptor)]
                assert sorted(node_attrs) == sorted(stored_attrs)
                node_children = list(node.children())
                stored_children = engine.children(descriptor)
                assert len(node_children) == len(stored_children)
                for child, stored in zip(node_children, stored_children):
                    compare(child, stored)
            elif node.node_kind() == "text":
                assert node.string_value() == (descriptor.value or "")

        compare(tree.document_element(),
                engine.children(engine.document)[0])

    @settings(max_examples=10, deadline=None)
    @given(seed=_seeds)
    def test_string_values_agree_everywhere(self, seed):
        schema = parse_schema(LIBRARY_SCHEMA)
        tree = InstanceBuilder(schema, seed=seed).build()
        engine = StorageEngine()
        engine.load_tree(tree)
        root = tree.document_element()
        stored_root = engine.children(engine.document)[0]
        assert root.string_value() == engine.string_value(stored_root)


class TestUpdateStormProperties:
    @pytest.mark.parametrize("seed", range(3))
    def test_storage_document_order_matches_labels(self, seed):
        """After a random update storm, the document-order traversal
        and the label order agree over all descriptors."""
        from repro.storage import before
        from repro.xmlio import QName
        engine = StorageEngine(block_capacity=4)
        engine.load_document(make_library_document(4, 4, seed=seed))
        rng = random.Random(seed)
        for step in range(60):
            elements = [d for d in engine.iter_document_order()
                        if d.node_type == "element"]
            parent = rng.choice(elements)
            index = rng.randint(0, len(engine.children(parent)))
            if rng.random() < 0.5:
                engine.insert_child(parent, index,
                                    name=QName("", f"x{step % 5}"))
            else:
                engine.insert_child(parent, index, text=f"t{step}")
        ordered = list(engine.iter_document_order())
        for a, b in zip(ordered, ordered[1:]):
            assert before(a.nid, b.nid)
        assert engine.relabel_count == 0
