"""Tests for the baseline numbering schemes and the update workload."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.numbering import (
    DeweyBaseline,
    IntervalBaseline,
    SednaAdapter,
    SimTree,
    UpdateWorkload,
    structural_before,
    structural_is_ancestor,
)


def _all_schemes(tree):
    return [SednaAdapter(tree), DeweyBaseline(tree),
            IntervalBaseline(tree)]


class TestSimTree:
    def test_uniform_build(self):
        tree = SimTree()
        tree.build_uniform(depth=2, fanout=3)
        assert tree.size() == 1 + 3 + 9

    def test_insert_and_delete(self):
        tree = SimTree()
        child = tree.insert(tree.root, 0)
        grand = tree.insert(child, 0)
        assert tree.size() == 3
        tree.delete(child)
        assert tree.size() == 1
        assert grand.parent is child  # subtree stays linked internally

    def test_structural_relations(self):
        tree = SimTree()
        a = tree.insert(tree.root, 0)
        b = tree.insert(tree.root, 1)
        c = tree.insert(a, 0)
        assert structural_before(a, b)
        assert structural_before(c, b)
        assert structural_is_ancestor(a, c)
        assert not structural_is_ancestor(a, b)


class TestSchemeCorrectness:
    @pytest.mark.parametrize("make", [
        SednaAdapter, DeweyBaseline, IntervalBaseline])
    def test_initial_labels_respect_structure(self, make):
        tree = SimTree()
        tree.build_uniform(depth=3, fanout=3)
        scheme = make(tree)
        scheme.load()
        nodes = tree.document_order()
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                assert scheme.before(a, b)
                assert not scheme.before(b, a)
                assert scheme.is_ancestor(a, b) == \
                    structural_is_ancestor(a, b)

    @pytest.mark.parametrize("make", [
        SednaAdapter, DeweyBaseline, IntervalBaseline])
    def test_insert_keeps_relations(self, make):
        tree = SimTree()
        tree.build_uniform(depth=2, fanout=3)
        scheme = make(tree)
        scheme.load()
        target = tree.root.children[1]
        node = tree.insert(target, 1)
        scheme.on_insert(node)
        nodes = tree.document_order()
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                assert scheme.before(a, b), (scheme.name, a, b)

    @pytest.mark.parametrize("make", [
        SednaAdapter, DeweyBaseline, IntervalBaseline])
    def test_delete_keeps_relations(self, make):
        tree = SimTree()
        tree.build_uniform(depth=2, fanout=3)
        scheme = make(tree)
        scheme.load()
        victim = tree.root.children[0]
        scheme.on_delete(victim)
        tree.delete(victim)
        nodes = tree.document_order()
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                assert scheme.before(a, b), (scheme.name, a, b)


class TestRelabelCounts:
    def test_sedna_never_relabels(self):
        stats = UpdateWorkload(operations=100, seed=1).run(SednaAdapter)
        assert stats.relabels == 0

    def test_dewey_relabels_siblings(self):
        stats = UpdateWorkload(operations=100, seed=1).run(DeweyBaseline)
        assert stats.relabels > 0

    def test_interval_relabels_most(self):
        workload = UpdateWorkload(operations=100, seed=1)
        dewey = workload.run(DeweyBaseline)
        interval = workload.run(IntervalBaseline)
        assert interval.relabels > dewey.relabels

    def test_front_insertions_worst_case(self):
        """Inserting repeatedly at the very front: Dewey relabels all
        siblings each time, Sedna none."""
        tree_sedna = SimTree()
        sedna = SednaAdapter(tree_sedna)
        sedna.load()
        tree_dewey = SimTree()
        dewey = DeweyBaseline(tree_dewey)
        dewey.load()
        for _ in range(25):
            node = tree_sedna.insert(tree_sedna.root, 0)
            sedna.on_insert(node)
            node = tree_dewey.insert(tree_dewey.root, 0)
            dewey.on_insert(node)
        assert sedna.relabel_count == 0
        assert dewey.relabel_count == sum(range(25))


class TestWorkloadHarness:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_verification_passes_for_all_schemes(self, seed):
        workload = UpdateWorkload(operations=40, seed=seed,
                                  verify_samples=4)
        for make in (SednaAdapter, DeweyBaseline, IntervalBaseline):
            stats = workload.run(make)
            assert stats.checks > 0
            assert stats.operations == 40

    def test_stats_shape(self):
        stats = UpdateWorkload(operations=30, seed=0).run(SednaAdapter)
        assert stats.inserts + stats.deletes == 30
        assert stats.node_count > 0
        assert stats.mean_label_bytes > 0
        assert stats.max_label_bytes >= stats.mean_label_bytes

    def test_workload_is_reproducible(self):
        workload = UpdateWorkload(operations=50, seed=7)
        first = workload.run(SednaAdapter)
        second = workload.run(SednaAdapter)
        assert first.node_count == second.node_count
        assert first.total_label_bytes == second.total_label_bytes
