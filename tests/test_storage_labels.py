"""Tests for the Section 9.3 numbering scheme."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LabelError
from repro.storage import (
    NidLabel,
    NumberingScheme,
    before,
    compare,
    equal,
    is_ancestor,
    is_parent,
    label_length_stats,
)


@pytest.fixture
def scheme():
    return NumberingScheme(base=16)


class TestLabelBasics:
    def test_empty_label_rejected(self):
        with pytest.raises(LabelError):
            NidLabel(())

    def test_symbols_flattening(self):
        label = NidLabel(((3,), (1, 2)))
        # digits shifted +1, separator 0 after each component
        assert label.symbols() == (4, 0, 2, 3, 0)

    def test_len_is_symbol_count(self):
        assert len(NidLabel(((3,), (1, 2)))) == 5

    def test_parent_label(self):
        label = NidLabel(((3,), (5,)))
        assert label.parent_label() == NidLabel(((3,),))

    def test_root_has_no_parent(self):
        with pytest.raises(LabelError):
            NidLabel(((3,),)).parent_label()


class TestComparisonRules:
    """The three rules of Section 9.3, verbatim."""

    def test_document_order_rule_first_difference(self):
        # exists i: prefixes equal, x_i < y_i
        x = NidLabel(((3,), (1,)))
        y = NidLabel(((3,), (2,)))
        assert before(x, y)
        assert not before(y, x)

    def test_document_order_rule_prefix(self):
        # k < n and x is a prefix: ancestor precedes descendant
        x = NidLabel(((3,),))
        y = NidLabel(((3,), (1,)))
        assert before(x, y)

    def test_equality_rule(self):
        assert equal(NidLabel(((3,), (1,))), NidLabel(((3,), (1,))))
        assert not equal(NidLabel(((3,),)), NidLabel(((3,), (1,))))

    def test_parent_rule(self):
        parent = NidLabel(((3,),))
        child = NidLabel(((3,), (7,)))
        grandchild = NidLabel(((3,), (7,), (2,)))
        assert is_parent(parent, child)
        assert is_parent(child, grandchild)
        assert not is_parent(parent, grandchild)
        assert not is_parent(child, parent)

    def test_ancestor_derived_from_parent_rule(self):
        a = NidLabel(((3,),))
        d = NidLabel(((3,), (7,), (2,)))
        assert is_ancestor(a, d)
        assert not is_ancestor(d, a)
        assert not is_ancestor(a, a)

    def test_compare(self):
        x = NidLabel(((1,),))
        y = NidLabel(((2,),))
        assert compare(x, y) == -1
        assert compare(y, x) == 1
        assert compare(x, x) == 0

    def test_sibling_with_longer_component_orders_correctly(self):
        # component (5,) < component (5, 3): the separator is minimal.
        x = NidLabel(((5,),))
        y = NidLabel(((5, 3),))
        assert before(x, y)


class TestMidpoint:
    def test_open_interval(self, scheme):
        component = scheme.midpoint(None, None)
        assert component

    def test_between_adjacent_digits(self, scheme):
        mid = scheme.midpoint((5,), (6,))
        assert (5,) < mid < (6,)

    def test_between_nested(self, scheme):
        mid = scheme.midpoint((5,), (5, 1))
        assert (5,) < mid < (5, 1)

    def test_below_low_digit_bound(self, scheme):
        mid = scheme.midpoint(None, (1,))
        assert () < mid < (1,)

    def test_bounds_out_of_order_rejected(self, scheme):
        with pytest.raises(LabelError):
            scheme.midpoint((6,), (5,))

    def test_never_ends_in_zero(self, scheme):
        rng = random.Random(5)
        low = None
        for _ in range(200):
            mid = scheme.midpoint(low, None)
            assert mid[-1] != 0
            low = mid

    def test_tiny_alphabet_rejected(self):
        with pytest.raises(LabelError):
            NumberingScheme(base=2)


class TestChildLabels:
    def test_child_label_extends_parent(self, scheme):
        root = scheme.root_label()
        child = scheme.child_label(root)
        assert is_parent(root, child)

    def test_child_between_siblings(self, scheme):
        root = scheme.root_label()
        first, second = scheme.child_labels(root, 2)
        middle = scheme.child_label(root, first, second)
        assert before(first, middle)
        assert before(middle, second)
        assert is_parent(root, middle)

    def test_sibling_of_wrong_parent_rejected(self, scheme):
        root = scheme.root_label()
        child = scheme.child_label(root)
        grandchild = scheme.child_label(child)
        with pytest.raises(LabelError):
            scheme.child_label(root, grandchild, None)

    def test_bulk_labels_are_increasing(self, scheme):
        root = scheme.root_label()
        labels = scheme.child_labels(root, 40)
        assert len(labels) == 40
        for a, b in zip(labels, labels[1:]):
            assert before(a, b)

    def test_bulk_labels_short_for_small_fanout(self):
        scheme = NumberingScheme(base=256)
        labels = scheme.child_labels(scheme.root_label(), 50)
        assert all(len(label.components[-1]) == 1 for label in labels)


class TestProposition1:
    """Insertions and deletions never relabel existing nodes."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           base=st.sampled_from([4, 16, 256]))
    def test_random_insertions_keep_existing_labels(self, seed, base):
        scheme = NumberingScheme(base=base)
        root = scheme.root_label()
        rng = random.Random(seed)
        labels: list[NidLabel] = []
        for _ in range(60):
            position = rng.randint(0, len(labels))
            left = labels[position - 1] if position > 0 else None
            right = labels[position] if position < len(labels) else None
            snapshot = list(labels)
            new = scheme.child_label(root, left, right)
            # Existing labels unchanged (they are immutable values, so
            # the stronger claim: the list still orders correctly).
            assert labels == snapshot
            labels.insert(position, new)
            for a, b in zip(labels, labels[1:]):
                assert before(a, b)

    def test_pathological_front_insertion(self):
        scheme = NumberingScheme(base=4)
        root = scheme.root_label()
        first = None
        for _ in range(40):
            new = scheme.child_label(root, None, first)
            if first is not None:
                assert before(new, first)
            first = new

    def test_pathological_pairwise_insertion(self):
        scheme = NumberingScheme(base=8)
        root = scheme.root_label()
        a = scheme.child_label(root)
        b = scheme.child_label(root, a, None)
        for _ in range(30):
            c = scheme.child_label(root, a, b)
            assert before(a, c) and before(c, b)
            b = c


class TestStats:
    def test_label_length_stats(self, scheme):
        root = scheme.root_label()
        labels = scheme.child_labels(root, 5)
        stats = label_length_stats(iter(labels))
        assert stats["count"] == 5
        assert stats["max"] >= stats["mean"] > 0

    def test_empty_stats(self):
        assert label_length_stats(iter([]))["count"] == 0


class TestSpreadProperties:
    @settings(max_examples=60, deadline=None)
    @given(base=st.sampled_from([3, 4, 16, 256]),
           count=st.integers(min_value=1, max_value=800))
    def test_spread_is_strictly_increasing_and_valid(self, base, count):
        scheme = NumberingScheme(base=base)
        components = scheme.spread(count)
        assert len(components) == count
        for a, b in zip(components, components[1:]):
            assert a < b
        for component in components:
            assert component[-1] != 0
            assert all(0 <= digit < base for digit in component)

    @settings(max_examples=30, deadline=None)
    @given(base=st.sampled_from([4, 16, 256]),
           count=st.integers(min_value=2, max_value=300))
    def test_spread_leaves_insertion_gaps(self, base, count):
        """Between any two bulk-loaded siblings a midpoint exists —
        the gap that makes later insertions relabel-free."""
        scheme = NumberingScheme(base=base)
        components = scheme.spread(count)
        for a, b in zip(components, components[1:]):
            mid = scheme.midpoint(a, b)
            assert a < mid < b

    def test_spread_bounds_label_width(self):
        scheme = NumberingScheme(base=256)
        assert max(len(c) for c in scheme.spread(100)) == 1
        assert max(len(c) for c in scheme.spread(5000)) == 2
        assert max(len(c) for c in scheme.spread(30000)) == 2
