"""Tests for the descriptive schema, blocks and the storage engine."""

import random

import pytest

from repro.errors import StorageError
from repro.xmlio import QName, parse_document
from repro.mapping import untyped_document_to_tree
from repro.storage import (
    Block,
    DescriptiveSchema,
    NodeDescriptor,
    NumberingScheme,
    StorageEngine,
    before,
)
from repro.workloads.fixtures import (
    EXAMPLE_8_DESCRIPTIVE_SCHEMA,
    EXAMPLE_8_DOCUMENT,
    EXAMPLE_10_DESCRIPTOR_FIELDS,
)
from repro.workloads import make_library_document, make_irregular_document


@pytest.fixture
def engine():
    engine = StorageEngine(block_capacity=4)
    engine.load_document(parse_document(EXAMPLE_8_DOCUMENT))
    return engine


class TestDescriptiveSchema:
    def test_example_8_descriptive_schema(self, engine):
        """The schema tree of the paper's Example 8 figure, exactly."""
        assert sorted(engine.schema.paths()) == sorted(
            EXAMPLE_8_DESCRIPTIVE_SCHEMA)

    def test_every_document_path_has_one_schema_path(self, engine):
        seen_paths = set()
        for descriptor in engine.iter_document_order():
            steps = []
            node = descriptor
            while node is not None and node.schema_node.node_type \
                    != "document":
                steps.append(node.schema_node.step)
                node = node.parent
            seen_paths.add("/".join(reversed(steps)))
        seen_paths.discard("")
        schema_paths = {path for path, _type in engine.schema.paths()}
        assert seen_paths == schema_paths

    def test_surjective_node_mapping(self, engine):
        """Every schema node has at least one instance (surjectivity)."""
        for schema_node in engine.schema.iter_nodes():
            assert schema_node.descriptor_count >= 1

    def test_find_path(self, engine):
        node = engine.schema.find_path("library/book/issue/year")
        assert node is not None
        assert node.node_type == "element"
        assert engine.schema.find_path("library/nope") is None

    def test_find_path_attribute_and_text_steps(self):
        engine = StorageEngine()
        engine.load_document(parse_document('<a k="v">text</a>'))
        assert engine.schema.find_path("a/@k").node_type == "attribute"
        assert engine.schema.find_path("a/#text").node_type == "text"

    def test_library_schema_node_count_matches_figure(self, engine):
        # document + the 16 (path, type) pairs of the figure.
        assert engine.schema.node_count() == 17


class TestDescriptorLayout:
    def test_example_10_fields_present(self, engine):
        descriptor = engine.children(engine.document)[0]
        for field in EXAMPLE_10_DESCRIPTOR_FIELDS:
            assert hasattr(descriptor, field), field

    def test_short_pointers_are_slots(self, engine):
        for descriptor in engine.iter_document_order():
            block = descriptor.block
            assert block is not None
            if descriptor.next_in_block != -1:
                neighbour = block.slots[descriptor.next_in_block]
                assert neighbour is not None
                assert before(descriptor.nid, neighbour.nid)

    def test_size_accounting(self, engine):
        descriptor = engine.children(engine.document)[0]
        # 3 pointers*8 + 2 shorts*2 + nid + 8 per schema-child pointer
        expected = (24 + 4 + len(descriptor.nid)
                    + 8 * len(descriptor.children_by_schema))
        assert descriptor.size_bytes() == expected

    def test_first_child_by_schema_pointers(self, engine):
        """Only *first* children are stored, per the §9.2 design: the
        library element keeps two pointers (book, paper), not four."""
        library = engine.children(engine.document)[0]
        element_pointers = {
            index: child
            for index, child in library.children_by_schema.items()
            if child.node_type == "element"}
        assert len(element_pointers) == 2
        children = engine.children(library)
        books = [c for c in children
                 if c.schema_node.name and c.schema_node.name.local
                 == "book"]
        papers = [c for c in children
                  if c.schema_node.name and c.schema_node.name.local
                  == "paper"]
        assert books[0] in element_pointers.values()
        assert papers[0] in element_pointers.values()
        assert books[1] not in element_pointers.values()


class TestAccessorsFromStorage:
    """§9.2: descriptor + schema node suffice for every accessor."""

    def test_node_kind(self, engine):
        assert engine.node_kind(engine.document) == "document"
        library = engine.children(engine.document)[0]
        assert engine.node_kind(library) == "element"

    def test_node_name(self, engine):
        library = engine.children(engine.document)[0]
        assert engine.node_name(library) == QName("", "library")
        assert engine.node_name(engine.document) is None

    def test_parent(self, engine):
        library = engine.children(engine.document)[0]
        assert engine.parent(library) is engine.document
        assert engine.parent(engine.document) is None

    def test_children_in_document_order(self, engine):
        library = engine.children(engine.document)[0]
        names = [engine.node_name(c).local
                 for c in engine.children(library)]
        assert names == ["book", "book", "paper", "paper"]

    def test_string_value(self, engine):
        library = engine.children(engine.document)[0]
        first_book = engine.children(library)[0]
        title = engine.children(first_book)[0]
        assert engine.string_value(title) == "Foundations of Databases"
        assert "Abiteboul" in engine.string_value(first_book)

    def test_attributes(self):
        engine = StorageEngine()
        engine.load_document(parse_document('<a x="1" y="2"><b/></a>'))
        a = engine.children(engine.document)[0]
        values = [(engine.node_name(d).local, d.value)
                  for d in engine.attributes(a)]
        assert values == [("x", "1"), ("y", "2")]

    def test_matches_xdm_model(self, engine):
        """Storage accessors agree with the formal model node-for-node."""
        document = parse_document(EXAMPLE_8_DOCUMENT)
        tree = untyped_document_to_tree(document)

        def walk(node, descriptor):
            assert node.node_kind() == engine.node_kind(descriptor)
            node_children = [c for c in node.children()
                             if c.node_kind() != "text"
                             or c.string_value().strip()]
            storage_children = engine.children(descriptor)
            assert len(node_children) == len(storage_children)
            for child, child_descriptor in zip(node_children,
                                               storage_children):
                if child.node_kind() == "element":
                    assert (child.node_name().head()
                            == engine.node_name(child_descriptor))
                    walk(child, child_descriptor)
                else:
                    assert (child.string_value()
                            == engine.string_value(child_descriptor))

        walk(tree.document_element(),
             engine.children(engine.document)[0])


class TestBlocks:
    def test_partial_order_across_blocks(self, engine):
        for schema_node in engine.schema.iter_nodes():
            blocks = list(schema_node.blocks())
            for first, second in zip(blocks, blocks[1:]):
                last = first.last_descriptor()
                head = second.first_descriptor()
                assert before(last.nid, head.nid)

    def test_block_capacity_respected(self, engine):
        for schema_node in engine.schema.iter_nodes():
            for block in schema_node.blocks():
                assert block.count <= block.capacity

    def test_scan_schema_node_in_document_order(self, engine):
        titles = engine.schema.find_path("library/book/title")
        scanned = list(engine.scan_schema_node(titles))
        values = [engine.string_value(d) for d in scanned]
        assert values == ["Foundations of Databases",
                          "An Introduction to Database Systems"]
        for a, b in zip(scanned, scanned[1:]):
            assert before(a.nid, b.nid)

    def test_block_split_preserves_chain(self):
        engine = StorageEngine(block_capacity=2)
        engine.load_document(
            make_library_document(books=20, papers=0, seed=1))
        engine.check_invariants()
        titles = engine.schema.find_path("library/book/title")
        assert titles.block_count() >= 10

    def test_too_small_capacity_rejected(self):
        schema = DescriptiveSchema()
        with pytest.raises(StorageError):
            Block(schema.root, capacity=1)


class TestUpdates:
    def test_insert_between_siblings(self, engine):
        library = engine.children(engine.document)[0]
        inserted = engine.insert_child(library, 1, name=QName("", "book"))
        engine.check_invariants()
        children = engine.children(library)
        assert children[1] is inserted
        assert engine.relabel_count == 0

    def test_insert_text(self, engine):
        library = engine.children(engine.document)[0]
        book = engine.children(library)[0]
        title = engine.children(book)[0]
        old = engine.string_value(title)
        engine.insert_child(title, 1, text="!")
        assert engine.string_value(title) == old + "!"

    def test_insert_extends_descriptive_schema(self, engine):
        before_count = engine.schema.node_count()
        library = engine.children(engine.document)[0]
        engine.insert_child(library, 0, name=QName("", "journal"))
        assert engine.schema.node_count() == before_count + 1
        assert engine.schema.find_path("library/journal") is not None

    def test_insert_bad_argument_combinations(self, engine):
        library = engine.children(engine.document)[0]
        with pytest.raises(StorageError):
            engine.insert_child(library, 0)
        with pytest.raises(StorageError):
            engine.insert_child(library, 0, name=QName("", "x"), text="y")
        with pytest.raises(StorageError):
            engine.insert_child(library, 99, name=QName("", "x"))

    def test_set_attribute(self, engine):
        library = engine.children(engine.document)[0]
        engine.set_attribute(library, QName("", "lang"), "en")
        engine.check_invariants()
        (attribute,) = engine.attributes(library)
        assert attribute.value == "en"

    def test_duplicate_attribute_rejected(self, engine):
        library = engine.children(engine.document)[0]
        engine.set_attribute(library, QName("", "lang"), "en")
        with pytest.raises(StorageError):
            engine.set_attribute(library, QName("", "lang"), "ru")

    def test_delete_subtree(self, engine):
        library = engine.children(engine.document)[0]
        first_book = engine.children(library)[0]
        node_count = engine.node_count()
        removed = engine.delete_subtree(first_book)
        engine.check_invariants()
        assert engine.node_count() == node_count - removed
        names = [engine.node_name(c).local
                 for c in engine.children(library)]
        assert names == ["book", "paper", "paper"]

    def test_delete_document_rejected(self, engine):
        with pytest.raises(StorageError):
            engine.delete_subtree(engine.document)

    def test_first_child_pointer_updates_on_delete(self, engine):
        library = engine.children(engine.document)[0]
        books = [c for c in engine.children(library)
                 if engine.node_name(c).local == "book"]
        engine.delete_subtree(books[0])
        schema_book = engine.schema.find_path("library/book")
        pointer = engine.first_child_by_schema(library, schema_book)
        assert pointer is books[1]

    def test_randomized_update_storm(self):
        """Many random inserts/deletes keep every invariant."""
        engine = StorageEngine(block_capacity=4, base=16)
        engine.load_document(
            make_library_document(books=5, papers=5, seed=0))
        rng = random.Random(42)
        for step in range(120):
            elements = [d for d in engine.iter_document_order()
                        if d.node_type == "element"]
            if rng.random() < 0.65 or len(elements) < 5:
                parent = rng.choice(elements)
                index = rng.randint(0, len(engine.children(parent)))
                if rng.random() < 0.5:
                    engine.insert_child(
                        parent, index, name=QName("", f"e{step % 7}"))
                else:
                    engine.insert_child(parent, index, text=f"t{step}")
            else:
                victims = [d for d in elements
                           if d.parent is not None
                           and d.parent.node_type != "document"]
                if victims:
                    engine.delete_subtree(rng.choice(victims))
            engine.check_invariants()
        assert engine.relabel_count == 0


class TestEngineLoading:
    def test_double_load_rejected(self, engine):
        with pytest.raises(StorageError):
            engine.load_document(parse_document("<x/>"))

    def test_load_tree_equivalent_to_load_document(self):
        document = parse_document(EXAMPLE_8_DOCUMENT)
        from_xml = StorageEngine()
        from_xml.load_document(document)
        tree = untyped_document_to_tree(
            parse_document(EXAMPLE_8_DOCUMENT))
        # strip whitespace-only text from the tree for parity
        from_tree = StorageEngine()
        from_tree.load_document(document)
        paths_a = sorted(from_xml.schema.paths())
        paths_b = sorted(from_tree.schema.paths())
        assert paths_a == paths_b

    def test_preserve_whitespace_option(self):
        engine = StorageEngine()
        engine.load_document(parse_document("<a>\n  <b/>\n</a>"),
                             preserve_whitespace=True)
        a = engine.children(engine.document)[0]
        kinds = [d.node_type for d in engine.children(a)]
        assert kinds == ["text", "element", "text"]

    def test_stats(self, engine):
        assert engine.node_count() == 31
        assert engine.block_count() >= engine.schema.node_count()
        assert engine.size_bytes() > 0
        per_schema = engine.blocks_per_schema_node()
        assert per_schema["library"] == 1

    def test_dataguide_compression(self):
        regular = StorageEngine()
        regular.load_document(make_library_document(200, 200, seed=1))
        assert regular.schema.node_count() == 17
        irregular = StorageEngine()
        irregular.load_document(make_irregular_document(200, seed=1))
        assert irregular.schema.node_count() == 201
