"""Tests for path predicates across all three evaluators."""

import pytest

from repro.errors import QueryError
from repro.xmlio import parse_document
from repro.mapping import untyped_document_to_tree
from repro.query import StorageQueryEngine, evaluate_tree, parse_path
from repro.query.paths import (
    AttributePredicate,
    ChildPredicate,
    PositionPredicate,
)
from repro.storage import StorageEngine

_DOC = """<lib>
  <book lang="en" year="1977"><t>Illusions</t><a>Bach</a></book>
  <book lang="ru"><t>Dead Souls</t></book>
  <book lang="en"><t>Ulysses</t><a>Joyce</a><a>Other</a></book>
  <shelf><book lang="fr"><t>Nausea</t></book></shelf>
</lib>"""


@pytest.fixture(scope="module")
def setup():
    document = parse_document(_DOC)
    tree = untyped_document_to_tree(document)
    engine = StorageEngine()
    engine.load_document(document)
    return tree, engine, StorageQueryEngine(engine)


def _tree_values(tree, path):
    return [n.string_value() for n in evaluate_tree(tree, path)]


class TestPredicateParsing:
    def test_positional(self):
        (step,) = parse_path("/a[3]").steps
        assert step.predicates == (PositionPredicate(3),)

    def test_last(self):
        (step,) = parse_path("/a[last()]").steps
        assert step.predicates == (PositionPredicate(None),)

    def test_attribute_equality(self):
        (step,) = parse_path("/a[@lang='en']").steps
        assert step.predicates == (AttributePredicate("lang", "en"),)

    def test_attribute_existence(self):
        (step,) = parse_path("/a[@lang]").steps
        assert step.predicates == (AttributePredicate("lang"),)

    def test_child_equality_double_quotes(self):
        (step,) = parse_path('/a[t="x y"]').steps
        assert step.predicates == (ChildPredicate("t", "x y"),)

    def test_child_existence(self):
        (step,) = parse_path("/a[t]").steps
        assert step.predicates == (ChildPredicate("t"),)

    def test_stacked_predicates(self):
        (step,) = parse_path("/a[@lang='en'][2]").steps
        assert step.predicates == (AttributePredicate("lang", "en"),
                                   PositionPredicate(2))

    def test_repr_round_trip(self):
        for text in ("/a[2]", "/a[last()]", "/a[@x]", "/a[@x='1']",
                     "/a[b]", "/a[b='c']", "//a[@x='1'][1]"):
            assert repr(parse_path(text)) == text

    @pytest.mark.parametrize("bad", ["/a[]", "/a[0]", "/a[-1]",
                                     "/a[x=y]", "/a[f()]", "/a[x<1]"])
    def test_bad_predicates(self, bad):
        with pytest.raises(QueryError):
            parse_path(bad)


class TestTreePredicates:
    def test_position_is_per_parent(self, setup):
        tree, _engine, _queries = setup
        # book[1] of /lib and book[1] of /lib/shelf... only /lib/book
        assert _tree_values(tree, "/lib/book[1]/t") == ["Illusions"]

    def test_last(self, setup):
        tree, _engine, _queries = setup
        assert _tree_values(tree, "/lib/book[last()]/t") == ["Ulysses"]

    def test_out_of_range_position(self, setup):
        tree, _engine, _queries = setup
        assert _tree_values(tree, "/lib/book[9]") == []

    def test_attribute_equality(self, setup):
        tree, _engine, _queries = setup
        assert _tree_values(tree, "/lib/book[@lang='ru']/t") == \
            ["Dead Souls"]

    def test_attribute_existence(self, setup):
        tree, _engine, _queries = setup
        assert _tree_values(tree, "/lib/book[@year]/t") == ["Illusions"]

    def test_child_existence(self, setup):
        tree, _engine, _queries = setup
        assert _tree_values(tree, "/lib/book[a]/t") == \
            ["Illusions", "Ulysses"]

    def test_child_value(self, setup):
        from repro.xmlio import QName
        tree, _engine, _queries = setup
        result = evaluate_tree(tree, "/lib/book[t='Ulysses']")
        assert len(result) == 1
        lang = result[0].attribute_by_name(QName("", "lang"))
        assert lang.string_value() == "en"

    def test_stacked(self, setup):
        tree, _engine, _queries = setup
        assert _tree_values(tree, "/lib/book[@lang='en'][2]/t") == \
            ["Ulysses"]

    def test_descendant_positional_whole_selection(self, setup):
        tree, _engine, _queries = setup
        # Whole-selection semantics: the first matching descendant.
        assert _tree_values(tree, "//book[1]/t") == ["Illusions"]

    def test_predicate_on_attribute_step(self, setup):
        tree, _engine, _queries = setup
        # Positions are per context node: each book has one lang
        # attribute, so [1] keeps them all and [2] keeps none.
        first = evaluate_tree(tree, "/lib/book/@lang[1]")
        assert [n.string_value() for n in first] == ["en", "ru", "en"]
        assert evaluate_tree(tree, "/lib/book/@lang[2]") == []


class TestEvaluatorAgreement:
    PATHS = [
        "/lib/book[1]/t",
        "/lib/book[2]",
        "/lib/book[last()]/t",
        "/lib/book[@lang='en']/t",
        "/lib/book[@year]",
        "/lib/book[a]/t",
        "/lib/book[t='Dead Souls']",
        "/lib/book[@lang='en'][2]/t",
        "//book[@lang='fr']",
        "//book[a='Joyce']/t",
        "//t[1]",
        "//book[last()]",
        "/lib/shelf/book[1]/t",
        "/lib/book[9]",
    ]

    @pytest.mark.parametrize("path", PATHS)
    def test_three_way_agreement(self, setup, path):
        tree, engine, queries = setup
        from_tree = _tree_values(tree, path)
        naive = [engine.string_value(d)
                 for d in queries.evaluate_naive(path)]
        driven = [engine.string_value(d)
                  for d in queries.evaluate_schema_driven(path)]
        assert from_tree == naive == driven
