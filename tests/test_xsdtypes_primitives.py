"""Tests for the lexical mappings of the nineteen primitive types."""

import math
from decimal import Decimal

import pytest

from repro.errors import LexicalError
from repro.xsdtypes import BUILTINS, Binary, Duration, builtin


class TestBooleans:
    @pytest.mark.parametrize("literal,value", [
        ("true", True), ("false", False), ("1", True), ("0", False),
        ("  true  ", True),
    ])
    def test_valid(self, literal, value):
        assert builtin("boolean").parse(literal) is value

    @pytest.mark.parametrize("literal", ["TRUE", "yes", "", "2", "tru e"])
    def test_invalid(self, literal):
        with pytest.raises(LexicalError):
            builtin("boolean").parse(literal)

    def test_canonical(self):
        assert builtin("boolean").canonical(True) == "true"
        assert builtin("boolean").canonical(False) == "false"


class TestDecimal:
    @pytest.mark.parametrize("literal,value", [
        ("3.14", Decimal("3.14")),
        ("-0.5", Decimal("-0.5")),
        ("+12", Decimal(12)),
        (".5", Decimal("0.5")),
        ("5.", Decimal(5)),
        ("00012", Decimal(12)),
    ])
    def test_valid(self, literal, value):
        assert builtin("decimal").parse(literal) == value

    @pytest.mark.parametrize("literal", ["1e5", "INF", "NaN", "1.2.3", "", "+"])
    def test_invalid(self, literal):
        with pytest.raises(LexicalError):
            builtin("decimal").parse(literal)

    @pytest.mark.parametrize("value,canonical", [
        (Decimal("3.1400"), "3.14"),
        (Decimal("5"), "5.0"),
        (Decimal("-0.5"), "-0.5"),
        (Decimal("1E+2"), "100.0"),
    ])
    def test_canonical(self, value, canonical):
        assert builtin("decimal").canonical(value) == canonical


class TestFloats:
    def test_special_values(self):
        double = builtin("double")
        assert double.parse("INF") == math.inf
        assert double.parse("-INF") == -math.inf
        assert math.isnan(double.parse("NaN"))

    def test_exponent_notation(self):
        assert builtin("float").parse("1.5e3") == 1500.0
        assert builtin("double").parse("-2E-2") == -0.02

    @pytest.mark.parametrize("literal", ["inf", "nan", "0x1", "1d3", ""])
    def test_invalid(self, literal):
        with pytest.raises(LexicalError):
            builtin("double").parse(literal)

    def test_canonical(self):
        assert builtin("double").canonical(0.02) == "2.0E-2"
        assert builtin("double").canonical(math.inf) == "INF"
        assert builtin("double").canonical(math.nan) == "NaN"


class TestTemporalTypes:
    def test_datetime(self):
        value = builtin("dateTime").parse("2004-07-01T12:30:05.25+02:00")
        assert value.year == 2004
        assert value.second == Decimal("5.25")
        assert value.tz_minutes == 120

    def test_date_zulu(self):
        assert builtin("date").parse("2004-02-29Z").tz_minutes == 0

    def test_leap_day_validity(self):
        assert builtin("date").validate("2004-02-29")
        assert not builtin("date").validate("2005-02-29")

    def test_time(self):
        value = builtin("time").parse("23:59:59")
        assert value.hour == 23 and value.tz_minutes is None

    def test_end_of_day(self):
        a = builtin("dateTime").parse("2004-06-30T24:00:00Z")
        b = builtin("dateTime").parse("2004-07-01T00:00:00Z")
        assert a == b

    @pytest.mark.parametrize("local,literal", [
        ("gYear", "2004"), ("gYearMonth", "2004-07"), ("gMonthDay", "--07-04"),
        ("gDay", "---31"), ("gMonth", "--12"),
    ])
    def test_gregorian_fragments(self, local, literal):
        value = builtin(local).parse(literal)
        assert value.canonical() == literal

    @pytest.mark.parametrize("local,literal", [
        ("date", "2004-13-01"), ("date", "2004-00-10"), ("date", "04-01-01"),
        ("time", "25:00:00"), ("dateTime", "2004-07-01"),
        ("dateTime", "2004-07-01T12:00:00+15:00"),
        ("gDay", "---32"), ("gMonth", "--13"),
    ])
    def test_invalid(self, local, literal):
        with pytest.raises(LexicalError):
            builtin(local).parse(literal)


class TestDurationType:
    def test_full_form(self):
        value = builtin("duration").parse("P1Y2M3DT4H5M6.7S")
        assert value.months == 14
        assert value.seconds == Decimal("273906.7")

    def test_negative(self):
        assert builtin("duration").parse("-P1M") == Duration(months=-1)

    @pytest.mark.parametrize("literal", [
        "P", "PT", "P1D2H", "1Y", "P-1Y", "P1.5Y", "P1DT",
    ])
    def test_invalid(self, literal):
        with pytest.raises(LexicalError):
            builtin("duration").parse(literal)


class TestBinaryTypes:
    def test_hex(self):
        assert builtin("hexBinary").parse("00ff") == Binary(b"\x00\xff")

    def test_hex_canonical_uppercase(self):
        assert builtin("hexBinary").canonical(Binary(b"\xab")) == "AB"

    def test_base64(self):
        assert builtin("base64Binary").parse("aGVsbG8=") == Binary(b"hello")

    def test_base64_with_spaces(self):
        assert builtin("base64Binary").parse("aGVs bG8=") == Binary(b"hello")

    @pytest.mark.parametrize("local,literal", [
        ("hexBinary", "f"), ("hexBinary", "0g"),
        ("base64Binary", "a==="), ("base64Binary", "a"),
    ])
    def test_invalid(self, local, literal):
        with pytest.raises(LexicalError):
            builtin(local).parse(literal)


class TestNameTypes:
    def test_qname(self):
        assert builtin("QName").parse("xs:string") == "xs:string"
        assert builtin("QName").parse("simple") == "simple"

    @pytest.mark.parametrize("literal", ["a:b:c", ":x", "x:", "1ab", ""])
    def test_invalid_qname(self, literal):
        with pytest.raises(LexicalError):
            builtin("QName").parse(literal)

    def test_any_uri_accepts_most_strings(self):
        assert (builtin("anyURI").parse("http://www.books.org")
                == "http://www.books.org")


class TestRegistryCompleteness:
    def test_all_nineteen_primitives_present(self):
        primitives = [
            "string", "boolean", "decimal", "float", "double", "duration",
            "dateTime", "time", "date", "gYearMonth", "gYear", "gMonthDay",
            "gDay", "gMonth", "hexBinary", "base64Binary", "anyURI",
            "QName", "NOTATION",
        ]
        for local in primitives:
            type_ = builtin(local)
            assert type_.is_primitive, local

    def test_registry_size(self):
        # 4 special + 19 primitives + 22 derived atomics + 3 lists.
        assert len(BUILTINS) == 48
