"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.workloads.fixtures import (
    EXAMPLE_7_DOCUMENT,
    EXAMPLE_7_SCHEMA,
    LIBRARY_SCHEMA,
    wrap_in_schema,
)

_VALID_DOC = ("<library><book><title>T</title><author>A</author>"
              "</book></library>")
_INVALID_DOC = "<library><paper/></library>"

_UPA_SCHEMA = wrap_in_schema("""
  <xsd:element name="R"><xsd:complexType><xsd:choice>
    <xsd:sequence><xsd:element name="A" type="xsd:string"/></xsd:sequence>
    <xsd:sequence><xsd:element name="A" type="xsd:string"/></xsd:sequence>
  </xsd:choice></xsd:complexType></xsd:element>""")


@pytest.fixture
def files(tmp_path):
    paths = {}
    for name, content in (("lib.xsd", LIBRARY_SCHEMA),
                          ("books.xsd", EXAMPLE_7_SCHEMA),
                          ("upa.xsd", _UPA_SCHEMA),
                          ("valid.xml", _VALID_DOC),
                          ("invalid.xml", _INVALID_DOC),
                          ("books.xml", EXAMPLE_7_DOCUMENT)):
        path = tmp_path / name
        path.write_text(content, encoding="utf-8")
        paths[name] = str(path)
    return paths


class TestValidate:
    def test_valid_document(self, files, capsys):
        code = main(["validate", files["lib.xsd"], files["valid.xml"]])
        assert code == 0
        assert "VALID" in capsys.readouterr().out

    def test_invalid_document(self, files, capsys):
        code = main(["validate", files["lib.xsd"], files["invalid.xml"]])
        assert code == 1
        out = capsys.readouterr().out
        assert "INVALID" in out
        assert "5.1.1" in out or "5.4" in out

    def test_paper_example(self, files, capsys):
        code = main(["validate", files["books.xsd"], files["books.xml"]])
        assert code == 0

    def test_missing_file(self, files, capsys):
        code = main(["validate", files["lib.xsd"], "/nonexistent.xml"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestLint:
    def test_clean_schema(self, files, capsys):
        assert main(["lint", files["lib.xsd"]]) == 0
        assert "clean" in capsys.readouterr().out

    def test_upa_violation(self, files, capsys):
        assert main(["lint", files["upa.xsd"]]) == 1
        assert "Unique Particle Attribution" in capsys.readouterr().out


class TestNormalize:
    def test_prints_parseable_schema(self, files, capsys):
        assert main(["normalize", files["lib.xsd"]]) == 0
        out = capsys.readouterr().out
        from repro.schema import parse_schema
        assert parse_schema(out).root_element.name == "library"


class TestQuery:
    def test_untyped_query(self, files, capsys):
        assert main(["query", files["valid.xml"],
                     "/library/book/title"]) == 0
        assert capsys.readouterr().out.strip() == "T"

    def test_typed_query(self, files, capsys):
        assert main(["query", files["books.xml"],
                     "/BookStore/Book[1]/Author",
                     "--schema", files["books.xsd"]]) == 0
        assert "Paul McCartney" in capsys.readouterr().out

    def test_bad_path(self, files, capsys):
        assert main(["query", files["valid.xml"], "not-a-path"]) == 2

    def test_json_output(self, files, capsys):
        assert main(["query", files["valid.xml"],
                     "/library/book/title", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report == {"path": "/library/book/title",
                          "count": 1, "values": ["T"]}


class TestInspect:
    def test_reports_statistics(self, files, capsys):
        assert main(["inspect", files["valid.xml"]]) == 0
        out = capsys.readouterr().out
        assert "document nodes:" in out
        assert "library/book/title" in out

    def test_json_output(self, files, capsys):
        assert main(["inspect", files["valid.xml"], "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["document_nodes"] > 0
        assert report["blocks"] > 0
        paths = [entry["path"]
                 for entry in report["descriptive_schema"]]
        assert "library/book/title" in paths


class TestStats:
    def test_prints_metrics_sections(self, files, capsys):
        assert main(["stats", files["valid.xml"],
                     "--path", "/library/book/title"]) == 0
        out = capsys.readouterr().out
        assert "[storage]" in out
        assert "storage.descriptors.allocated" in out
        assert "storage.relabels" in out
        assert "query.evaluations" in out

    def test_json_output(self, files, capsys):
        assert main(["stats", files["valid.xml"], "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        metrics = report["metrics"]
        assert metrics["storage.descriptors.allocated"] > 0
        assert metrics["storage.relabels"] == 0

    def test_leaves_observability_disabled(self, files, capsys):
        from repro import obs
        main(["stats", files["valid.xml"]])
        capsys.readouterr()
        assert not obs.is_enabled()


class TestExplain:
    def test_reports_cold_and_warm_plans(self, files, capsys):
        assert main(["explain", files["valid.xml"],
                     "/library/book/title"]) == 0
        out = capsys.readouterr().out
        assert "-- cold (first evaluation) --" in out
        assert "-- warm (plan cache hit) --" in out
        assert "plan strategy:      scan" in out
        assert "plan cache:         miss" in out
        assert "plan cache:         hit" in out
        assert "nodes returned:     1" in out

    def test_json_output(self, files, capsys):
        assert main(["explain", files["valid.xml"],
                     "/library/book/title", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["cold"]["plan_cache"] == "miss"
        assert report["warm"]["plan_cache"] == "hit"
        assert report["warm"]["strategy"] == "scan"
        assert report["warm"]["nodes_returned"] == 1

    def test_bad_path(self, files, capsys):
        assert main(["explain", files["valid.xml"], "not-a-path"]) == 2


class TestCheckpointRecover:
    def test_checkpoint_then_recover(self, files, tmp_path, capsys):
        image = str(tmp_path / "store.img")
        wal = str(tmp_path / "store.wal")
        assert main(["checkpoint", files["books.xml"], image,
                     "--wal", wal]) == 0
        out = capsys.readouterr().out
        assert "checkpointed" in out and image in out
        assert main(["recover", image, "--wal", wal,
                     "--schema", files["books.xsd"], "--strict"]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "relabels:         0" in out
        assert "conformance:      ok" in out

    def test_checkpoint_json(self, files, tmp_path, capsys):
        image = str(tmp_path / "store.img")
        assert main(["checkpoint", files["books.xml"], image,
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["image"] == image
        assert report["nodes"] > 0
        assert report["checkpoint_lsn"] == 0

    def test_recover_json(self, files, tmp_path, capsys):
        image = str(tmp_path / "store.img")
        assert main(["checkpoint", files["books.xml"], image]) == 0
        capsys.readouterr()
        assert main(["recover", image, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["replayed"] == 0
        assert report["relabels"] == 0
        assert report["nodes"] > 0

    def test_recover_missing_image_exits_2(self, tmp_path, capsys):
        assert main(["recover", str(tmp_path / "absent.img")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_recover_corrupt_image_exits_2(self, tmp_path, capsys):
        image = tmp_path / "bad.img"
        image.write_bytes(b"SEDNAPY2" + b"\x00" * 40)
        assert main(["recover", str(image)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_checkpoint_missing_document_exits_2(self, tmp_path,
                                                 capsys):
        assert main(["checkpoint", str(tmp_path / "absent.xml"),
                     str(tmp_path / "out.img")]) == 2
        assert "error:" in capsys.readouterr().err


class TestJsonErrorSurface:
    def test_syntax_error_as_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<a><b", encoding="utf-8")
        assert main(["query", str(bad), "/a", "--json"]) == 2
        report = json.loads(capsys.readouterr().out)
        assert report["error"]["type"] == "XmlSyntaxError"
        assert "unterminated" in report["error"]["message"]

    def test_lexical_error_as_json(self, tmp_path, capsys):
        schema = tmp_path / "int.xsd"
        schema.write_text(wrap_in_schema(
            '<xsd:element name="n" type="xsd:int"/>'), encoding="utf-8")
        doc = tmp_path / "doc.xml"
        doc.write_text("<n>abc</n>", encoding="utf-8")
        assert main(["query", str(doc), "/n",
                     "--schema", str(schema), "--json"]) == 2
        report = json.loads(capsys.readouterr().out)
        # The lexical failure surfaces through the validator's wrapper.
        assert report["error"]["type"] == "ValidationError"
        assert "'abc' is not a valid xs:int" in report["error"]["message"]

    def test_error_without_json_goes_to_stderr(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<a><b", encoding="utf-8")
        assert main(["query", str(bad), "/a"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "error:" in captured.err
