"""Tests for binary persistence of the storage engine."""

import pytest

from repro.errors import StorageError
from repro.storage import StorageEngine
from repro.storage.persist import dumps_engine, load_engine
from repro.xmlio import QName, parse_document
from repro.workloads import make_library_document
from repro.workloads.fixtures import EXAMPLE_8_DOCUMENT


def _engine(document=None, **kwargs) -> StorageEngine:
    engine = StorageEngine(**kwargs)
    engine.load_document(document
                         or parse_document(EXAMPLE_8_DOCUMENT))
    return engine


def _snapshot(engine: StorageEngine) -> list[tuple]:
    return [(d.schema_node.path, d.nid.components, d.value)
            for d in engine.iter_document_order()]


class TestRoundTrip:
    def test_descriptive_schema_preserved(self):
        original = _engine()
        restored = load_engine(dumps_engine(original))
        assert restored.schema.paths() == original.schema.paths()

    def test_document_order_and_labels_preserved(self):
        original = _engine()
        restored = load_engine(dumps_engine(original))
        assert _snapshot(restored) == _snapshot(original)

    def test_invariants_hold_after_load(self):
        restored = load_engine(dumps_engine(_engine(block_capacity=4)))
        restored.check_invariants()

    def test_string_values_preserved(self):
        original = _engine()
        restored = load_engine(dumps_engine(original))
        root_a = original.children(original.document)[0]
        root_b = restored.children(restored.document)[0]
        assert original.string_value(root_a) == \
            restored.string_value(root_b)

    def test_block_layout_preserved(self):
        original = _engine(make_library_document(50, 50, seed=1),
                           block_capacity=8)
        restored = load_engine(dumps_engine(original))
        assert restored.blocks_per_schema_node() == \
            original.blocks_per_schema_node()

    def test_configuration_preserved(self):
        original = _engine(base=16, block_capacity=4)
        restored = load_engine(dumps_engine(original))
        assert restored.numbering.base == 16
        assert restored.block_capacity == 4

    def test_attributes_survive(self):
        engine = StorageEngine()
        engine.load_document(parse_document('<a x="1" y="2">t</a>'))
        restored = load_engine(dumps_engine(engine))
        a = restored.children(restored.document)[0]
        assert [(restored.node_name(d).local, d.value)
                for d in restored.attributes(a)] == \
            [("x", "1"), ("y", "2")]


class TestUpdatesAfterLoad:
    def test_insert_into_restored_engine(self):
        restored = load_engine(dumps_engine(_engine()))
        library = restored.children(restored.document)[0]
        restored.insert_child(library, 1, name=QName("", "book"))
        restored.check_invariants()
        assert restored.relabel_count == 0

    def test_gap_insertion_between_restored_labels(self):
        """The restored labels keep their density: a mid insertion
        lands between the originals without touching them."""
        from repro.storage import before
        restored = load_engine(dumps_engine(_engine()))
        library = restored.children(restored.document)[0]
        children = restored.children(library)
        inserted = restored.insert_child(library, 1,
                                         name=QName("", "book"))
        assert before(children[0].nid, inserted.nid)
        assert before(inserted.nid, children[1].nid)

    def test_delete_from_restored_engine(self):
        restored = load_engine(dumps_engine(_engine()))
        library = restored.children(restored.document)[0]
        first = restored.children(library)[0]
        restored.delete_subtree(first)
        restored.check_invariants()


class TestErrors:
    def test_bad_magic_rejected(self):
        with pytest.raises(StorageError):
            load_engine(b"NOTMAGIC" + b"\x00" * 32)

    def test_truncated_image_rejected(self):
        image = dumps_engine(_engine())
        with pytest.raises(StorageError):
            load_engine(image[:len(image) // 2])

    def test_trailing_bytes_rejected(self):
        image = dumps_engine(_engine())
        with pytest.raises(StorageError):
            load_engine(image + b"\x00")

    def test_empty_engine_rejected(self):
        with pytest.raises(StorageError):
            dumps_engine(StorageEngine())


class TestScale:
    def test_large_document_roundtrip(self):
        original = _engine(make_library_document(200, 200, seed=3))
        image = dumps_engine(original)
        restored = load_engine(image)
        assert restored.node_count() == original.node_count()
        assert _snapshot(restored) == _snapshot(original)


class TestDumpAfterUpdates:
    def test_updated_engine_roundtrips(self):
        """Dump/load after inserts and splits preserves the mutated
        state, including the gap-allocated labels."""
        engine = _engine(block_capacity=2)
        library = engine.children(engine.document)[0]
        for index in range(6):
            book = engine.insert_child(library, index,
                                       name=QName("", "book"))
            title = engine.insert_child(book, 0, name=QName("", "title"))
            engine.insert_child(title, 0, text=f"inserted {index}")
        engine.check_invariants()
        assert engine.split_count > 0
        restored = load_engine(dumps_engine(engine))
        assert _snapshot(restored) == _snapshot(engine)
        restored.check_invariants()

    def test_dump_after_delete(self):
        engine = _engine()
        library = engine.children(engine.document)[0]
        engine.delete_subtree(engine.children(library)[0])
        restored = load_engine(dumps_engine(engine))
        assert _snapshot(restored) == _snapshot(engine)


def _as_legacy_v3(image: bytes) -> bytes:
    """Rewrite a current (version-4) image into the version-3 layout:
    drop the trailing statistics digest, patch the magic, re-sign the
    CRC trailer."""
    import json
    import struct
    import zlib
    digest = json.dumps(load_engine(image).stats.export(),
                        separators=(",", ":"),
                        sort_keys=True).encode("utf-8")
    body = image[:-4]
    tail = struct.pack("<I", len(digest)) + digest
    assert body.endswith(tail), "helper needs a version-4 image"
    v3 = b"SEDNAPY3" + body[8:-len(tail)]
    return v3 + struct.pack("<I", zlib.crc32(v3))


def _as_legacy_v1(image: bytes) -> bytes:
    """Rewrite a current image (of an engine without indexes) into
    the version-1 layout: strip the statistics digest and the CRC
    trailer, drop the u64 checkpoint LSN and the u32 index-definition
    count after the capacity field, and patch the magic."""
    body = _as_legacy_v3(image)[:-4]
    assert body[20:24] == b"\x00" * 4, "helper needs an index-free image"
    return b"SEDNAPY1" + body[8:12] + body[24:]


def _as_legacy_v2(image: bytes) -> bytes:
    """Rewrite a current image (of an engine without indexes) into
    the version-2 layout: strip the statistics digest, drop the u32
    index-definition count, patch the magic, re-sign the CRC
    trailer."""
    import struct
    import zlib
    body = _as_legacy_v3(image)[:-4]
    assert body[20:24] == b"\x00" * 4, "helper needs an index-free image"
    v2 = b"SEDNAPY2" + body[8:20] + body[24:]
    return v2 + struct.pack("<I", zlib.crc32(v2))


class TestImageFormatV2:
    def test_checkpoint_lsn_roundtrips(self):
        engine = _engine()
        restored = load_engine(dumps_engine(engine, checkpoint_lsn=37))
        assert restored.checkpoint_lsn == 37
        assert load_engine(dumps_engine(engine)).checkpoint_lsn == 0

    def test_crc_trailer_detects_corruption(self):
        image = bytearray(dumps_engine(_engine()))
        image[len(image) // 2] ^= 0xFF
        with pytest.raises(StorageError, match="CRC mismatch"):
            load_engine(bytes(image))

    def test_truncation_error_names_the_byte_offset(self):
        image = dumps_engine(_engine())
        # Re-sign the truncated image so the CRC gate passes and the
        # parser itself hits the short read.
        import struct
        import zlib
        cut = image[:60]
        signed = cut + struct.pack("<I", zlib.crc32(cut))
        with pytest.raises(StorageError, match=r"at byte \d+"):
            load_engine(signed)

    def test_legacy_v1_image_still_loads(self):
        original = _engine()
        legacy = _as_legacy_v1(dumps_engine(original, checkpoint_lsn=9))
        restored = load_engine(legacy)
        assert _snapshot(restored) == _snapshot(original)
        assert restored.checkpoint_lsn == 0  # v1 has no horizon field

    def test_legacy_v1_load_bumps_warning_counter(self):
        from repro import obs
        legacy = _as_legacy_v1(dumps_engine(_engine()))
        obs.reset()
        obs.enable()
        try:
            load_engine(legacy)
            assert obs.snapshot()["persist.legacy_images"] == 1
        finally:
            obs.disable()
            obs.reset()

    def test_legacy_v2_image_still_loads(self):
        original = _engine()
        legacy = _as_legacy_v2(dumps_engine(original, checkpoint_lsn=9))
        restored = load_engine(legacy)
        assert _snapshot(restored) == _snapshot(original)
        assert restored.checkpoint_lsn == 9
        assert len(restored.indexes) == 0

    def test_index_definitions_roundtrip(self):
        original = _engine(make_library_document(5, 0, seed=2))
        original.create_index("library/book/title")
        restored = load_engine(dumps_engine(original))
        assert [d.as_dict() for d in restored.indexes.definitions()] \
            == [d.as_dict() for d in original.indexes.definitions()]
        assert restored.indexes.get("library/book/title").snapshot() \
            == original.indexes.get("library/book/title").snapshot()

    def test_corrupt_text_names_the_byte_offset(self):
        engine = _engine()
        image = bytearray(dumps_engine(engine))
        # Make some stored text undecodable, then re-sign the CRC so
        # only the UTF-8 decode trips.
        import struct
        import zlib
        position = image.find(b"library")
        assert position > 0
        image[position] = 0xFF
        image[-4:] = struct.pack("<I", zlib.crc32(bytes(image[:-4])))
        with pytest.raises(StorageError, match="at byte"):
            load_engine(bytes(image))
