"""Tests for the Section 6.2 conformance checker, item by item."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.xmlio import QName, xsd
from repro.xsdtypes import builtin
from repro.algebra import (
    ConformanceChecker,
    InstanceBuilder,
    StateAlgebra,
    check_conformance,
)
from repro.schema import (
    AttributeDeclarations,
    CombinationFactor,
    ComplexContentType,
    DocumentSchema,
    ElementDeclaration,
    GroupDefinition,
    RepetitionFactor,
    SimpleContentType,
    TypeName,
    UNBOUNDED,
    parse_schema,
)
from repro.workloads.fixtures import EXAMPLE_6_SCHEMA, LIBRARY_SCHEMA


def _string() -> TypeName:
    return TypeName(xsd("string"))


def _schema_simple_root(nillable=False) -> DocumentSchema:
    return DocumentSchema(
        root_element=ElementDeclaration("R", _string(), nillable=nillable))


def _items(violations) -> set[str]:
    return {v.item for v in violations}


class TestItem1To3:
    def test_missing_element_child(self):
        schema = _schema_simple_root()
        algebra = StateAlgebra()
        document = algebra.create_document()
        violations = check_conformance(document, schema)
        assert "3" in _items(violations)

    def test_conforming_minimal_tree(self):
        schema = _schema_simple_root()
        algebra = StateAlgebra()
        document = algebra.create_document()
        element = algebra.create_element(QName("", "R"))
        algebra.annotate_element(element, xsd("string"),
                                 simple_type=builtin("string"))
        algebra.append_child(document, element)
        algebra.append_child(element, algebra.create_text("ok"))
        assert check_conformance(document, schema) == []

    def test_element_root_rejected(self):
        schema = _schema_simple_root()
        algebra = StateAlgebra()
        lone = algebra.create_element(QName("", "R"))
        violations = check_conformance(lone, schema)
        assert "1" in _items(violations)


class TestItem4:
    def test_wrong_name(self):
        schema = _schema_simple_root()
        algebra = StateAlgebra()
        document = algebra.create_document()
        element = algebra.create_element(QName("", "Wrong"))
        algebra.annotate_element(element, xsd("string"),
                                 simple_type=builtin("string"))
        algebra.append_child(document, element)
        algebra.append_child(element, algebra.create_text("x"))
        assert "4" in _items(check_conformance(document, schema))

    def test_wrong_type_annotation(self):
        schema = _schema_simple_root()
        algebra = StateAlgebra()
        document = algebra.create_document()
        element = algebra.create_element(QName("", "R"))
        algebra.annotate_element(element, xsd("integer"),
                                 simple_type=builtin("integer"))
        algebra.append_child(document, element)
        algebra.append_child(element, algebra.create_text("5"))
        assert "4" in _items(check_conformance(document, schema))

    def test_anonymous_type_must_be_any_type(self):
        inline = ComplexContentType(group=GroupDefinition())
        schema = DocumentSchema(
            root_element=ElementDeclaration("R", inline))
        algebra = StateAlgebra()
        document = algebra.create_document()
        element = algebra.create_element(QName("", "R"))
        # default annotation is xs:anyType -> conforming
        algebra.append_child(document, element)
        assert check_conformance(document, schema) == []


class TestItem5Simple:
    def test_no_text_child(self):
        schema = _schema_simple_root()
        algebra = StateAlgebra()
        document = algebra.create_document()
        element = algebra.create_element(QName("", "R"))
        algebra.annotate_element(element, xsd("string"),
                                 simple_type=builtin("string"))
        algebra.append_child(document, element)
        assert "5.1.1" in _items(check_conformance(document, schema))

    def test_invalid_lexical_value(self):
        schema = DocumentSchema(root_element=ElementDeclaration(
            "R", TypeName(xsd("integer"))))
        algebra = StateAlgebra()
        document = algebra.create_document()
        element = algebra.create_element(QName("", "R"))
        algebra.annotate_element(element, xsd("integer"),
                                 simple_type=builtin("integer"))
        algebra.append_child(document, element)
        algebra.append_child(element, algebra.create_text("abc"))
        assert "5.1.1" in _items(check_conformance(document, schema))

    def test_attribute_on_simple_typed_element(self):
        schema = _schema_simple_root()
        algebra = StateAlgebra()
        document = algebra.create_document()
        element = algebra.create_element(QName("", "R"))
        algebra.annotate_element(element, xsd("string"),
                                 simple_type=builtin("string"))
        algebra.append_child(document, element)
        algebra.append_child(element, algebra.create_text("x"))
        algebra.attach_attribute(
            element, algebra.create_attribute(QName("", "stray"), "v"))
        assert "5.1" in _items(check_conformance(document, schema))

    def test_nilled_on_non_nillable(self):
        schema = _schema_simple_root(nillable=False)
        algebra = StateAlgebra()
        document = algebra.create_document()
        element = algebra.create_element(QName("", "R"))
        algebra.annotate_element(element, xsd("string"),
                                 simple_type=builtin("string"), nilled=True)
        algebra.append_child(document, element)
        assert "5" in _items(check_conformance(document, schema))


class TestItem53Attributes:
    def _schema(self) -> DocumentSchema:
        definition = ComplexContentType(
            attributes=AttributeDeclarations(
                (("InStock", TypeName(xsd("boolean"))),
                 ("Reviewer", _string()))))
        return DocumentSchema(
            root_element=ElementDeclaration("R", definition))

    def _tree(self, attrs: dict[str, str]):
        algebra = StateAlgebra()
        document = algebra.create_document()
        element = algebra.create_element(QName("", "R"))
        algebra.append_child(document, element)
        types = {"InStock": ("boolean", builtin("boolean")),
                 "Reviewer": ("string", builtin("string"))}
        for name, value in attrs.items():
            attribute = algebra.create_attribute(QName("", name), value)
            local, simple = types.get(name, ("string", builtin("string")))
            algebra.annotate_attribute(attribute, xsd(local),
                                       simple_type=simple)
            algebra.attach_attribute(element, attribute)
        return document

    def test_all_attributes_present_any_order(self):
        schema = self._schema()
        # order differs from declaration order: the automorphism σ.
        tree = self._tree({"Reviewer": "bob", "InStock": "true"})
        assert check_conformance(tree, schema) == []

    def test_missing_attribute(self):
        schema = self._schema()
        tree = self._tree({"InStock": "true"})
        assert "5.3.1" in _items(check_conformance(tree, schema))

    def test_extra_attribute(self):
        schema = self._schema()
        tree = self._tree({"InStock": "true", "Reviewer": "bob",
                           "Extra": "x"})
        assert "5.3.1" in _items(check_conformance(tree, schema))

    def test_invalid_attribute_value(self):
        schema = self._schema()
        tree = self._tree({"InStock": "maybe", "Reviewer": "bob"})
        assert "5.3.1" in _items(check_conformance(tree, schema))


class TestItem54Children:
    def _schema(self, mixed=False, empty=False) -> DocumentSchema:
        group = GroupDefinition() if empty else GroupDefinition(
            (ElementDeclaration("A", _string(),
                                RepetitionFactor(1, UNBOUNDED)),))
        definition = ComplexContentType(mixed=mixed, group=group)
        return DocumentSchema(
            root_element=ElementDeclaration("R", definition))

    def _base(self):
        algebra = StateAlgebra()
        document = algebra.create_document()
        element = algebra.create_element(QName("", "R"))
        algebra.append_child(document, element)
        return algebra, document, element

    def _add_a(self, algebra, element, text="v"):
        a = algebra.create_element(QName("", "A"))
        algebra.annotate_element(a, xsd("string"),
                                 simple_type=builtin("string"))
        algebra.append_child(element, a)
        algebra.append_child(a, algebra.create_text(text))
        return a

    def test_empty_content_rejects_elements(self):
        schema = self._schema(empty=True)
        algebra, document, element = self._base()
        self._add_a(algebra, element)
        assert "5.4.1" in _items(check_conformance(document, schema))

    def test_empty_mixed_allows_one_text(self):
        schema = self._schema(empty=True, mixed=True)
        algebra, document, element = self._base()
        algebra.append_child(element, algebra.create_text("note"))
        assert check_conformance(document, schema) == []

    def test_empty_non_mixed_rejects_text(self):
        schema = self._schema(empty=True, mixed=False)
        algebra, document, element = self._base()
        algebra.append_child(element, algebra.create_text("note"))
        assert "5.4.1.2" in _items(check_conformance(document, schema))

    def test_text_in_non_mixed_content(self):
        schema = self._schema(mixed=False)
        algebra, document, element = self._base()
        self._add_a(algebra, element)
        algebra.append_child(element, algebra.create_text("stray"))
        assert "5.4.2.1" in _items(check_conformance(document, schema))

    def test_adjacent_text_nodes_in_mixed(self):
        schema = self._schema(mixed=True)
        algebra, document, element = self._base()
        algebra.append_child(element, algebra.create_text("one"))
        algebra.append_child(element, algebra.create_text("two"))
        self._add_a(algebra, element)
        assert "5.4.2.2" in _items(check_conformance(document, schema))

    def test_content_model_violation(self):
        schema = self._schema()
        algebra, document, element = self._base()
        # zero A children violates minOccurs=1
        assert "5.4.2.3" in _items(check_conformance(document, schema))

    def test_unknown_child_name(self):
        schema = self._schema()
        algebra, document, element = self._base()
        self._add_a(algebra, element)
        stranger = algebra.create_element(QName("", "Z"))
        algebra.append_child(element, stranger)
        assert "5.4.2.3" in _items(check_conformance(document, schema))

    def test_recursion_into_children(self):
        schema = self._schema()
        algebra, document, element = self._base()
        a = self._add_a(algebra, element)
        # Break the child: wrong type annotation.
        algebra.annotate_element(a, xsd("integer"),
                                 simple_type=builtin("integer"))
        violations = check_conformance(document, schema)
        assert any(v.path.endswith("/A[1]") for v in violations)


class TestItem6Nil:
    def _schema(self) -> DocumentSchema:
        return _schema_simple_root(nillable=True)

    def test_nilled_with_children_rejected(self):
        schema = self._schema()
        algebra = StateAlgebra()
        document = algebra.create_document()
        element = algebra.create_element(QName("", "R"))
        algebra.annotate_element(element, xsd("string"),
                                 simple_type=builtin("string"), nilled=True)
        algebra.append_child(document, element)
        algebra.append_child(element, algebra.create_text("oops"))
        assert "6" in _items(check_conformance(document, schema))

    def test_nilled_without_children_accepted(self):
        schema = self._schema()
        algebra = StateAlgebra()
        document = algebra.create_document()
        element = algebra.create_element(QName("", "R"))
        algebra.annotate_element(element, xsd("string"),
                                 simple_type=builtin("string"), nilled=True)
        algebra.append_child(document, element)
        assert check_conformance(document, schema) == []

    def test_not_nilled_follows_item_5(self):
        schema = self._schema()
        algebra = StateAlgebra()
        document = algebra.create_document()
        element = algebra.create_element(QName("", "R"))
        algebra.annotate_element(element, xsd("string"),
                                 simple_type=builtin("string"), nilled=False)
        algebra.append_child(document, element)
        # nilled=false but no text child -> item 5.1.1
        assert "5.1.1" in _items(check_conformance(document, schema))


class TestItem7:
    def test_extra_attribute_node_detected(self):
        definition = ComplexContentType(group=GroupDefinition())
        schema = DocumentSchema(
            root_element=ElementDeclaration("R", definition))
        algebra = StateAlgebra()
        document = algebra.create_document()
        element = algebra.create_element(QName("", "R"))
        algebra.append_child(document, element)
        algebra.attach_attribute(
            element, algebra.create_attribute(QName("", "ghost"), "boo"))
        violations = check_conformance(document, schema)
        assert violations  # attribute set mismatch (5.3.1) or item 7
        assert _items(violations) & {"5.3.1", "7"}


class TestBuilderConformance:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**9))
    def test_random_library_instances_conform(self, seed):
        schema = parse_schema(LIBRARY_SCHEMA)
        tree = InstanceBuilder(schema, seed=seed).build()
        assert check_conformance(tree, schema) == []

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**9))
    def test_random_mixed_instances_conform(self, seed):
        schema = parse_schema(EXAMPLE_6_SCHEMA)
        tree = InstanceBuilder(schema, seed=seed).build()
        assert check_conformance(tree, schema) == []

    def test_checker_is_reusable(self):
        schema = parse_schema(LIBRARY_SCHEMA)
        checker = ConformanceChecker(schema)
        for seed in range(5):
            tree = InstanceBuilder(schema, seed=seed).build()
            assert checker.conforms(tree)

    def test_assert_conforms_raises_with_item(self):
        schema = _schema_simple_root()
        algebra = StateAlgebra()
        document = algebra.create_document()
        from repro.errors import ConformanceError
        with pytest.raises(ConformanceError) as exc_info:
            ConformanceChecker(schema).assert_conforms(document)
        assert exc_info.value.item == "3"
