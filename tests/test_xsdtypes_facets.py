"""Tests for constraining facets, restriction, list and union types."""

from decimal import Decimal

import pytest
from hypothesis import given, strategies as st

from repro.errors import FacetError, LexicalError, TypeSystemError
from repro.xmlio import QName
from repro.xsdtypes import (
    AtomicValue,
    EnumerationFacet,
    FractionDigitsFacet,
    LengthFacet,
    ListType,
    MaxExclusiveFacet,
    MaxInclusiveFacet,
    MaxLengthFacet,
    MinExclusiveFacet,
    MinInclusiveFacet,
    MinLengthFacet,
    PatternFacet,
    TotalDigitsFacet,
    UnionType,
    WhiteSpaceFacet,
    builtin,
)


class TestBoundsFacets:
    def test_min_max_inclusive(self):
        t = builtin("integer").restrict(
            [MinInclusiveFacet(1), MaxInclusiveFacet(10)])
        assert t.parse("1") == 1
        assert t.parse("10") == 10
        assert not t.validate("0")
        assert not t.validate("11")

    def test_exclusive_bounds(self):
        t = builtin("decimal").restrict(
            [MinExclusiveFacet(Decimal(0)), MaxExclusiveFacet(Decimal(1))])
        assert t.validate("0.5")
        assert not t.validate("0")
        assert not t.validate("1")

    def test_bounds_on_dates(self):
        after = builtin("date").parse("2000-01-01")
        t = builtin("date").restrict([MinInclusiveFacet(after)])
        assert t.validate("2004-07-01")
        assert not t.validate("1999-12-31")

    def test_restriction_chains_accumulate(self):
        narrow = (builtin("integer")
                  .restrict([MinInclusiveFacet(0)])
                  .restrict([MaxInclusiveFacet(5)]))
        assert narrow.validate("3")
        assert not narrow.validate("-1")   # from the first step
        assert not narrow.validate("6")    # from the second step


class TestLengthFacets:
    def test_string_length(self):
        t = builtin("string").restrict([LengthFacet(3)])
        assert t.validate("abc")
        assert not t.validate("ab")
        assert not t.validate("abcd")

    def test_min_max_length(self):
        t = builtin("string").restrict(
            [MinLengthFacet(2), MaxLengthFacet(4)])
        assert not t.validate("a")
        assert t.validate("ab")
        assert t.validate("abcd")
        assert not t.validate("abcde")

    def test_binary_length_counts_octets(self):
        t = builtin("hexBinary").restrict([LengthFacet(2)])
        assert t.validate("ABCD")
        assert not t.validate("AB")

    def test_length_on_numbers_rejected(self):
        t = builtin("integer").restrict([LengthFacet(2)])
        with pytest.raises(FacetError):
            t.parse("12")


class TestPatternFacet:
    def test_pattern_anchored(self):
        t = builtin("string").restrict([PatternFacet(("[a-z]+",))])
        assert t.validate("abc")
        assert not t.validate("abc1")
        assert not t.validate("1abc")

    def test_pattern_alternatives_are_ored(self):
        t = builtin("string").restrict([PatternFacet(("cat", "dog"))])
        assert t.validate("cat")
        assert t.validate("dog")
        assert not t.validate("catdog")

    def test_caret_and_dollar_are_literal(self):
        t = builtin("string").restrict([PatternFacet(("a^b$c",))])
        assert t.validate("a^b$c")
        assert not t.validate("abc")

    def test_name_escapes(self):
        t = builtin("string").restrict([PatternFacet(("\\i\\c*",))])
        assert t.validate("name")
        assert t.validate("_x1")
        assert not t.validate("1x")


class TestEnumerationFacet:
    def test_enumeration(self):
        t = builtin("string").restrict(
            [EnumerationFacet(("red", "green", "blue"))])
        assert t.validate("green")
        assert not t.validate("yellow")

    def test_enumeration_compares_values_not_literals(self):
        t = builtin("integer").restrict([EnumerationFacet((10, 20))])
        assert t.validate("010")  # same value as 10


class TestDigitsFacets:
    def test_total_digits(self):
        t = builtin("decimal").restrict([TotalDigitsFacet(3)])
        assert t.validate("123")
        assert t.validate("1.23")
        assert t.validate("0.12")
        assert not t.validate("1234")
        assert not t.validate("12.34")

    def test_fraction_digits(self):
        t = builtin("decimal").restrict([FractionDigitsFacet(2)])
        assert t.validate("1.25")
        assert t.validate("1.20")  # trailing zero does not count
        assert not t.validate("1.234")


class TestWhitespaceFacet:
    def test_cannot_loosen(self):
        with pytest.raises(FacetError):
            builtin("token").restrict([WhiteSpaceFacet("preserve")])

    def test_can_tighten(self):
        t = builtin("string").restrict([WhiteSpaceFacet("collapse")])
        assert t.parse("  a  b ") == "a b"

    def test_unknown_mode_rejected(self):
        with pytest.raises(FacetError):
            WhiteSpaceFacet("trim")


class TestDerivedBuiltins:
    def test_token_collapses(self):
        assert builtin("token").parse(" a \n b ") == "a b"

    def test_normalized_string_replaces(self):
        assert builtin("normalizedString").parse("a\tb\nc") == "a b c"

    def test_language(self):
        assert builtin("language").validate("en")
        assert builtin("language").validate("en-US")
        assert not builtin("language").validate("123")
        assert not builtin("language").validate("muchtoolongtag")

    def test_integer_chain_bounds(self):
        assert builtin("byte").validate("127")
        assert not builtin("byte").validate("128")
        assert builtin("unsignedByte").validate("255")
        assert not builtin("unsignedByte").validate("-1")
        assert not builtin("unsignedByte").validate("256")
        assert builtin("negativeInteger").validate("-1")
        assert not builtin("negativeInteger").validate("0")
        assert builtin("positiveInteger").validate("1")
        assert not builtin("positiveInteger").validate("0")

    def test_integer_rejects_decimal_point(self):
        assert not builtin("integer").validate("1.0")

    def test_derivation_relationships(self):
        assert builtin("byte").is_derived_from(builtin("integer"))
        assert builtin("byte").is_derived_from(builtin("decimal"))
        assert not builtin("byte").is_derived_from(builtin("string"))
        assert builtin("token").is_derived_from(builtin("string"))

    def test_ncname_excludes_colon(self):
        assert builtin("NCName").validate("local")
        assert not builtin("NCName").validate("p:local")


class TestListTypes:
    def test_builtin_list(self):
        assert builtin("NMTOKENS").parse("a b  c") == ("a", "b", "c")

    def test_empty_builtin_list_rejected(self):
        # NMTOKENS has minLength 1.
        assert not builtin("NMTOKENS").validate("  ")

    def test_custom_list_with_length(self):
        t = ListType(None, builtin("integer"), facets=[LengthFacet(3)])
        assert t.parse("1 2 3") == (1, 2, 3)
        assert not t.validate("1 2")

    def test_item_errors_propagate(self):
        t = ListType(None, builtin("integer"))
        assert not t.validate("1 two 3")

    def test_list_of_list_rejected(self):
        inner = ListType(None, builtin("integer"))
        with pytest.raises(TypeSystemError):
            ListType(None, inner)

    def test_typed_value_has_item_type(self):
        t = ListType(None, builtin("integer"))
        typed = t.typed_value("1 2")
        assert [av.value for av in typed] == [1, 2]
        assert all(av.type is builtin("integer") for av in typed)

    def test_canonical(self):
        t = ListType(None, builtin("integer"))
        assert t.canonical((1, 2, 3)) == "1 2 3"


class TestUnionTypes:
    def test_first_member_wins(self):
        t = UnionType(None, [builtin("integer"), builtin("string")])
        value, member = t.parse_with_member("42")
        assert value == 42
        assert member is builtin("integer")

    def test_fallback_member(self):
        t = UnionType(None, [builtin("integer"), builtin("string")])
        value, member = t.parse_with_member("forty-two")
        assert value == "forty-two"
        assert member is builtin("string")

    def test_no_member_matches(self):
        t = UnionType(None, [builtin("integer"), builtin("boolean")])
        with pytest.raises(LexicalError):
            t.parse("maybe")

    def test_empty_union_rejected(self):
        with pytest.raises(TypeSystemError):
            UnionType(None, [])

    def test_typed_value_uses_member_type(self):
        t = UnionType(None, [builtin("integer"), builtin("string")])
        (av,) = t.typed_value("7")
        assert av == AtomicValue(7, builtin("integer"))


class TestAtomicValue:
    def test_equality_requires_same_type(self):
        a = AtomicValue(1, builtin("integer"))
        b = AtomicValue(1, builtin("int"))
        assert a != b
        assert a == AtomicValue(1, builtin("integer"))

    def test_repr_mentions_type(self):
        assert "integer" in repr(AtomicValue(1, builtin("integer")))


@given(st.integers(min_value=-10**6, max_value=10**6))
def test_integer_roundtrip_property(value):
    t = builtin("integer")
    assert t.parse(t.canonical(value)) == value


@given(st.decimals(allow_nan=False, allow_infinity=False,
                   min_value=-10**9, max_value=10**9, places=6))
def test_decimal_roundtrip_property(value):
    t = builtin("decimal")
    assert t.parse(t.canonical(value)) == value
