"""Tests for query plan compilation, caching and invalidation."""

import pytest

from repro.xmlio import parse_document
from repro.xmlio.qname import QName
from repro.query import (
    LRUCache,
    StorageQueryEngine,
    cached_parse_path,
    clear_parse_cache,
    compile_plan,
    parse_cache_stats,
)
from repro.storage import StorageEngine
from repro.workloads import make_library_document
from repro.workloads.fixtures import EXAMPLE_8_DOCUMENT

_DOC = """<lib>
  <book lang="en"><t>Illusions</t><a>Bach</a></book>
  <book lang="ru"><t>Dead Souls</t></book>
  <shelf><book lang="fr"><t>Nausea</t></book></shelf>
</lib>"""


@pytest.fixture
def stored():
    engine = StorageEngine()
    engine.load_document(parse_document(_DOC))
    return engine, StorageQueryEngine(engine)


@pytest.fixture
def library():
    engine = StorageEngine()
    engine.load_document(parse_document(EXAMPLE_8_DOCUMENT))
    return engine, StorageQueryEngine(engine)


class TestLRUCache:
    def test_hit_miss_counting(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now coldest
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats().evictions == 1

    def test_peek_does_not_count(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("zzz") is None
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_invalidate_counts_separately(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.invalidate("a")
        cache.invalidate("a")   # absent: no double count
        stats = cache.stats()
        assert stats.invalidations == 1 and stats.evictions == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_concurrent_get_put_is_safe(self):
        """The session layer shares plan/parse caches across worker
        threads: a get() racing an eviction must be a miss, never a
        KeyError out of move_to_end."""
        import threading

        cache = LRUCache(8)  # far smaller than the key space: evicts
        errors = []

        def worker(seed):
            try:
                for i in range(3000):
                    key = (seed * 13 + i) % 64
                    if cache.get(key) is None:
                        cache.put(key, key)
            except Exception as exc:  # noqa: BLE001 — the regression
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert len(cache) <= 8


class TestParseCache:
    def test_same_text_compiles_once(self):
        clear_parse_cache()
        first = cached_parse_path("/lib/book/t")
        second = cached_parse_path("/lib/book/t")
        assert first is second
        stats = parse_cache_stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_parse_errors_are_not_cached(self):
        from repro.errors import QueryError
        clear_parse_cache()
        for _ in range(2):
            with pytest.raises(QueryError):
                cached_parse_path("relative/path")
        assert parse_cache_stats().size == 0


class TestPlanStrategies:
    def test_plain_path_compiles_to_scan(self, stored):
        _engine, queries = stored
        plan = queries.compile("//book/t")
        assert plan.strategy == "scan"
        assert {n.path for n in plan.scan_nodes} == \
            {"lib/book/t", "lib/shelf/book/t"}

    def test_inner_predicate_compiles_to_hybrid(self, stored):
        _engine, queries = stored
        plan = queries.compile("//book[@lang='en']/t")
        assert plan.strategy == "hybrid"
        assert plan.split == 0
        # The scan covers the prefix (the book step), not the full path.
        assert {n.path for n in plan.scan_nodes} == \
            {"lib/book", "lib/shelf/book"}

    def test_descendant_positional_still_navigates(self, stored):
        _engine, queries = stored
        assert queries.compile("//book[1]").strategy == "naive"
        assert queries.compile("//book[last()]/t").strategy == "naive"

    def test_structural_pruning_to_empty(self, stored):
        _engine, queries = stored
        # No book schema node has an @isbn attribute child, so no
        # instance anywhere can satisfy the predicate: zero block reads.
        plan = queries.compile("//book[@isbn]/t")
        assert plan.strategy == "empty"
        assert plan.pruned_schema_nodes == 2
        assert queries.evaluate("//book[@isbn]/t") == []

    def test_structural_pruning_of_child_predicate(self, stored):
        _engine, queries = stored
        # Only lib/book has <a> children; lib/shelf/book never does.
        plan = queries.compile("/lib/book[a]/t")
        assert plan.strategy == "hybrid"
        assert plan.pruned_schema_nodes == 0  # /lib/book alone matched
        deep = queries.compile("//book[a]/t")
        assert deep.pruned_schema_nodes == 1
        assert {n.path for n in deep.scan_nodes} == {"lib/book"}

    def test_pruned_plans_agree_with_naive(self, stored):
        _engine, queries = stored
        for path in ("/lib/book[@isbn]/t", "//book[a]/t", "//book[zz]"):
            assert [d.nid for d in queries.evaluate(path)] == \
                [d.nid for d in queries.evaluate_naive(path)]


class TestPlanCache:
    def test_repeated_queries_hit(self, stored):
        _engine, queries = stored
        for _ in range(5):
            queries.evaluate("//t")
        stats = queries.cache_stats()
        assert stats["plan_misses"] == 1
        assert stats["plan_hits"] == 4
        assert stats["plan_invalidations"] == 0

    def test_string_and_path_keys_share_entries(self, stored):
        _engine, queries = stored
        queries.evaluate("//t")
        queries.evaluate(cached_parse_path("//t"))
        assert queries.cache_stats()["plan_misses"] == 1

    def test_capacity_evicts_cold_plans(self, stored):
        _engine, queries = stored
        queries = StorageQueryEngine(_engine, plan_cache_capacity=2)
        for path in ("/lib", "/lib/book", "/lib/book/t", "/lib"):
            queries.evaluate(path)
        stats = queries.cache_stats()
        assert stats["plan_evictions"] >= 1

    def test_data_insert_keeps_plan_and_sees_new_instance(self, stored):
        engine, queries = stored
        lib = engine.children(engine.document)[0]
        assert len(queries.evaluate("/lib/book")) == 2
        version = engine.schema.version
        # Inserting another <book> reuses the existing schema node …
        book = engine.insert_child(lib, 1, name=QName("", "book"))
        engine.insert_child(book, 0, name=QName("", "t"))
        assert engine.schema.version == version
        # … so the cached plan stays valid and the live block scan
        # already sees the new descriptor.
        assert len(queries.evaluate("/lib/book")) == 3
        stats = queries.cache_stats()
        assert stats["plan_invalidations"] == 0

    def test_schema_growth_invalidates_and_requeries(self, stored):
        """The acceptance scenario: load, query, insert an element
        with a brand-new tag name, re-query — the new node appears and
        nothing was relabeled (Proposition 1)."""
        engine, queries = stored
        lib = engine.children(engine.document)[0]
        before = queries.evaluate("/lib/*")
        assert len(before) == 3
        version = engine.schema.version
        engine.insert_child(lib, 0, name=QName("", "memo"))
        assert engine.schema.version == version + 1
        after = queries.evaluate("/lib/*")
        assert len(after) == 4
        assert after[0].schema_node.step == "memo"
        assert queries.cache_stats()["plan_invalidations"] == 1
        assert engine.relabel_count == 0

    def test_stale_plan_would_miss_the_new_schema_node(self, stored):
        """Directly show what invalidation protects against."""
        engine, queries = stored
        lib = engine.children(engine.document)[0]
        stale = compile_plan(cached_parse_path("/lib/*"), engine.schema)
        engine.insert_child(lib, 0, name=QName("", "memo"))
        fresh = compile_plan(cached_parse_path("/lib/*"), engine.schema)
        assert len(stale.execute(queries)) == 3   # misses <memo>
        assert len(fresh.execute(queries)) == 4


class TestEvaluateMatchesOtherEvaluators:
    PATHS = (
        "/library/book/title",
        "//author",
        "//title",
        "/library/*/title/text()",
        "/library/book/issue/year",
        "/library/zzz",
    )

    @pytest.mark.parametrize("path", PATHS)
    def test_cached_plan_agrees(self, library, path):
        _engine, queries = library
        expected = [d.nid for d in queries.evaluate_naive(path)]
        for _ in range(2):  # second round runs from the cache
            assert [d.nid for d in queries.evaluate(path)] == expected

    def test_agreement_on_scaled_document(self):
        document = make_library_document(books=30, papers=30, seed=4)
        engine = StorageEngine()
        engine.load_document(document)
        queries = StorageQueryEngine(engine)
        for path in ("/library/book/author", "//title",
                     "/library/paper/title/text()"):
            assert [d.nid for d in queries.evaluate(path)] == \
                [d.nid for d in queries.evaluate_naive(path)]
