"""Smoke-run the standalone query benchmark and check its report.

Runs ``benchmarks.run_all`` at the tiny smoke scale so the JSON
contract (and the headline speedup claim) is exercised on every test
run, not only when someone remembers to run the benchmarks.
"""

import json

from benchmarks.run_all import QUERY_PATHS, main


def test_run_all_smoke_writes_report(tmp_path, capsys):
    output = tmp_path / "BENCH_query.json"
    records = main(["--smoke", "--output", str(output)])

    assert len(records) == len(QUERY_PATHS)
    report = json.loads(output.read_text())
    assert report["query_paths"] == list(QUERY_PATHS)
    assert len(report["records"]) == len(records)
    for record in report["records"]:
        for key in ("ops_naive", "ops_schema_driven", "ops_cached_plan",
                    "cached_vs_uncached", "plan_hit_rate"):
            assert key in record
        assert record["ops_cached_plan"] > 0
        # Repeated queries run from the cache during the timed loop.
        assert record["plan_hit_rate"] > 0.9
        assert record["plan_invalidations"] == 0
    # The headline claim: with parse + planning amortized away, at
    # least the planning-dominated queries run >= 2x faster than the
    # uncached schema-driven route (the hybrid predicate query clears
    # this with a wide margin, so the assertion is timing-safe).
    assert report["summary"]["speedup_2x_met"]
    assert report["summary"]["max_cached_vs_uncached"] >= 2.0
    # Conformance checking runs over both NodeStore backends.
    for record in report["conformance_records"]:
        assert record["ops_tree_store"] > 0
        assert record["ops_storage_store"] > 0
    # The observability pass: a populated metrics section with one
    # EXPLAIN per query path and the Proposition 1 zero.
    metrics = report["metrics"]
    registry = metrics["registry"]
    assert registry["query.evaluations"] == 2 * len(QUERY_PATHS)
    assert registry["storage.descriptors.allocated"] > 0
    assert registry["storage.relabels"] == 0
    assert registry["numbering.relabels.sedna"] == 0
    assert len(metrics["query_explains"]) == len(QUERY_PATHS)
    for record in metrics["query_explains"]:
        assert record["strategy"] in ("empty", "scan", "hybrid", "index",
                                      "naive")
        assert record["plan_cache"] == "hit"  # the warm run is recorded
    workload = metrics["numbering_workload"]
    assert workload["scheme"] == "sedna"
    assert workload["relabels"] == 0
    # The durability record: WAL overhead is measured, the recovery
    # path replays the logged mutations, and replay never relabels.
    durability = report["durability"]
    assert durability["ops_plain"] > 0
    assert durability["ops_wal"] > 0
    assert durability["ops_wal_fsync"] > 0
    assert durability["wal_records"] > 0
    assert durability["wal_bytes"] > 0
    assert durability["image_bytes"] > 0
    assert durability["recovery_replayed"] == 2 * durability["operations"]
    assert durability["recovery_relabels"] == 0
    # Bulk load: one logical LOAD record instead of per-op logging,
    # and the loaded store recovers cleanly.
    bulk = durability["bulk_load"]
    assert bulk["bulk_wal_records"] == 3
    assert bulk["incremental_wal_records"] > bulk["bulk_wal_records"]
    assert bulk["nodes"] > 0
    # The secondary-index section: every probe case beats the scan and
    # reports the index strategy, and DDL invalidates exactly the
    # affected cached plans.
    indexes = report["indexes"]
    for record in indexes["records"]:
        assert record["ops_index"] > 0
        assert record["strategy"] == "index"
        assert record["index_used"]
    ddl = indexes["ddl_invalidation"]
    assert ddl["exactly_affected_invalidated"]
    assert ddl["unaffected_restamped"]
    # The session-layer concurrency record: N readers + M writers with
    # per-mode percentiles, frozen reads, typed overload shedding and
    # a relabel-free recovery.
    concurrency = report["concurrency"]
    assert concurrency["read_latency_ns"]["count"] > 0
    assert concurrency["read_latency_ns"]["p99"] >= \
        concurrency["read_latency_ns"]["p50"] > 0
    assert concurrency["write_latency_ns"]["count"] == \
        concurrency["committed_writes"]
    assert concurrency["torn_reads"] == 0
    assert concurrency["errors"] == 0
    assert concurrency["overload_typed"]
    assert concurrency["overload_retry_after"] > 0
    assert concurrency["recovery_relabels"] == 0
    assert report["summary"]["concurrency_zero_relabels"]
    assert report["summary"]["concurrency_no_torn_reads"]
    assert report["summary"]["concurrency_overload_typed"]
    capsys.readouterr()  # swallow the printed table


def test_run_all_prints_table_without_json(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    main(["--smoke"])
    out = capsys.readouterr().out
    assert "speedup" in out
    for path in QUERY_PATHS:
        assert path in out
    assert not (tmp_path / "BENCH_query.json").exists()
