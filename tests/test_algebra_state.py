"""Tests for the state algebra (Section 6.1) and the Tree type."""

import pytest

from repro.errors import AlgebraError
from repro.xmlio import QName
from repro.algebra import (
    StateAlgebra,
    Tree,
    build_element_tree,
    document_tree,
    element_subtrees,
    is_well_formed_tree,
    pretty,
    root,
    roots,
    subtree,
)


@pytest.fixture
def algebra():
    return StateAlgebra()


class TestCarriers:
    def test_carriers_start_empty(self, algebra):
        for kind in ("document", "element", "attribute", "text"):
            assert algebra.carrier(kind) == ()

    def test_carriers_fill_by_kind(self, algebra):
        algebra.create_document()
        algebra.create_element(QName("", "e"))
        algebra.create_element(QName("", "f"))
        algebra.create_attribute(QName("", "a"), "v")
        algebra.create_text("t")
        assert len(algebra.carrier("document")) == 1
        assert len(algebra.carrier("element")) == 2
        assert len(algebra.carrier("attribute")) == 1
        assert len(algebra.carrier("text")) == 1
        assert algebra.node_count() == 5

    def test_unknown_sort_rejected(self, algebra):
        with pytest.raises(AlgebraError):
            algebra.carrier("comment")

    def test_sort_disjointness_invariant(self, algebra):
        algebra.create_element(QName("", "e"))
        algebra.create_text("t")
        algebra.check_sort_disjointness()  # must not raise

    def test_a_node_is_union_of_carriers(self, algebra):
        algebra.create_element(QName("", "e"))
        algebra.create_text("t")
        assert len(list(algebra.nodes())) == algebra.node_count()


class TestMutation:
    def test_append_child_sets_parent(self, algebra):
        parent = algebra.create_element(QName("", "p"))
        child = algebra.create_text("t")
        algebra.append_child(parent, child)
        assert child.parent().head() is parent
        assert list(parent.children()) == [child]

    def test_insert_child_at_position(self, algebra):
        parent = algebra.create_element(QName("", "p"))
        first = algebra.create_text("1")
        third = algebra.create_text("3")
        algebra.append_child(parent, first)
        algebra.append_child(parent, third)
        second = algebra.create_text("2")
        algebra.insert_child(parent, 1, second)
        assert [c.string_value() for c in parent.children()] == \
            ["1", "2", "3"]

    def test_remove_child(self, algebra):
        parent = algebra.create_element(QName("", "p"))
        child = algebra.create_text("t")
        algebra.append_child(parent, child)
        algebra.remove_child(parent, child)
        assert not parent.children()
        assert child.parent_or_none() is None

    def test_remove_non_child_rejected(self, algebra):
        parent = algebra.create_element(QName("", "p"))
        with pytest.raises(AlgebraError):
            algebra.remove_child(parent, algebra.create_text("t"))

    def test_reparenting_rejected(self, algebra):
        p1 = algebra.create_element(QName("", "p1"))
        p2 = algebra.create_element(QName("", "p2"))
        child = algebra.create_text("t")
        algebra.append_child(p1, child)
        with pytest.raises(AlgebraError):
            algebra.append_child(p2, child)

    def test_cross_algebra_adoption_rejected(self, algebra):
        other = StateAlgebra()
        parent = algebra.create_element(QName("", "p"))
        foreign = other.create_text("t")
        with pytest.raises(AlgebraError):
            algebra.append_child(parent, foreign)

    def test_document_single_element_child(self, algebra):
        document = algebra.create_document()
        algebra.append_child(document,
                             algebra.create_element(QName("", "a")))
        with pytest.raises(AlgebraError):
            algebra.append_child(document,
                                 algebra.create_element(QName("", "b")))

    def test_document_child_must_be_element(self, algebra):
        document = algebra.create_document()
        with pytest.raises(AlgebraError):
            algebra.append_child(document, algebra.create_text("t"))

    def test_attribute_not_a_child(self, algebra):
        parent = algebra.create_element(QName("", "p"))
        attribute = algebra.create_attribute(QName("", "a"), "v")
        with pytest.raises(AlgebraError):
            algebra.append_child(parent, attribute)

    def test_attach_attribute(self, algebra):
        element = algebra.create_element(QName("", "e"))
        attribute = algebra.create_attribute(QName("", "a"), "v")
        algebra.attach_attribute(element, attribute)
        assert list(element.attributes()) == [attribute]

    def test_duplicate_attribute_name_rejected(self, algebra):
        element = algebra.create_element(QName("", "e"))
        algebra.attach_attribute(
            element, algebra.create_attribute(QName("", "a"), "1"))
        with pytest.raises(AlgebraError):
            algebra.attach_attribute(
                element, algebra.create_attribute(QName("", "a"), "2"))

    def test_text_cannot_have_children(self, algebra):
        text = algebra.create_text("t")
        with pytest.raises(AlgebraError):
            algebra.append_child(text, algebra.create_text("u"))

    def test_parent_child_consistency_check(self, algebra):
        parent = algebra.create_element(QName("", "p"))
        algebra.append_child(parent, algebra.create_text("t"))
        algebra.check_parent_child_consistency()  # must not raise


class TestBuildElementTree:
    def test_nested_spec(self, algebra):
        element = build_element_tree(
            algebra,
            ("a", {"x": "1"}, ["hi", ("b", {}, ["there"])]))
        assert element.name.local == "a"
        assert element.string_value() == "hithere"
        assert element.attributes().head().string_value() == "1"

    def test_string_root_rejected(self, algebra):
        with pytest.raises(AlgebraError):
            build_element_tree(algebra, "just text")


class TestTree:
    def _tree(self, algebra) -> Tree:
        element = build_element_tree(
            algebra, ("r", {"k": "v"}, [("a", {}, ["x"]), ("b", {}, [])]))
        return Tree(element)

    def test_root_function(self, algebra):
        tree = self._tree(algebra)
        assert root(tree) is tree.root_node

    def test_roots_function(self, algebra):
        t1 = self._tree(algebra)
        t2 = self._tree(algebra)
        assert list(roots([t1, t2])) == [t1.root_node, t2.root_node]

    def test_size_counts_all_node_kinds(self, algebra):
        tree = self._tree(algebra)
        # r + @k + a + text + b
        assert tree.size() == 5

    def test_depth(self, algebra):
        tree = self._tree(algebra)
        assert tree.depth() == 3  # r -> a -> text

    def test_document_order_of_nodes(self, algebra):
        tree = self._tree(algebra)
        kinds = [n.node_kind() for n in tree.nodes()]
        assert kinds == ["element", "attribute", "element", "text",
                         "element"]

    def test_attribute_cannot_root_tree(self, algebra):
        attribute = algebra.create_attribute(QName("", "a"), "v")
        with pytest.raises(AlgebraError):
            Tree(attribute)

    def test_well_formedness(self, algebra):
        tree = self._tree(algebra)
        assert is_well_formed_tree(tree)

    def test_document_tree_requires_document(self, algebra):
        with pytest.raises(AlgebraError):
            document_tree(algebra.create_element(QName("", "e")))

    def test_element_subtrees(self, algebra):
        tree = self._tree(algebra)
        subtrees = element_subtrees(tree.root_node)
        assert [t.root_node.name.local for t in subtrees] == ["a", "b"]

    def test_subtree(self, algebra):
        tree = self._tree(algebra)
        a = tree.root_node.element_children()[0]
        assert subtree(a).size() == 2

    def test_pretty_output(self, algebra):
        tree = self._tree(algebra)
        text = pretty(tree)
        assert "element r" in text
        assert "@k='v'" in text
