"""Tests for the XSD → Python regex translation."""

import re

import pytest

from repro.errors import FacetError
from repro.xsdtypes.regex import compile_pattern, translate_pattern


class TestAnchoring:
    def test_whole_match_required(self):
        rx = compile_pattern("ab")
        assert rx.match("ab")
        assert not rx.match("abc")
        assert not rx.match("xab")

    def test_empty_pattern_matches_empty(self):
        rx = compile_pattern("")
        assert rx.match("")
        assert not rx.match("x")


class TestOrdinaryMetacharacters:
    def test_caret_is_literal(self):
        rx = compile_pattern("a^b")
        assert rx.match("a^b")
        assert not rx.match("ab")

    def test_dollar_is_literal(self):
        rx = compile_pattern("a$b")
        assert rx.match("a$b")

    def test_caret_in_class_still_negates(self):
        rx = compile_pattern("[^a]")
        assert rx.match("b")
        assert not rx.match("a")

    def test_quantifiers_pass_through(self):
        rx = compile_pattern("a{2,3}b?")
        assert rx.match("aa")
        assert rx.match("aaab")
        assert not rx.match("a")


class TestNameEscapes:
    def test_i_matches_name_start(self):
        rx = compile_pattern("\\i")
        for ch in ("a", "Z", "_", ":"):
            assert rx.match(ch), ch
        for ch in ("1", "-", " "):
            assert not rx.match(ch), ch

    def test_c_matches_name_char(self):
        rx = compile_pattern("\\c+")
        assert rx.match("a-b.c1")
        assert not rx.match("a b")

    def test_negated_forms(self):
        assert compile_pattern("\\I").match("1")
        assert not compile_pattern("\\I").match("a")
        assert compile_pattern("\\C").match(" ")
        assert not compile_pattern("\\C").match("a")

    def test_escape_inside_class_context(self):
        # \d etc. must survive untouched.
        rx = compile_pattern("[\\d]+")
        assert rx.match("123")


class TestCategoryEscapes:
    def test_letter_category(self):
        rx = compile_pattern("\\p{L}+")
        assert rx.match("abc")
        assert not rx.match("a1")

    def test_digit_category(self):
        rx = compile_pattern("\\p{Nd}+")
        assert rx.match("42")
        assert not rx.match("4a")

    def test_negated_category(self):
        rx = compile_pattern("\\P{N}")
        assert rx.match("x")
        assert not rx.match("7")

    def test_unknown_category_rejected(self):
        with pytest.raises(FacetError):
            compile_pattern("\\p{Sm}")

    def test_malformed_category_rejected(self):
        with pytest.raises(FacetError):
            compile_pattern("\\pL")
        with pytest.raises(FacetError):
            compile_pattern("\\p{L")


class TestErrors:
    def test_uncompilable_pattern_rejected(self):
        with pytest.raises(FacetError):
            compile_pattern("(unclosed")

    def test_translation_is_pure(self):
        # translate_pattern alone does not compile.
        text = translate_pattern("a^b\\i")
        assert "\\^" in text
        assert re.compile(text)
