"""Tests for the pluggable storage backends.

Fingerprinted snapshot versions (deterministic, timestamp-free),
list/restore round-trips, eviction, incremental checkpoint
correctness on the SQLite backend, and the legacy image matrix
through the file backend.
"""

import pytest

from repro.errors import CorruptionError, StorageError
from repro.storage import (
    BACKENDS,
    FileBackend,
    MemoryBackend,
    SqliteBackend,
    StorageEngine,
    TransactionManager,
    checkpoint,
    load_engine,
    recover,
    schema_fingerprint,
    snapshot_version,
)
from repro.storage.backends.base import parse_version
from repro.storage.persist import dumps_engine
from repro.workloads import make_library_document
from repro.xmlio import QName, parse_document
from repro.workloads.fixtures import EXAMPLE_8_DOCUMENT

from tests.test_storage_persist import (
    _as_legacy_v1,
    _as_legacy_v2,
    _as_legacy_v3,
)


def make_backend(name, tmp_path):
    tmp_path.mkdir(parents=True, exist_ok=True)
    if name == "file":
        return FileBackend(tmp_path / "store.img",
                           wal_path=tmp_path / "store.wal")
    if name == "sqlite":
        return SqliteBackend(tmp_path / "store.db")
    return MemoryBackend()


@pytest.fixture(params=sorted(BACKENDS))
def backend(request, tmp_path):
    return make_backend(request.param, tmp_path)


def _engine(capacity: int = 4) -> StorageEngine:
    engine = StorageEngine(block_capacity=capacity)
    engine.load_document(parse_document(EXAMPLE_8_DOCUMENT))
    return engine


def _snapshot(engine):
    return [(engine.node_kind(d), d.nid.symbols(), d.value)
            for d in engine.iter_document_order()]


class TestFingerprints:
    def test_same_state_same_fingerprint(self):
        assert schema_fingerprint(_engine()) == \
            schema_fingerprint(_engine())

    def test_schema_shape_changes_the_fingerprint(self):
        engine = _engine()
        fingerprint = schema_fingerprint(engine)
        library = engine.children(engine.document)[0]
        engine.insert_child(library, 0, name=QName("", "novel"))
        assert schema_fingerprint(engine) != fingerprint

    def test_index_definitions_change_the_fingerprint(self):
        engine = _engine()
        fingerprint = schema_fingerprint(engine)
        engine.create_index("library/book/title")
        assert schema_fingerprint(engine) != fingerprint

    def test_version_is_deterministic_and_parses(self):
        fingerprint = schema_fingerprint(_engine())
        version = snapshot_version(42, fingerprint)
        assert version == snapshot_version(42, fingerprint)
        lsn, prefix = parse_version(version)
        assert lsn == 42
        assert fingerprint.startswith(prefix)

    def test_all_backends_agree_on_the_version(self, tmp_path):
        versions = set()
        for name in sorted(BACKENDS):
            info = make_backend(name, tmp_path / name).checkpoint(
                _engine())
            versions.add(info.version)
        assert len(versions) == 1


class TestSnapshots:
    def test_checkpoint_records_a_listed_version(self, backend):
        info = backend.checkpoint(_engine())
        listed = backend.list_snapshots()
        assert [s.version for s in listed] == [info.version]
        assert listed[0].lsn == 0

    def test_restore_round_trips_exactly(self, backend):
        engine = _engine()
        info = backend.checkpoint(engine)
        restored = backend.restore(info.version)
        restored.check_invariants()
        assert _snapshot(restored) == _snapshot(engine)
        assert restored.relabel_count == 0

    def test_each_checkpoint_version_restores_its_state(self, backend):
        engine = _engine()
        wal = backend.open_wal()
        TransactionManager(engine, wal)
        states, versions = [], []
        states.append(_snapshot(engine))
        versions.append(backend.checkpoint(engine, wal=wal).version)
        library = engine.children(engine.document)[0]
        for round_ in range(3):
            engine.insert_child(library, 0,
                                name=QName("", f"added{round_}"))
            states.append(_snapshot(engine))
            versions.append(backend.checkpoint(engine, wal=wal).version)
        assert len(set(versions)) == len(versions)
        for version, state in zip(versions, states):
            assert _snapshot(backend.restore(version)) == state

    def test_eviction_keeps_the_newest(self, tmp_path):
        for name in sorted(BACKENDS):
            backend = make_backend(name, tmp_path / name)
            backend.max_snapshots = 2
            engine = _engine()
            wal = backend.open_wal()
            TransactionManager(engine, wal)
            library = engine.children(engine.document)[0]
            versions = [backend.checkpoint(engine, wal=wal).version]
            for round_ in range(3):
                engine.insert_child(library, 0,
                                    name=QName("", f"added{round_}"))
                versions.append(
                    backend.checkpoint(engine, wal=wal).version)
            kept = [s.version for s in backend.list_snapshots()]
            assert kept == versions[-2:], name
            with pytest.raises(StorageError):
                backend.restore(versions[0])

    def test_restore_unknown_version_raises(self, backend):
        backend.checkpoint(_engine())
        with pytest.raises(StorageError, match="unknown snapshot"):
            backend.restore("0000000099-cafecafecafe")

    def test_checkpoint_empty_engine_refused(self, backend):
        with pytest.raises(StorageError, match="empty engine"):
            backend.checkpoint(StorageEngine())


class TestIncrementalCheckpoints:
    """The SQLite backend rewrites only dirty blocks; the result must
    be indistinguishable from a full snapshot."""

    def _mutate(self, engine, tag):
        library = engine.children(engine.document)[0]
        paper = engine.insert_child(library, 0,
                                    name=QName("", "paper"))
        title = engine.insert_child(paper, 0, name=QName("", "title"))
        engine.insert_child(title, 0, text=f"Incremental {tag}")
        engine.set_attribute(paper, QName("", "tag"), str(tag))

    def test_incremental_equals_full_after_mutations(self, tmp_path):
        engine = _engine()
        incremental = SqliteBackend(tmp_path / "incr.db")
        incremental.checkpoint(engine)
        for tag in range(4):
            self._mutate(engine, tag)
            incremental.checkpoint(engine)
        # A from-scratch backend checkpoints the same engine fully.
        full = SqliteBackend(tmp_path / "full.db")
        info = full.checkpoint(engine)
        current = incremental.list_snapshots()[-1]
        assert current.version == info.version
        restored = incremental.restore(current.version)
        restored.check_invariants()
        assert _snapshot(restored) == \
            _snapshot(full.restore(info.version))
        assert _snapshot(restored) == _snapshot(engine)

    def test_deletes_drop_blocks_incrementally(self, tmp_path):
        engine = _engine()
        backend = SqliteBackend(tmp_path / "store.db")
        backend.checkpoint(engine)
        library = engine.children(engine.document)[0]
        engine.delete_subtree(engine.children(library)[0])
        info = backend.checkpoint(engine)
        restored = backend.restore(info.version)
        restored.check_invariants()
        assert _snapshot(restored) == _snapshot(engine)

    def test_interleaved_consumers_keep_diffs_valid(self, tmp_path):
        """Monolithic checkpoints between two SQLite checkpoints must
        not blind the SQLite backend to the intervening dirt."""
        engine = _engine()
        sqlite_backend = SqliteBackend(tmp_path / "store.db")
        file_backend = FileBackend(tmp_path / "store.img")
        sqlite_backend.checkpoint(engine)
        self._mutate(engine, "a")
        file_backend.checkpoint(engine)  # monolithic, not a consumer
        self._mutate(engine, "b")
        info = sqlite_backend.checkpoint(engine)
        restored = sqlite_backend.restore(info.version)
        assert _snapshot(restored) == _snapshot(engine)

    def test_second_sqlite_store_gets_a_full_snapshot(self, tmp_path):
        """A different SQLite database is a different consumer: its
        first checkpoint cannot reuse another store's diff baseline."""
        engine = _engine()
        first = SqliteBackend(tmp_path / "first.db")
        first.checkpoint(engine)
        self._mutate(engine, "x")
        second = SqliteBackend(tmp_path / "second.db")
        info = second.checkpoint(engine)
        assert _snapshot(second.restore(info.version)) == \
            _snapshot(engine)


class TestRecoverThroughBackends:
    def test_recover_replays_the_backend_wal(self, backend):
        engine = _engine()
        wal = backend.open_wal()
        manager = TransactionManager(engine, wal)
        checkpoint(engine, backend, wal=wal)
        library = engine.children(engine.document)[0]
        with manager.transaction():
            engine.insert_child(library, 0, name=QName("", "paper"))
        result = recover(backend)
        assert result.backend == backend.name
        assert result.replayed > 0
        assert result.relabels == 0
        assert _snapshot(result.engine) == _snapshot(engine)

    def test_recover_rejects_backend_plus_wal_path(self, tmp_path,
                                                   backend):
        backend.checkpoint(_engine())
        with pytest.raises(StorageError, match="not both"):
            recover(backend, wal_path=tmp_path / "other.wal")

    def test_corruption_error_is_located(self, tmp_path):
        backend = FileBackend(tmp_path / "store.img")
        backend.checkpoint(_engine())
        data = bytearray((tmp_path / "store.img").read_bytes())
        data[-1] ^= 0xFF
        (tmp_path / "store.img").write_bytes(bytes(data))
        with pytest.raises(CorruptionError) as info:
            backend.load_engine()
        assert info.value.backend == "file"
        assert info.value.as_dict()["backend"] == "file"


class TestLegacyImageMatrix:
    """SEDNAPY1/2/3/4 images all load through the file backend."""

    @pytest.fixture
    def index_free_engine(self):
        engine = StorageEngine(block_capacity=4)
        engine.load_document(make_library_document(books=3, papers=2,
                                                   seed=7))
        return engine

    @pytest.mark.parametrize("downgrade", [
        _as_legacy_v1, _as_legacy_v2, _as_legacy_v3,
        lambda image: image,
    ], ids=["SEDNAPY1", "SEDNAPY2", "SEDNAPY3", "SEDNAPY4"])
    def test_legacy_images_load_and_recover(self, tmp_path, downgrade,
                                            index_free_engine):
        image = downgrade(dumps_engine(index_free_engine))
        (tmp_path / "store.img").write_bytes(image)
        backend = FileBackend(tmp_path / "store.img")
        restored = backend.load_engine()
        restored.check_invariants()
        assert _snapshot(restored) == _snapshot(index_free_engine)
        result = recover(backend)
        assert result.backend == "file"
        assert result.relabels == 0

    @pytest.mark.parametrize("downgrade,magic", [
        (_as_legacy_v1, b"SEDNAPY1"), (_as_legacy_v2, b"SEDNAPY2"),
        (_as_legacy_v3, b"SEDNAPY3")],
        ids=["SEDNAPY1", "SEDNAPY2", "SEDNAPY3"])
    def test_legacy_reserialization_upgrades(self, downgrade, magic,
                                             index_free_engine):
        legacy = downgrade(dumps_engine(index_free_engine))
        assert legacy[:8] == magic
        upgraded = dumps_engine(load_engine(legacy))
        assert upgraded[:8] == b"SEDNAPY4"
        assert _snapshot(load_engine(upgraded)) == \
            _snapshot(index_free_engine)
