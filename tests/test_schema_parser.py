"""Tests for the XSD parser and writer over the paper's examples."""

import pytest

from repro.errors import SchemaSyntaxError, TypeUsageError
from repro.xmlio import QName, XSD_NAMESPACE
from repro.schema import (
    CombinationFactor,
    ComplexContentType,
    DocumentSchema,
    ElementDeclaration,
    GroupDefinition,
    InlineSimpleType,
    RepetitionFactor,
    SimpleContentType,
    TypeName,
    UNBOUNDED,
    parse_schema,
    write_schema,
)
from repro.workloads.fixtures import (
    EXAMPLE_1_SCHEMA,
    EXAMPLE_5_SCHEMA,
    EXAMPLE_6_SCHEMA,
    EXAMPLE_7_SCHEMA,
    LIBRARY_SCHEMA,
    wrap_in_schema,
)


class TestExample1:
    def test_three_declarations(self):
        schema = parse_schema(EXAMPLE_1_SCHEMA)
        group = schema.root_element.type.group
        names = [eld.name for eld in group.element_declarations()]
        assert names[:3] == ["Remark", "Book", "Note"]

    def test_nillable_only_on_first(self):
        schema = parse_schema(EXAMPLE_1_SCHEMA)
        remark, book, note = schema.root_element.type.group.members
        assert remark.nillable is True
        assert book.nillable is False
        assert note.nillable is False

    def test_repetition_factors(self):
        schema = parse_schema(EXAMPLE_1_SCHEMA)
        remark, book, note = schema.root_element.type.group.members
        assert remark.repetition == RepetitionFactor(1, 1)
        assert book.repetition == RepetitionFactor(0, 1000)
        assert note.repetition == RepetitionFactor(1, 1)

    def test_third_declaration_has_anonymous_type(self):
        schema = parse_schema(EXAMPLE_1_SCHEMA)
        note = schema.root_element.type.group.members[2]
        assert isinstance(note.type, ComplexContentType)


class TestExamples2And3:
    def test_sequence_group(self):
        schema = parse_schema(wrap_in_schema("""
          <xsd:element name="R"><xsd:complexType>
            <xsd:sequence>
              <xsd:element name="B" type="xsd:string"/>
              <xsd:element name="C" type="xsd:string"/>
            </xsd:sequence>
          </xsd:complexType></xsd:element>"""))
        group = schema.root_element.type.group
        assert group.combination is CombinationFactor.SEQUENCE
        assert [m.name for m in group.members] == ["B", "C"]

    def test_choice_group(self):
        schema = parse_schema(wrap_in_schema("""
          <xsd:element name="R"><xsd:complexType>
            <xsd:choice minOccurs="0" maxOccurs="unbounded">
              <xsd:element name="zero" type="xsd:string"/>
              <xsd:element name="one" type="xsd:string"/>
            </xsd:choice>
          </xsd:complexType></xsd:element>"""))
        group = schema.root_element.type.group
        assert group.combination is CombinationFactor.CHOICE
        assert group.repetition == RepetitionFactor(0, UNBOUNDED)


class TestExample5:
    def test_simple_content(self):
        schema = parse_schema(EXAMPLE_5_SCHEMA)
        price_type = schema.root_element.type
        assert isinstance(price_type, SimpleContentType)
        assert price_type.base == TypeName(
            QName(XSD_NAMESPACE, "decimal", "xsd"))
        assert price_type.attributes.names() == ("currency",)


class TestExample6:
    def test_mixed_flag(self):
        schema = parse_schema(EXAMPLE_6_SCHEMA)
        review = schema.root_element.type
        assert review.mixed is True

    def test_inner_book_not_mixed(self):
        schema = parse_schema(EXAMPLE_6_SCHEMA)
        book = schema.root_element.type.group.members[0]
        assert book.type.mixed is False
        inner_names = [m.name for m in book.type.group.members]
        assert inner_names == ["Title", "Author", "Date", "ISBN", "Publisher"]

    def test_attributes_of_example_4(self):
        schema = parse_schema(EXAMPLE_6_SCHEMA)
        atds = schema.root_element.type.attributes
        assert atds.names() == ("InStock", "Reviewer")
        assert atds.type_of("InStock").qname.local == "boolean"


class TestExample7:
    def test_named_and_anonymous_types(self):
        schema = parse_schema(EXAMPLE_7_SCHEMA)
        assert schema.target_namespace == "http://www.books.org"
        assert len(schema.complex_types) == 1
        (qname,) = schema.complex_types
        assert qname == QName("http://www.books.org", "BookPublication")
        assert isinstance(schema.root_element.type, ComplexContentType)

    def test_book_references_named_type(self):
        schema = parse_schema(EXAMPLE_7_SCHEMA)
        (book,) = schema.root_element.type.group.members
        assert book.name == "Book"
        assert book.repetition == RepetitionFactor(1, UNBOUNDED)
        resolved = schema.resolve(book.type)
        assert isinstance(resolved, ComplexContentType)

    def test_library_schema_parses(self):
        schema = parse_schema(LIBRARY_SCHEMA)
        assert schema.root_element.name == "library"
        assert len(schema.complex_types) == 1


class TestInlineSimpleTypes:
    def test_restriction_with_facets(self):
        schema = parse_schema(wrap_in_schema("""
          <xsd:element name="Grade">
            <xsd:simpleType>
              <xsd:restriction base="xsd:integer">
                <xsd:minInclusive value="1"/>
                <xsd:maxInclusive value="5"/>
              </xsd:restriction>
            </xsd:simpleType>
          </xsd:element>"""))
        assert isinstance(schema.root_element.type, InlineSimpleType)
        simple = schema.root_element.type.simple_type
        assert simple.validate("3")
        assert not simple.validate("6")

    def test_named_simple_type(self):
        schema = parse_schema(wrap_in_schema("""
          <xsd:simpleType name="Digits">
            <xsd:restriction base="xsd:string">
              <xsd:pattern value="[0-9]+"/>
            </xsd:restriction>
          </xsd:simpleType>
          <xsd:element name="Code" type="Digits"/>"""))
        resolved = schema.resolve(schema.root_element.type)
        assert resolved.validate("123")
        assert not resolved.validate("abc")

    def test_enumeration(self):
        schema = parse_schema(wrap_in_schema("""
          <xsd:element name="Color">
            <xsd:simpleType>
              <xsd:restriction base="xsd:string">
                <xsd:enumeration value="red"/>
                <xsd:enumeration value="blue"/>
              </xsd:restriction>
            </xsd:simpleType>
          </xsd:element>"""))
        simple = schema.root_element.type.simple_type
        assert simple.validate("red")
        assert not simple.validate("green")

    def test_list_type(self):
        schema = parse_schema(wrap_in_schema("""
          <xsd:element name="Scores">
            <xsd:simpleType>
              <xsd:list itemType="xsd:integer"/>
            </xsd:simpleType>
          </xsd:element>"""))
        simple = schema.root_element.type.simple_type
        assert simple.parse("1 2 3") == (1, 2, 3)

    def test_union_type(self):
        schema = parse_schema(wrap_in_schema("""
          <xsd:element name="Value">
            <xsd:simpleType>
              <xsd:union memberTypes="xsd:integer xsd:boolean"/>
            </xsd:simpleType>
          </xsd:element>"""))
        simple = schema.root_element.type.simple_type
        assert simple.parse("42") == 42
        assert simple.parse("true") is True


class TestErrors:
    def test_two_global_elements_rejected(self):
        with pytest.raises(SchemaSyntaxError):
            parse_schema(wrap_in_schema(
                '<xsd:element name="A" type="xsd:string"/>'
                '<xsd:element name="B" type="xsd:string"/>'))

    def test_no_global_element_rejected(self):
        with pytest.raises(SchemaSyntaxError):
            parse_schema(wrap_in_schema(""))

    def test_unknown_type_reference_rejected(self):
        with pytest.raises(TypeUsageError):
            parse_schema(wrap_in_schema(
                '<xsd:element name="A" type="Nope"/>'))

    def test_type_attribute_and_inline_type_conflict(self):
        with pytest.raises(SchemaSyntaxError):
            parse_schema(wrap_in_schema("""
              <xsd:element name="A" type="xsd:string">
                <xsd:complexType><xsd:sequence/></xsd:complexType>
              </xsd:element>"""))

    def test_unsupported_construct_rejected(self):
        with pytest.raises(SchemaSyntaxError):
            parse_schema(wrap_in_schema(
                '<xsd:attributeGroup name="g"/>'
                '<xsd:element name="A" type="xsd:string"/>'))

    def test_element_missing_name_rejected(self):
        with pytest.raises(SchemaSyntaxError):
            parse_schema(wrap_in_schema(
                '<xsd:element type="xsd:string"/>'))

    def test_mixed_simple_content_rejected(self):
        with pytest.raises(SchemaSyntaxError):
            parse_schema(wrap_in_schema("""
              <xsd:element name="A">
                <xsd:complexType mixed="true">
                  <xsd:simpleContent>
                    <xsd:extension base="xsd:string"/>
                  </xsd:simpleContent>
                </xsd:complexType>
              </xsd:element>"""))


class TestWriterRoundTrip:
    @pytest.mark.parametrize("source", [
        EXAMPLE_1_SCHEMA,
        EXAMPLE_5_SCHEMA,
        EXAMPLE_6_SCHEMA,
        EXAMPLE_7_SCHEMA,
        LIBRARY_SCHEMA,
    ])
    def test_write_then_parse_preserves_structure(self, source):
        first = parse_schema(source)
        second = parse_schema(write_schema(first))
        assert _schemas_equal(first, second)

    def test_written_text_is_parseable_xsd(self):
        text = write_schema(parse_schema(EXAMPLE_7_SCHEMA))
        assert "xsd:schema" in text
        assert 'maxOccurs="unbounded"' in text


def _schemas_equal(a: DocumentSchema, b: DocumentSchema) -> bool:
    return (_elements_equal(a.root_element, b.root_element)
            and set(a.complex_types) == set(b.complex_types)
            and all(_types_equal(a.complex_types[k], b.complex_types[k])
                    for k in a.complex_types)
            and a.target_namespace == b.target_namespace)


def _elements_equal(a: ElementDeclaration, b: ElementDeclaration) -> bool:
    return (a.name == b.name and a.repetition == b.repetition
            and a.nillable == b.nillable and _types_equal(a.type, b.type))


def _types_equal(a, b) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, TypeName):
        return a == b
    if isinstance(a, InlineSimpleType):
        # Simple types compare by observable behaviour in round-trips.
        return True
    if isinstance(a, SimpleContentType):
        return (a.base == b.base
                and a.attributes.items == b.attributes.items)
    if isinstance(a, ComplexContentType):
        if a.mixed != b.mixed:
            return False
        if (a.group is None) != (b.group is None):
            return False
        if a.group is not None and not _groups_equal(a.group, b.group):
            return False
        return _attrs_equal(a.attributes, b.attributes)
    return False


def _attrs_equal(a, b) -> bool:
    if a.names() != b.names():
        return False
    return all(_types_equal(a.type_of(n), b.type_of(n)) for n in a.names())


def _groups_equal(a: GroupDefinition, b: GroupDefinition) -> bool:
    if (a.combination != b.combination or a.repetition != b.repetition
            or len(a.members) != len(b.members)):
        return False
    for ma, mb in zip(a.members, b.members):
        if isinstance(ma, ElementDeclaration):
            if not (isinstance(mb, ElementDeclaration)
                    and _elements_equal(ma, mb)):
                return False
        elif not (isinstance(mb, GroupDefinition)
                  and _groups_equal(ma, mb)):
            return False
    return True
