"""Lease lifecycle edges: expiry during commit, heartbeat racing
expiry, dead-letter drain and re-claim, backoff jitter bounds.

The lease manager takes an injectable clock, so every expiry edge here
is driven deterministically — the only real-time tests are the ones
about actual thread handoff (release waking a waiter, timeout).
"""

import threading
import time

import pytest

from repro import obs
from repro.server import (
    DatabaseServer,
    LeaseExpired,
    LeaseManager,
    LeaseTimeout,
)
from repro.storage import MemoryBackend
from repro.workloads.bookstore import (
    BOOKS_NAMESPACE,
    make_bookstore_document,
)
from repro.xmlio.qname import QName


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def manager(clock):
    return LeaseManager(ttl=0.5, seed=7, clock=clock)


class TestGrantRelease:
    def test_grant_then_release_frees_the_lease(self, manager):
        lease = manager.acquire("w1")
        assert manager.holder() is lease
        assert lease.owner == "w1"
        manager.release(lease)
        assert manager.holder() is None
        assert manager.grants == 1

    def test_release_wakes_a_blocked_waiter(self):
        manager = LeaseManager(ttl=60.0, seed=7)  # never expires
        first = manager.acquire("w1")
        granted = []

        def contend():
            granted.append(manager.acquire("w2", timeout=5.0))

        thread = threading.Thread(target=contend)
        thread.start()
        time.sleep(0.02)
        assert not granted  # blocked behind w1
        manager.release(first)
        thread.join(timeout=5.0)
        assert granted and granted[0].owner == "w2"

    def test_timeout_is_bounded_retry_not_a_queue(self):
        manager = LeaseManager(ttl=60.0, seed=7)
        manager.acquire("w1")
        started = time.monotonic()
        with pytest.raises(LeaseTimeout):
            manager.acquire("w2", timeout=0.05)
        # Gave up promptly: the timeout bounds the wait, with slack
        # for backoff granularity.
        assert time.monotonic() - started < 1.0


class TestExpiryAndDeadLetters:
    def test_expired_holder_is_dead_lettered_and_displaced(
            self, manager, clock):
        lease = manager.acquire("w1", note="txn #1")
        clock.advance(0.6)  # past the 0.5 TTL
        successor = manager.acquire("w2")  # immediate: incumbent lapsed
        assert successor.owner == "w2"
        assert manager.expirations == 1
        letters = manager.drain_dead_letters()
        assert [l.owner for l in letters] == ["w1"]
        assert letters[0].note == "txn #1"
        assert manager.drain_dead_letters() == []  # drained

    def test_expired_lease_cannot_renew_or_release(self, manager, clock):
        lease = manager.acquire("w1")
        clock.advance(0.6)
        with pytest.raises(LeaseExpired):
            manager.renew(lease)
        # Release of the lapsed claim is a harmless no-op...
        manager.release(lease)
        # ...and the lease is genuinely free for a re-claim.
        assert manager.acquire("w2").owner == "w2"

    def test_reclaim_after_dead_letter_drain(self, manager, clock):
        for round_no in range(3):
            manager.acquire(f"w{round_no}", note=f"round {round_no}")
            clock.advance(0.6)
        assert manager.holder() is None  # last one also lapsed
        letters = manager.drain_dead_letters()
        assert [l.note for l in letters] == [
            "round 0", "round 1", "round 2"]
        fresh = manager.acquire("fresh")
        assert manager.holder() is fresh


class TestHeartbeat:
    def test_renewal_extends_the_ttl(self, manager, clock):
        lease = manager.acquire("w1")
        clock.advance(0.4)
        manager.renew(lease)
        assert lease.renewals == 1
        assert lease.lease_until == pytest.approx(clock.now + 0.5)
        clock.advance(0.4)  # 0.8s of life — dead without the heartbeat
        manager.check(lease)  # still live

    def test_renewal_racing_expiry_is_atomic(self, manager, clock):
        """Whichever side reaches the lock first wins — a heartbeat
        arriving at (or after) the expiry instant loses cleanly."""
        lease = manager.acquire("w1")
        clock.advance(0.5)  # now == lease_until: expired, not 'just in'
        with pytest.raises(LeaseExpired):
            manager.renew(lease)
        assert lease.revoked
        assert [l.owner for l in manager.drain_dead_letters()] == ["w1"]

    def test_renewal_after_reclaim_fails(self, manager, clock):
        lease = manager.acquire("w1")
        clock.advance(0.6)
        manager.acquire("w2")  # displaces the lapsed w1
        clock.advance(0.1)
        with pytest.raises(LeaseExpired):
            manager.renew(lease)  # w1's handle is a stranger now


class TestBackoffJitter:
    def test_jitter_stays_in_bounds(self):
        manager = LeaseManager(base_backoff=0.005, max_backoff=0.1,
                               seed=42)
        for attempt in range(12):
            expected = min(0.005 * (2 ** attempt), 0.1)
            for _ in range(50):
                delay = manager.backoff_delay(attempt)
                # Uniform in [delay/2, delay]: never a zero-sleep hot
                # spin, never past the cap.
                assert expected / 2 <= delay <= expected

    def test_backoff_is_exponential_until_the_cap(self):
        manager = LeaseManager(base_backoff=0.005, max_backoff=0.1,
                               seed=0)
        # attempt 10 would be 5.12s uncapped; the cap bounds it.
        assert manager.backoff_delay(10) <= 0.1

    def test_same_seed_replays_the_same_jitter(self):
        a = LeaseManager(seed=123)
        b = LeaseManager(seed=123)
        c = LeaseManager(seed=124)
        seq_a = [a.backoff_delay(i % 4) for i in range(20)]
        seq_b = [b.backoff_delay(i % 4) for i in range(20)]
        seq_c = [c.backoff_delay(i % 4) for i in range(20)]
        assert seq_a == seq_b
        assert seq_a != seq_c


class TestExpiryDuringCommit:
    def test_lapsed_holder_rolls_back_instead_of_publishing(self):
        """A write transaction whose lease expires mid-flight aborts
        through the inverse-op rollback: the engine is exactly as
        before, and the abandoned work is dead-lettered."""
        server = DatabaseServer(MemoryBackend(),
                                make_bookstore_document(books=4, seed=1),
                                lease_ttl=0.05)
        try:
            session = server.open_session("write")
            before = server.engine.node_count()

            def slow_mutate(engine, sess):
                store = engine.children(engine.document)[0]
                engine.insert_child(
                    store, 0, name=QName(BOOKS_NAMESPACE, "Book"))
                time.sleep(0.1)  # outlive the 0.05s TTL

            with pytest.raises(LeaseExpired):
                session.execute(slow_mutate)
            assert server.engine.node_count() == before  # rolled back
            letters = server.leases.drain_dead_letters()
            assert len(letters) == 1
            assert "write session" in letters[0].note
            session.close()  # releasing the lapsed lease is a no-op
        finally:
            server.close()
