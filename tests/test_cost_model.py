"""The cost-based planner is an optimisation, never a semantics change.

Three families of guarantees:

* **Parity** — for every query of the corpus, the cost-chosen plan
  returns nid-identical results to every forced policy (``structural``,
  ``scan``, ``naive``) and to the naive navigator; and it keeps doing
  so after statistics-shifting mutations and after index DDL.
* **Pricing sanity** — the model's orderings match the engine's real
  cost structure: scan beats naive on a deep path, a selective
  eq-probe beats scanning, and the planner may override the structural
  first-predicate pick when a later predicate prices cheaper.
* **Exactly-scoped invalidation** — a statistics-epoch bump re-plans
  only the plans whose *consulted* schema nodes drifted; every other
  plan is restamped in place, keeping its object identity and its
  lowered executor.
"""

import pytest

from repro import obs
from repro.query import StorageQueryEngine
from repro.storage import StorageEngine
from repro.workloads import make_library_document
from repro.xmlio import parse_document, serialize_document
from repro.xmlio.qname import QName

#: Every planner policy the cost-chosen plan must agree with.
FORCED_POLICIES = ("structural", "scan", "naive")

#: Query shapes over the library workload covering every strategy the
#: planner emits: scans, hybrids, positional naive fallbacks, multi-
#: schema merges, value probes (eq and exists) and path probes.
LIBRARY_CORPUS = (
    "/library/book/title",
    "/library/paper/title",
    "/library/*/title",
    "//title",
    "//author",
    "//book[1]",
    "//book[last()]/title",
    "/library/book[2]/author",
    "/library/book[@year]/title",
    "/library/book[author]/title",
    "/library/book/issue/publisher",
    "//issue/year",
    "/library/book[@zzz]/title",
)


def _build_engine():
    text = serialize_document(
        make_library_document(books=40, papers=12, seed=5,
                              year_attrs=True))
    engine = StorageEngine()
    engine.load_document(parse_document(text))
    return engine


def _nids(descriptors):
    return [descriptor.nid for descriptor in descriptors]


def _value_corpus(engine, queries):
    """Corpus entries whose predicate values must exist in this
    particular document (seed-dependent)."""
    year = engine.string_value(
        queries.evaluate_naive("/library/book/@year")[0])
    author = engine.string_value(
        queries.evaluate_naive("/library/book/author")[0])
    return (
        f"/library/book[@year='{year}']/title",
        f"/library/book[@year='{year}'][author]/title",
        f"/library/book[@year][@year='{year}']/title",
        f"/library/book[author='{author}']/title",
        "/library/book[@year='1492']/title",  # in no book's range
    )


def _assert_parity(engine, corpus):
    """One cost-policy engine against one engine per forced policy,
    all over the same store."""
    cost = StorageQueryEngine(engine)
    forced = {policy: StorageQueryEngine(engine, planner_policy=policy)
              for policy in FORCED_POLICIES}
    for path in corpus:
        expected = _nids(cost.evaluate_naive(path))
        got = _nids(cost.evaluate(path))
        assert got == expected, f"cost policy diverges on {path}"
        for policy, queries in forced.items():
            assert _nids(queries.evaluate(path)) == expected, \
                f"{policy} policy diverges on {path}"
    return cost, forced


class TestCorpusParity:
    def test_cost_vs_every_forced_policy(self):
        engine = _build_engine()
        queries = StorageQueryEngine(engine)
        corpus = LIBRARY_CORPUS + _value_corpus(engine, queries)
        _assert_parity(engine, corpus)

    def test_parity_survives_index_ddl(self):
        engine = _build_engine()
        queries = StorageQueryEngine(engine)
        corpus = LIBRARY_CORPUS + _value_corpus(engine, queries)
        engine.create_index("library/book/@year", kind="value",
                            value_type="integer")
        engine.create_index("//author", kind="path")
        _assert_parity(engine, corpus)
        engine.drop_index("library/book/@year", kind="value")
        _assert_parity(engine, corpus)

    def test_parity_survives_stat_shifting_mutations(self):
        engine = _build_engine()
        queries = StorageQueryEngine(engine)
        corpus = LIBRARY_CORPUS + _value_corpus(engine, queries)
        engine.create_index("library/book/@year", kind="value",
                            value_type="integer")
        cost, forced = _assert_parity(engine, corpus)
        # Shift the distribution the model priced: rewrite half the
        # @year values (churn) and grow the paper population past the
        # drift threshold (count shift), then re-check every engine
        # with its now-stale plan cache.
        books = queries.evaluate_naive("/library/book")
        for book in books[::2]:
            engine.set_attribute(book, QName("", "year"), "1492",
                                 replace=True)
        library = queries.evaluate_naive("/library")[0]
        for _ in range(24):
            paper = engine.insert_child(library, 0, name=QName("", "paper"))
            title = engine.insert_child(paper, 0, name=QName("", "title"))
            engine.insert_child(title, 0, text="Incunabula")
        for path in corpus + ("/library/book[@year='1492']/title",):
            expected = _nids(cost.evaluate_naive(path))
            assert _nids(cost.evaluate(path)) == expected, \
                f"cost policy diverges on {path} after mutations"
            for policy, engine_q in forced.items():
                assert _nids(engine_q.evaluate(path)) == expected, \
                    f"{policy} policy diverges on {path} after mutations"


class TestPricingSanity:
    @pytest.fixture(scope="class")
    def setup(self):
        engine = _build_engine()
        engine.create_index("library/book/@year", kind="value",
                            value_type="integer")
        engine.create_index("//author", kind="path")
        return engine, StorageQueryEngine(engine)

    def test_scan_prices_below_naive(self, setup):
        _, queries = setup
        plan = queries.compile("/library/book/issue/publisher")
        assert plan.strategy == "scan"
        by_strategy = {c.strategy: c for c in plan.cost_table}
        assert "naive" in by_strategy
        assert plan.cost.total < by_strategy["naive"].total

    def test_eq_probe_prices_below_scan(self, setup):
        engine, queries = setup
        year = engine.string_value(
            queries.evaluate_naive("/library/book/@year")[0])
        plan = queries.compile(f"/library/book[@year='{year}']/title")
        assert plan.strategy == "index"
        assert plan.index_used == "value:library/book/@year"
        totals = [c.total for c in plan.cost_table]
        assert plan.cost.total == min(totals)

    def test_path_probe_chosen_for_descendant_merge(self, setup):
        _, queries = setup
        plan = queries.compile("//author")
        assert plan.strategy == "index"
        assert plan.index_used == "path://author"

    def test_cost_overrides_structural_first_predicate(self, setup):
        """The showcase: structural precedence probes the first
        applicable predicate ([@year], an unselective exists-probe);
        the cost model prices the second predicate's eq-probe cheaper
        and takes it."""
        engine, queries = setup
        year = engine.string_value(
            queries.evaluate_naive("/library/book/@year")[0])
        path = f"/library/book[@year][@year='{year}']/title"
        plan = queries.compile(path)
        structural = StorageQueryEngine(
            engine, planner_policy="structural").compile(path)
        assert plan.strategy == "index"
        assert plan.cost is not None and plan.cost.chosen
        assert len(plan.cost_table) >= 3
        # The eq probe keys on the literal, the structural pick is the
        # bare exists probe — and the model priced the former cheaper.
        assert plan.probe is not None and plan.probe[0] == "eq"
        assert structural.probe is not None and structural.probe[0] == "exists"
        same_index = [c for c in plan.cost_table
                      if c.strategy == "index"
                      and c.index_used == plan.index_used]
        assert len(same_index) >= 2, \
            "both predicates should have produced probe candidates"
        rejected = [c.total for c in same_index if not c.chosen]
        assert plan.cost.total < min(rejected)

    def test_out_of_range_literal_prices_near_zero_rows(self, setup):
        _, queries = setup
        plan = queries.compile("/library/book[@year='1492']/title")
        assert plan.cost.output_rows == 0

    def test_every_plan_records_consulted_nodes(self, setup):
        _, queries = setup
        for path in ("/library/book/title", "//author", "//book[1]"):
            plan = queries.compile(path)
            assert plan.stats_nodes, f"no consulted nodes for {path}"


class TestExactlyScopedInvalidation:
    def test_only_drifted_plans_replan(self):
        engine = _build_engine()
        queries = StorageQueryEngine(engine)
        book_q = "/library/book/title"
        paper_q = "/library/paper/title"
        book_plan = queries.compile(book_q)
        paper_plan = queries.compile(paper_q)
        # Lower both closure chains so executor survival is observable.
        queries.evaluate(book_q)
        queries.evaluate(paper_q)
        assert book_plan.executor is not None
        assert paper_plan.executor is not None
        # The two plans consulted disjoint regions below /library/*:
        # only the paper query priced the paper's children.
        book_nodes = {node.path for node in book_plan.stats_nodes}
        paper_nodes = {node.path for node in paper_plan.stats_nodes}
        assert "library/paper/author" in paper_nodes
        assert "library/paper/author" not in book_nodes
        # Drift exactly library/paper/author: grow it far past the
        # relative threshold without touching any book statistic.
        papers = queries.evaluate_naive("/library/paper")
        epoch_before = engine.stats.epoch
        for paper in papers:
            for _ in range(4):
                engine.insert_child(paper, 0, name=QName("", "author"))
        assert engine.stats.epoch > epoch_before, \
            "mutations did not cross the drift threshold"
        restamps = obs.REGISTRY.counter("query.cost.stats_restamps")
        replans = obs.REGISTRY.counter("query.cost.stats_replans")
        r0, p0 = restamps.value, replans.value
        # Undrifted plan: restamped in place — same object, executor
        # kept, no recompilation.
        book_again = queries.compile(book_q)
        assert book_again is book_plan
        assert book_again.executor is not None
        assert restamps.value == r0 + 1
        assert replans.value == p0
        # Drifted plan: re-priced.  The decision stands (still a scan),
        # so the entry is adopted in place rather than invalidated.
        paper_again = queries.compile(paper_q)
        assert replans.value == p0 + 1
        assert restamps.value == r0 + 1
        assert paper_again is paper_plan
        # Both queries still answer correctly after the shuffle.
        assert _nids(queries.evaluate(book_q)) == \
            _nids(queries.evaluate_naive(book_q))
        assert _nids(queries.evaluate(paper_q)) == \
            _nids(queries.evaluate_naive(paper_q))

    def test_restamp_is_idempotent_until_next_drift(self):
        engine = _build_engine()
        queries = StorageQueryEngine(engine)
        plan = queries.compile("/library/book/title")
        papers = queries.evaluate_naive("/library/paper")
        epoch_before = engine.stats.epoch
        for paper in papers:
            for _ in range(4):
                engine.insert_child(paper, 0, name=QName("", "author"))
        assert engine.stats.epoch > epoch_before
        first = queries.compile("/library/book/title")
        second = queries.compile("/library/book/title")
        assert first is plan and second is plan
        assert plan.stats_epoch == engine.stats.epoch
