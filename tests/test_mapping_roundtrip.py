"""Tests for f, g, =_c and the Section 8 round-trip theorem."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.xmlio import parse_document, serialize_document
from repro.schema import parse_schema
from repro.algebra import InstanceBuilder, check_conformance
from repro.mapping import (
    content_difference,
    content_equal,
    document_to_tree,
    serialize_tree,
    tree_to_document,
    untyped_document_to_tree,
)
from repro.workloads.fixtures import (
    EXAMPLE_5_SCHEMA,
    EXAMPLE_6_SCHEMA,
    EXAMPLE_7_DOCUMENT,
    EXAMPLE_7_SCHEMA,
    EXAMPLE_8_DOCUMENT,
    LIBRARY_SCHEMA,
    wrap_in_schema,
)


@pytest.fixture(scope="module")
def bookstore_schema():
    return parse_schema(EXAMPLE_7_SCHEMA)


@pytest.fixture(scope="module")
def library_schema():
    return parse_schema(LIBRARY_SCHEMA)


class TestMappingF:
    def test_bookstore_document_maps_to_conforming_tree(
            self, bookstore_schema):
        tree = document_to_tree(parse_document(EXAMPLE_7_DOCUMENT),
                                bookstore_schema)
        assert check_conformance(tree, bookstore_schema) == []

    def test_library_document_maps(self, library_schema):
        tree = document_to_tree(parse_document(EXAMPLE_8_DOCUMENT),
                                library_schema)
        assert check_conformance(tree, library_schema) == []

    def test_type_annotations_set(self, bookstore_schema):
        tree = document_to_tree(parse_document(EXAMPLE_7_DOCUMENT),
                                bookstore_schema)
        book = tree.document_element().element_children()[0]
        assert book.type().head().local == "BookPublication"
        title = book.element_children()[0]
        assert title.type().head().local == "string"

    def test_wrong_root_rejected(self, bookstore_schema):
        with pytest.raises(ValidationError):
            document_to_tree(parse_document("<NotBookStore/>"),
                             bookstore_schema)

    def test_wrong_child_order_rejected(self, library_schema):
        bad = "<library><paper><title>t</title></paper>" \
              "<book><title>t</title></book></library>"
        with pytest.raises(ValidationError) as exc_info:
            document_to_tree(parse_document(bad), library_schema)
        assert "5.4.2.3" in str(exc_info.value)

    def test_bad_simple_value_rejected(self, library_schema):
        bad = ("<library><book><title>t</title>"
               "<issue><publisher>p</publisher><year>not-a-year</year>"
               "</issue></book></library>")
        with pytest.raises(ValidationError) as exc_info:
            document_to_tree(parse_document(bad), library_schema)
        assert "5.1.1" in str(exc_info.value)

    def test_text_in_element_only_content_rejected(self, library_schema):
        bad = "<library>stray text<book><title>t</title></book></library>"
        with pytest.raises(ValidationError):
            document_to_tree(parse_document(bad), library_schema)

    def test_whitespace_between_elements_tolerated(self, library_schema):
        spaced = "<library>\n  <book>\n <title>t</title>\n</book>\n</library>"
        tree = document_to_tree(parse_document(spaced), library_schema)
        assert check_conformance(tree, library_schema) == []

    def test_simple_typed_element_gets_one_text_child(self, library_schema):
        tree = document_to_tree(parse_document(
            "<library><book><title></title></book></library>"),
            library_schema)
        title = (tree.document_element()
                 .element_children()[0].element_children()[0])
        children = list(title.children())
        assert len(children) == 1
        assert children[0].node_kind() == "text"
        assert children[0].string_value() == ""

    def test_undeclared_attribute_rejected(self, library_schema):
        bad = '<library bogus="1"/>'
        with pytest.raises(ValidationError) as exc_info:
            document_to_tree(parse_document(bad), library_schema)
        assert "5.3.1" in str(exc_info.value)


class TestAttributesAndSimpleContent:
    def test_simple_content_with_attribute(self):
        schema = parse_schema(EXAMPLE_5_SCHEMA)
        tree = document_to_tree(
            parse_document('<Price currency="USD">12.50</Price>'), schema)
        assert check_conformance(tree, schema) == []
        price = tree.document_element()
        assert price.string_value() == "12.50"
        (attr,) = price.attributes()
        assert attr.string_value() == "USD"

    def test_missing_mandatory_attribute_rejected(self):
        schema = parse_schema(EXAMPLE_5_SCHEMA)
        with pytest.raises(ValidationError) as exc_info:
            document_to_tree(parse_document("<Price>12.50</Price>"), schema)
        assert "missing attribute" in str(exc_info.value)

    def test_bad_attribute_value_rejected(self):
        schema = parse_schema(EXAMPLE_6_SCHEMA)
        bad = '<Review InStock="maybe" Reviewer="bob"/>'
        with pytest.raises(ValidationError):
            document_to_tree(parse_document(bad), schema)

    def test_mixed_content_preserved(self):
        schema = parse_schema(EXAMPLE_6_SCHEMA)
        doc = parse_document(
            '<Review InStock="true" Reviewer="bob">Great stuff '
            "<Book><Title>T</Title><Author>A</Author><Date>D</Date>"
            "<ISBN>I</ISBN><Publisher>P</Publisher></Book> indeed</Review>")
        tree = document_to_tree(doc, schema)
        assert check_conformance(tree, schema) == []
        kinds = [c.node_kind()
                 for c in tree.document_element().children()]
        assert kinds == ["text", "element", "text"]


class TestNil:
    SCHEMA = wrap_in_schema(
        '<xsd:element name="Remark" type="xsd:string" nillable="true"/>')

    def test_nilled_element(self):
        schema = parse_schema(self.SCHEMA)
        doc = parse_document(
            '<Remark xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"'
            ' xsi:nil="true"/>')
        tree = document_to_tree(doc, schema)
        assert check_conformance(tree, schema) == []
        element = tree.document_element()
        assert element.nilled().head() is True
        assert not element.children()

    def test_nil_on_non_nillable_rejected(self):
        schema = parse_schema(wrap_in_schema(
            '<xsd:element name="Remark" type="xsd:string"/>'))
        doc = parse_document(
            '<Remark xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"'
            ' xsi:nil="true"/>')
        with pytest.raises(ValidationError):
            document_to_tree(doc, schema)

    def test_nilled_element_with_content_rejected(self):
        schema = parse_schema(self.SCHEMA)
        doc = parse_document(
            '<Remark xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"'
            ' xsi:nil="true">oops</Remark>')
        with pytest.raises(ValidationError):
            document_to_tree(doc, schema)

    def test_nil_round_trips(self):
        schema = parse_schema(self.SCHEMA)
        doc = parse_document(
            '<Remark xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"'
            ' xsi:nil="true"/>')
        tree = document_to_tree(doc, schema)
        again = tree_to_document(tree)
        assert content_equal(doc, again)


class TestMappingG:
    def test_serialize_tree_text(self, bookstore_schema):
        tree = document_to_tree(parse_document(EXAMPLE_7_DOCUMENT),
                                bookstore_schema)
        text = serialize_tree(tree)
        assert "<BookStore" in text
        assert "<Title>My Life and Times</Title>" in text

    def test_namespace_declared_at_root(self, bookstore_schema):
        tree = document_to_tree(parse_document(EXAMPLE_7_DOCUMENT),
                                bookstore_schema)
        doc = tree_to_document(tree)
        assert doc.root.namespace_decls.get("") == "http://www.books.org"


class TestContentEquality:
    def test_identical_documents(self):
        a = parse_document("<r><a>1</a></r>")
        b = parse_document("<r><a>1</a></r>")
        assert content_equal(a, b)

    def test_attribute_order_matters_not_for_mapping(self):
        a = parse_document('<r x="1" y="2"/>')
        b = parse_document('<r y="2" x="1"/>')
        assert content_equal(a, b)  # dict comparison is order-free

    def test_text_difference_detected(self):
        a = parse_document("<r>one</r>")
        b = parse_document("<r>two</r>")
        difference = content_difference(a, b)
        assert difference is not None
        assert "text differs" in difference.reason

    def test_name_difference_detected(self):
        difference = content_difference(parse_document("<r><a/></r>"),
                                        parse_document("<r><b/></r>"))
        assert "names differ" in difference.reason

    def test_whitespace_only_text_ignored_by_default(self):
        a = parse_document("<r>\n  <a/>\n</r>")
        b = parse_document("<r><a/></r>")
        assert content_equal(a, b)
        assert not content_equal(a, b,
                                 ignore_insignificant_whitespace=False)

    def test_mixed_text_not_ignored(self):
        a = parse_document("<r>hello<a/></r>")
        b = parse_document("<r><a/></r>")
        assert not content_equal(a, b)


class TestRoundTripTheorem:
    """g(f(X)) =_c X for the paper's examples and random instances."""

    @pytest.mark.parametrize("schema_text,document_text", [
        (EXAMPLE_7_SCHEMA, EXAMPLE_7_DOCUMENT),
        (LIBRARY_SCHEMA, EXAMPLE_8_DOCUMENT),
    ])
    def test_theorem_on_paper_examples(self, schema_text, document_text):
        schema = parse_schema(schema_text)
        document = parse_document(document_text)
        tree = document_to_tree(document, schema)
        assert content_equal(tree_to_document(tree), document)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**9))
    def test_theorem_on_random_instances(self, seed):
        schema = parse_schema(LIBRARY_SCHEMA)
        builder = InstanceBuilder(schema, seed=seed)
        tree = builder.build()
        assert check_conformance(tree, schema) == []
        document = tree_to_document(tree)
        # f over the serialized instance gives a tree serializing equal.
        reparsed = parse_document(serialize_document(document))
        tree2 = document_to_tree(reparsed, schema)
        assert content_equal(tree_to_document(tree2), document)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**9))
    def test_theorem_with_attributes_and_mixed(self, seed):
        schema = parse_schema(EXAMPLE_6_SCHEMA)
        builder = InstanceBuilder(schema, seed=seed)
        tree = builder.build()
        assert check_conformance(tree, schema) == []
        document = tree_to_document(tree)
        reparsed = parse_document(serialize_document(document))
        tree2 = document_to_tree(reparsed, schema)
        assert content_equal(document, tree_to_document(tree2))


class TestUntypedMapping:
    def test_untyped_preserves_everything(self):
        document = parse_document("<r>  <a x='1'/> text </r>")
        tree = untyped_document_to_tree(document)
        r = tree.document_element()
        kinds = [c.node_kind() for c in r.children()]
        assert kinds == ["text", "element", "text"]

    def test_untyped_round_trip_exact(self):
        document = parse_document("<r>a<b k='v'>c</b>d</r>")
        tree = untyped_document_to_tree(document)
        again = tree_to_document(tree)
        assert content_equal(document, again,
                             ignore_insignificant_whitespace=False)
