"""Mutation testing of the Section 6.2 checker.

Each mutation takes a *conforming* tree and breaks exactly one
requirement; the checker must report at least one violation, and the
reported item number must belong to the requirement family the
mutation targets.  This guards against a checker that silently ignores
a whole class of defects (which ordinary positive tests cannot catch).
"""

import pytest

from repro.algebra import InstanceBuilder, check_conformance
from repro.schema import parse_schema
from repro.xmlio import QName, xsd
from repro.xsdtypes import builtin
from repro.workloads.fixtures import LIBRARY_SCHEMA, wrap_in_schema

_SCHEMA = wrap_in_schema("""
 <xsd:complexType name="Entry">
  <xsd:sequence>
   <xsd:element name="label" type="xsd:string"/>
   <xsd:element name="note" type="xsd:string" minOccurs="0"/>
  </xsd:sequence>
  <xsd:attribute name="id" type="xsd:string"/>
 </xsd:complexType>
 <xsd:element name="log"><xsd:complexType>
  <xsd:sequence>
   <xsd:element name="entry" type="Entry"
                minOccurs="1" maxOccurs="unbounded"/>
  </xsd:sequence>
 </xsd:complexType></xsd:element>""")


@pytest.fixture
def conforming():
    schema = parse_schema(_SCHEMA)
    tree = InstanceBuilder(schema, seed=7).build()
    assert check_conformance(tree, schema) == []
    return schema, tree


def _items(violations):
    return {v.item for v in violations}


def _first_entry(tree):
    return tree.document_element().element_children()[0]


class TestStructuralMutations:
    def test_remove_mandatory_child(self, conforming):
        schema, tree = conforming
        entry = _first_entry(tree)
        label = entry.element_children()[0]
        tree.algebra.remove_child(entry, label)
        violations = check_conformance(tree, schema)
        assert "5.4.2.3" in _items(violations)

    def test_duplicate_mandatory_child(self, conforming):
        schema, tree = conforming
        entry = _first_entry(tree)
        extra = tree.algebra.create_element(QName("", "label"))
        tree.algebra.annotate_element(extra, xsd("string"),
                                      simple_type=builtin("string"))
        tree.algebra.append_child(entry, extra)
        tree.algebra.append_child(extra, tree.algebra.create_text("x"))
        violations = check_conformance(tree, schema)
        assert "5.4.2.3" in _items(violations)

    def test_unknown_child_element(self, conforming):
        schema, tree = conforming
        entry = _first_entry(tree)
        rogue = tree.algebra.create_element(QName("", "rogue"))
        tree.algebra.append_child(entry, rogue)
        violations = check_conformance(tree, schema)
        assert "5.4.2.3" in _items(violations)

    def test_stray_text_in_element_content(self, conforming):
        schema, tree = conforming
        log = tree.document_element()
        tree.algebra.append_child(log, tree.algebra.create_text("oops"))
        violations = check_conformance(tree, schema)
        assert "5.4.2.1" in _items(violations)


class TestAnnotationMutations:
    def test_retype_element(self, conforming):
        schema, tree = conforming
        entry = _first_entry(tree)
        label = entry.element_children()[0]
        tree.algebra.annotate_element(label, xsd("integer"),
                                      simple_type=builtin("integer"))
        violations = check_conformance(tree, schema)
        assert "4" in _items(violations) or "5.1.1" in _items(violations)

    def test_corrupt_text_value(self, conforming):
        # Replace a string-typed child with an integer-typed tree whose
        # text does not parse: retype entry's label as integer but keep
        # the word text.
        schema, tree = conforming
        entry = _first_entry(tree)
        label = entry.element_children()[0]
        (text,) = label.children()
        if not any(ch.isalpha() for ch in text.string_value()):
            tree.algebra.remove_child(label, text)
            tree.algebra.append_child(label,
                                      tree.algebra.create_text("words"))
        # now make the declaration expect integers
        int_schema = parse_schema(_SCHEMA.replace(
            '<xsd:element name="label" type="xsd:string"/>',
            '<xsd:element name="label" type="xsd:integer"/>'))
        violations = check_conformance(tree, int_schema)
        assert any(item.startswith("4") or item.startswith("5")
                   for item in _items(violations))

    def test_spurious_nil(self, conforming):
        schema, tree = conforming
        entry = _first_entry(tree)
        label = entry.element_children()[0]
        tree.algebra.annotate_element(
            label, xsd("string"), simple_type=builtin("string"),
            nilled=True)
        violations = check_conformance(tree, schema)
        assert "5" in _items(violations)


class TestAttributeMutations:
    def test_remove_declared_attribute(self, conforming):
        schema, tree = conforming
        entry = _first_entry(tree)
        (attribute,) = entry.attributes()
        entry._attributes.remove(attribute)  # surgical corruption
        violations = check_conformance(tree, schema)
        assert "5.3.1" in _items(violations)

    def test_add_undeclared_attribute(self, conforming):
        schema, tree = conforming
        entry = _first_entry(tree)
        rogue = tree.algebra.create_attribute(QName("", "rogue"), "1")
        tree.algebra.attach_attribute(entry, rogue)
        violations = check_conformance(tree, schema)
        assert "5.3.1" in _items(violations)

    def test_retype_attribute(self, conforming):
        schema, tree = conforming
        entry = _first_entry(tree)
        (attribute,) = entry.attributes()
        tree.algebra.annotate_attribute(attribute, xsd("integer"),
                                        simple_type=builtin("integer"))
        violations = check_conformance(tree, schema)
        assert "5.3.1" in _items(violations)


class TestRandomizedMutations:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_breakage_is_always_caught(self, seed):
        """Apply one random mutation from the catalogue; the checker
        must never stay silent."""
        import random
        rng = random.Random(seed)
        schema = parse_schema(LIBRARY_SCHEMA)
        elements = []
        for attempt in range(10):  # skip degenerate (empty) instances
            tree = InstanceBuilder(schema,
                                   seed=seed * 100 + attempt).build()
            assert check_conformance(tree, schema) == []
            elements = [node for node in _walk(tree)
                        if node.node_kind() == "element"
                        and node.parent_or_none() is not None
                        and node.parent_or_none().node_kind()
                        != "document"]
            if elements:
                break
        assert elements, "all candidate instances were degenerate"
        algebra = tree.algebra
        target = rng.choice(elements)
        mutation = rng.choice(("rename", "retype", "stray-attr",
                               "stray-child"))
        if mutation == "rename":
            target._name = QName("", "zzz")
        elif mutation == "retype":
            algebra.annotate_element(target, xsd("gYear"),
                                     simple_type=builtin("gYear"))
        elif mutation == "stray-attr":
            algebra.attach_attribute(
                target, algebra.create_attribute(QName("", "zz"), "1"))
        else:
            algebra.append_child(
                target, algebra.create_element(QName("", "zzz")))
        assert check_conformance(tree, schema) != []


def _walk(node):
    yield node
    for child in node.children():
        yield from _walk(child)
