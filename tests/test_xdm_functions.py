"""Tests for the accessor-based query function library."""

import pytest

from repro.errors import ModelError
from repro.mapping import document_to_tree, untyped_document_to_tree
from repro.query import evaluate_tree
from repro.schema import parse_schema
from repro.xdm import functions as fn
from repro.xmlio import parse_document
from repro.xsdtypes import AtomicValue, builtin
from repro.workloads.fixtures import wrap_in_schema

_TYPED_SCHEMA = wrap_in_schema("""
 <xsd:element name="nums"><xsd:complexType>
  <xsd:sequence>
   <xsd:element name="n" type="xsd:integer"
                minOccurs="0" maxOccurs="unbounded"/>
  </xsd:sequence>
 </xsd:complexType></xsd:element>""")


@pytest.fixture
def tree():
    return untyped_document_to_tree(parse_document(
        '<r id="7">alpha<b>beta</b><b>beta</b></r>'))


@pytest.fixture
def typed_tree():
    return document_to_tree(
        parse_document("<nums><n>1</n><n>2</n><n>2</n></nums>"),
        parse_schema(_TYPED_SCHEMA))


class TestBasics:
    def test_node_name(self, tree):
        root = tree.document_element()
        assert fn.node_name(root).local == "r"
        assert fn.node_name(tree) is None  # document nodes are nameless

    def test_string_of_node(self, tree):
        assert fn.string(tree.document_element()) == "alphabetabeta"

    def test_string_of_atomic(self):
        assert fn.string(AtomicValue(42, builtin("integer"))) == "42"

    def test_count_empty_exists(self, tree):
        items = evaluate_tree(tree, "/r/b")
        assert fn.count(items) == 2
        assert not fn.empty(items)
        assert fn.exists(items)
        assert fn.empty([])

    def test_root(self, tree):
        b = evaluate_tree(tree, "/r/b")[0]
        assert fn.root(b) is tree

    def test_nilled(self, tree):
        assert fn.nilled(tree.document_element()) is False
        assert fn.nilled(tree) is None

    def test_base_uri(self):
        document = untyped_document_to_tree(
            parse_document("<a/>", base_uri="urn:x"))
        assert fn.base_uri(document) == "urn:x"
        assert fn.base_uri(untyped_document_to_tree(
            parse_document("<a/>"))) is None


class TestData:
    def test_atomizes_typed_nodes(self, typed_tree):
        nodes = evaluate_tree(typed_tree, "/nums/n")
        values = [atomic.value for atomic in fn.data(nodes)]
        assert values == [1, 2, 2]
        assert all(atomic.type is builtin("integer")
                   for atomic in fn.data(nodes))

    def test_single_node(self, typed_tree):
        node = evaluate_tree(typed_tree, "/nums/n")[0]
        assert fn.data(node)[1].value == 1

    def test_passes_atomics_through(self):
        atomic = AtomicValue(5, builtin("integer"))
        assert list(fn.data([atomic])) == [atomic]

    def test_rejects_junk(self):
        with pytest.raises(ModelError):
            fn.data([object()])

    def test_distinct_values(self, typed_tree):
        nodes = evaluate_tree(typed_tree, "/nums/n")
        assert [a.value for a in fn.distinct_values(nodes)] == [1, 2]

    def test_string_join(self, typed_tree):
        nodes = evaluate_tree(typed_tree, "/nums/n")
        assert fn.string_join(nodes, "+") == "1+2+2"


class TestDeepEqual:
    def test_identical_subtrees(self, tree):
        first, second = evaluate_tree(tree, "/r/b")
        assert first is not second
        assert fn.deep_equal(first, second)

    def test_different_text(self):
        t = untyped_document_to_tree(
            parse_document("<r><b>x</b><b>y</b></r>"))
        first, second = evaluate_tree(t, "/r/b")
        assert not fn.deep_equal(first, second)

    def test_different_names(self):
        t = untyped_document_to_tree(parse_document("<r><a/><b/></r>"))
        first, second = t.document_element().element_children()
        assert not fn.deep_equal(first, second)

    def test_attribute_order_irrelevant(self):
        t = untyped_document_to_tree(parse_document(
            "<r><e x='1' y='2'/><e y='2' x='1'/></r>"))
        first, second = t.document_element().element_children()
        assert fn.deep_equal(first, second)

    def test_child_count_matters(self):
        t = untyped_document_to_tree(
            parse_document("<r><e><c/></e><e/></r>"))
        first, second = t.document_element().element_children()
        assert not fn.deep_equal(first, second)
