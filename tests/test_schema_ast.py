"""Tests for the abstract syntax of Sections 2-3 and its formal types."""

import pytest

from repro.errors import SchemaError, TypeUsageError
from repro.xmlio import QName, xsd
from repro.schema import (
    AttributeDeclarations,
    CombinationFactor,
    ComplexContentType,
    DocumentSchema,
    ElementDeclaration,
    GroupDefinition,
    ONCE,
    RepetitionFactor,
    SimpleContentType,
    TypeName,
    UNBOUNDED,
)
from repro.schema.constructors import (
    BOOLEAN,
    Enumeration,
    FM,
    Interleave,
    NAME,
    NAT_NUMBER,
    Pair,
    Seq,
    Tuple,
    Union,
)
from repro.xsdtypes import builtin


def _string_ref() -> TypeName:
    return TypeName(xsd("string"))


class TestRepetitionFactor:
    def test_default_is_once(self):
        assert ONCE.minimum == 1 and ONCE.maximum == 1

    def test_permits(self):
        rf = RepetitionFactor(2, 4)
        assert not rf.permits(1)
        assert rf.permits(2)
        assert rf.permits(4)
        assert not rf.permits(5)

    def test_unbounded(self):
        rf = RepetitionFactor(0, UNBOUNDED)
        assert rf.unbounded
        assert rf.permits(0)
        assert rf.permits(10**9)

    def test_min_above_max_rejected(self):
        with pytest.raises(SchemaError):
            RepetitionFactor(3, 2)

    def test_negative_min_rejected(self):
        with pytest.raises(SchemaError):
            RepetitionFactor(-1, 1)

    def test_bad_max_rejected(self):
        with pytest.raises(SchemaError):
            RepetitionFactor(0, "lots")

    def test_as_pair(self):
        assert RepetitionFactor(0, UNBOUNDED).as_pair() == (0, "unbounded")


class TestElementDeclaration:
    def test_formal_tuple_shape(self):
        eld = ElementDeclaration("Book", _string_ref(),
                                 RepetitionFactor(0, 5), nillable=True)
        assert eld.as_tuple() == (
            "Book", _string_ref(), RepetitionFactor(0, 5), True)

    def test_defaults_match_paper(self):
        # Example 1: default repetition (1, 1), nillable false.
        eld = ElementDeclaration("InStock", _string_ref())
        assert eld.repetition == ONCE
        assert eld.nillable is False

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            ElementDeclaration("not a name", _string_ref())

    def test_colon_in_name_rejected(self):
        with pytest.raises(SchemaError):
            ElementDeclaration("a:b", _string_ref())


class TestGroupDefinition:
    def test_empty_content(self):
        group = GroupDefinition()
        assert group.empty_content
        assert group.is_flat

    def test_duplicate_element_names_rejected(self):
        a = ElementDeclaration("X", _string_ref())
        b = ElementDeclaration("X", _string_ref())
        with pytest.raises(SchemaError):
            GroupDefinition((a, b))

    def test_nested_groups_allowed(self):
        inner = GroupDefinition(
            (ElementDeclaration("A", _string_ref()),),
            CombinationFactor.CHOICE)
        outer = GroupDefinition(
            (ElementDeclaration("B", _string_ref()), inner))
        assert not outer.is_flat
        assert [e.name for e in outer.element_declarations()] == ["B", "A"]

    def test_same_name_in_nested_group_allowed(self):
        # The pairwise-difference rule applies per group, not globally.
        inner = GroupDefinition((ElementDeclaration("A", _string_ref()),))
        outer = GroupDefinition(
            (ElementDeclaration("A", _string_ref()), inner))
        assert len(list(outer.element_declarations())) == 2


class TestAttributeDeclarations:
    def test_finite_mapping(self):
        atds = AttributeDeclarations(
            (("InStock", TypeName(xsd("boolean"))),
             ("Reviewer", _string_ref())))
        assert atds.names() == ("InStock", "Reviewer")
        assert atds.type_of("InStock") == TypeName(xsd("boolean"))
        assert len(atds) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            AttributeDeclarations(
                (("a", _string_ref()), ("a", _string_ref())))

    def test_missing_name_raises(self):
        with pytest.raises(KeyError):
            AttributeDeclarations().type_of("nope")


class TestDocumentSchema:
    def _bookstore(self) -> DocumentSchema:
        book_type = ComplexContentType(group=GroupDefinition(
            (ElementDeclaration("Title", _string_ref()),)))
        root_type = ComplexContentType(group=GroupDefinition(
            (ElementDeclaration(
                "Book", TypeName(QName("", "BookPublication")),
                RepetitionFactor(1, UNBOUNDED)),)))
        return DocumentSchema(
            root_element=ElementDeclaration("BookStore", root_type),
            complex_types={QName("", "BookPublication"): book_type})

    def test_resolves_complex_type_name(self):
        schema = self._bookstore()
        resolved = schema.resolve(TypeName(QName("", "BookPublication")))
        assert isinstance(resolved, ComplexContentType)

    def test_resolves_simple_type_name(self):
        schema = self._bookstore()
        assert schema.resolve(_string_ref()) is builtin("string")

    def test_is_simple_ref(self):
        schema = self._bookstore()
        assert schema.is_simple_ref(_string_ref())
        assert not schema.is_simple_ref(
            TypeName(QName("", "BookPublication")))

    def test_unknown_type_usage_rejected(self):
        bad_root = ElementDeclaration(
            "R", TypeName(QName("", "Missing")))
        with pytest.raises(TypeUsageError):
            DocumentSchema(root_element=bad_root)

    def test_unknown_type_in_nested_declaration_rejected(self):
        nested = ComplexContentType(group=GroupDefinition(
            (ElementDeclaration("X", TypeName(QName("", "Ghost"))),)))
        with pytest.raises(TypeUsageError):
            DocumentSchema(
                root_element=ElementDeclaration("R", nested))

    def test_unknown_attribute_type_rejected(self):
        bad = ComplexContentType(attributes=AttributeDeclarations(
            (("a", TypeName(QName("", "Ghost"))),)))
        with pytest.raises(TypeUsageError):
            DocumentSchema(root_element=ElementDeclaration("R", bad))


class TestFormalConstructors:
    def test_nat_number(self):
        assert NAT_NUMBER.contains(0)
        assert NAT_NUMBER.contains(5)
        assert not NAT_NUMBER.contains(-1)
        assert not NAT_NUMBER.contains(True)
        assert not NAT_NUMBER.contains("3")

    def test_boolean(self):
        assert BOOLEAN.contains(True)
        assert not BOOLEAN.contains(1)

    def test_seq(self):
        ty = Seq(NAT_NUMBER)
        assert ty.contains(())
        assert ty.contains((1, 2))
        assert not ty.contains((1, -2))

    def test_fm_requires_distinct_keys(self):
        ty = FM(NAME, NAT_NUMBER)
        assert ty.contains((("a", 1), ("b", 2)))
        assert not ty.contains((("a", 1), ("a", 2)))
        assert ty.contains({"a": 1})

    def test_union(self):
        ty = Union(NAT_NUMBER, BOOLEAN)
        assert ty.contains(3)
        assert ty.contains(False)
        assert not ty.contains("x")

    def test_enumeration(self):
        ty = Enumeration("sequence", "choice")
        assert ty.contains("sequence")
        assert not ty.contains("union")

    def test_pair(self):
        ty = Pair(NAT_NUMBER, BOOLEAN)
        assert ty.contains((1, True))
        assert not ty.contains((1,))
        assert not ty.contains((True, 1))

    def test_interleave_accepts_both_orders(self):
        ty = Interleave(NAT_NUMBER, BOOLEAN)
        assert ty.contains((1, True))
        assert ty.contains((True, 1))
        assert not ty.contains((1, 2))

    def test_tuple(self):
        ty = Tuple(NAME, NAT_NUMBER, BOOLEAN)
        assert ty.contains(("x", 1, False))
        assert not ty.contains(("x", 1))

    def test_element_declaration_inhabits_its_formal_type(self):
        # ElementDeclaration = Tuple(ElemName, Type, RepetitionFactor,
        #                            NillIndicator)
        from repro.schema.constructors import Atom, Instance
        repetition = Pair(NAT_NUMBER,
                          Union(NAT_NUMBER, Enumeration(UNBOUNDED)))
        formal = Tuple(
            NAME,
            Instance(TypeName),
            Atom("RepetitionFactor",
                 lambda v: isinstance(v, RepetitionFactor)
                 and repetition.contains(v.as_pair())),
            BOOLEAN)
        eld = ElementDeclaration("Book", _string_ref(),
                                 RepetitionFactor(0, UNBOUNDED))
        assert formal.contains(eld.as_tuple())


class TestSimpleContentType:
    def test_shape(self):
        # Example 5: decimal base with a currency attribute.
        sct = SimpleContentType(
            base=TypeName(xsd("decimal")),
            attributes=AttributeDeclarations(
                (("currency", _string_ref()),)))
        assert sct.base.qname.local == "decimal"
        assert sct.attributes.names() == ("currency",)
