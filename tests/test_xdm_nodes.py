"""Tests for the Section 5 node classes and their ten accessors."""

import pytest

from repro.errors import AlgebraError, ModelError
from repro.xmlio import QName, xsd
from repro.xsdtypes import UNTYPED_ATOMIC, builtin
from repro.xdm import (
    ANY_TYPE_NAME,
    UNTYPED_ATOMIC_NAME,
    AttributeNode,
    DocumentNode,
    ElementNode,
    TextNode,
)
from repro.algebra import StateAlgebra


@pytest.fixture
def algebra():
    return StateAlgebra()


def _small_tree(algebra):
    """<doc> <a x="1">hello<b>world</b></a> </doc>"""
    document = algebra.create_document(base_uri="http://example.org/d")
    a = algebra.create_element(QName("", "a"))
    algebra.append_child(document, a)
    x = algebra.create_attribute(QName("", "x"), "1")
    algebra.attach_attribute(a, x)
    algebra.append_child(a, algebra.create_text("hello"))
    b = algebra.create_element(QName("", "b"))
    algebra.append_child(a, b)
    algebra.append_child(b, algebra.create_text("world"))
    return document, a, b, x


class TestDocumentNode:
    def test_fixed_empty_accessors(self, algebra):
        document = algebra.create_document()
        assert not document.node_name()
        assert not document.parent()
        assert not document.type()
        assert not document.attributes()
        assert not document.nilled()
        assert document.node_kind() == "document"

    def test_string_value_is_childs(self, algebra):
        document, a, _b, _x = _small_tree(algebra)
        assert document.string_value() == a.string_value()

    def test_document_element(self, algebra):
        document, a, _b, _x = _small_tree(algebra)
        assert document.document_element() is a

    def test_document_element_missing(self, algebra):
        with pytest.raises(ModelError):
            algebra.create_document().document_element()

    def test_base_uri(self, algebra):
        document, *_ = _small_tree(algebra)
        assert list(document.base_uri()) == ["http://example.org/d"]


class TestElementNode:
    def test_node_kind_and_name(self, algebra):
        _d, a, _b, _x = _small_tree(algebra)
        assert a.node_kind() == "element"
        assert a.node_name().head() == QName("", "a")

    def test_string_value_concatenates_descendant_text(self, algebra):
        _d, a, b, _x = _small_tree(algebra)
        assert a.string_value() == "helloworld"
        assert b.string_value() == "world"

    def test_string_value_skips_attributes(self, algebra):
        _d, a, _b, _x = _small_tree(algebra)
        assert "1" not in a.string_value()

    def test_default_type_is_any_type(self, algebra):
        _d, a, _b, _x = _small_tree(algebra)
        assert a.type().head() == ANY_TYPE_NAME

    def test_annotated_type(self, algebra):
        element = algebra.create_element(QName("", "n"))
        algebra.annotate_element(element, xsd("integer"),
                                 simple_type=builtin("integer"))
        algebra.append_child(element, algebra.create_text("42"))
        assert element.type().head() == xsd("integer")
        (value,) = element.typed_value()
        assert value.value == 42
        assert value.type is builtin("integer")

    def test_untyped_element_typed_value(self, algebra):
        element = algebra.create_element(QName("", "n"))
        algebra.append_child(element, algebra.create_text("free text"))
        (value,) = element.typed_value()
        assert value.value == "free text"
        assert value.type is UNTYPED_ATOMIC

    def test_untyped_element_with_children_yields_untyped_atomic(
            self, algebra):
        _d, a, _b, _x = _small_tree(algebra)
        (value,) = a.typed_value()
        assert value.value == "helloworld"

    def test_typed_element_only_content_typed_value_is_error(self, algebra):
        parent = algebra.create_element(QName("", "p"))
        child = algebra.create_element(QName("", "c"))
        algebra.append_child(parent, child)
        algebra.annotate_element(parent, QName("", "SomeComplexType"))
        with pytest.raises(ModelError):
            parent.typed_value()

    def test_nilled_element_has_empty_typed_value(self, algebra):
        element = algebra.create_element(QName("", "n"))
        algebra.annotate_element(element, xsd("string"),
                                 simple_type=builtin("string"), nilled=True)
        assert not element.typed_value()
        assert element.nilled().head() is True

    def test_children_and_attributes_accessors(self, algebra):
        _d, a, b, x = _small_tree(algebra)
        assert list(a.attributes()) == [x]
        children = list(a.children())
        assert len(children) == 2
        assert children[1] is b

    def test_attribute_by_name(self, algebra):
        _d, a, _b, x = _small_tree(algebra)
        assert a.attribute_by_name(QName("", "x")) is x
        assert a.attribute_by_name(QName("", "zz")) is None


class TestAttributeNode:
    def test_fixed_empty_accessors(self, algebra):
        _d, _a, _b, x = _small_tree(algebra)
        assert not x.children()
        assert not x.attributes()
        assert not x.nilled()
        assert x.node_kind() == "attribute"

    def test_string_and_typed_value(self, algebra):
        _d, _a, _b, x = _small_tree(algebra)
        assert x.string_value() == "1"
        (value,) = x.typed_value()
        assert value.type is UNTYPED_ATOMIC

    def test_typed_attribute(self, algebra):
        attribute = algebra.create_attribute(QName("", "n"), "17")
        algebra.annotate_attribute(attribute, xsd("integer"),
                                   simple_type=builtin("integer"))
        (value,) = attribute.typed_value()
        assert value.value == 17

    def test_parent_is_owner_element(self, algebra):
        _d, a, _b, x = _small_tree(algebra)
        assert x.parent().head() is a


class TestTextNode:
    def test_fixed_empty_accessors(self, algebra):
        text = algebra.create_text("t")
        assert not text.node_name()
        assert not text.children()
        assert not text.attributes()
        assert not text.nilled()
        assert text.node_kind() == "text"

    def test_type_is_untyped_atomic(self, algebra):
        text = algebra.create_text("t")
        assert text.type().head() == UNTYPED_ATOMIC_NAME

    def test_values(self, algebra):
        text = algebra.create_text("payload")
        assert text.string_value() == "payload"
        (value,) = text.typed_value()
        assert value.value == "payload"


class TestNodeIdentity:
    def test_nodes_are_identity_equal(self, algebra):
        a = algebra.create_element(QName("", "same"))
        b = algebra.create_element(QName("", "same"))
        assert a != b
        assert a == a

    def test_identifiers_unique(self, algebra):
        nodes = [algebra.create_text(str(i)) for i in range(10)]
        assert len({n.identifier for n in nodes}) == 10

    def test_root_and_ancestors(self, algebra):
        document, a, b, _x = _small_tree(algebra)
        assert b.root() is document
        assert list(b.ancestors()) == [a, document]


class TestBaseUriInheritance:
    def test_children_inherit_base_uri(self, algebra):
        document, a, b, x = _small_tree(algebra)
        assert a.base_uri() == document.base_uri()
        assert b.base_uri() == a.base_uri()
        assert x.base_uri() == a.base_uri()
