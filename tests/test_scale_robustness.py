"""Scale and robustness checks: deep, wide and large documents."""

import pytest

from repro.mapping import (
    content_equal,
    tree_to_document,
    untyped_document_to_tree,
)
from repro.order import document_order
from repro.query import evaluate_tree
from repro.storage import StorageEngine
from repro.xmlio import parse_document, serialize_document
from repro.workloads import make_library_document


def _deep_document(depth: int) -> str:
    opening = "".join(f"<e{i}>" for i in range(depth))
    closing = "".join(f"</e{i}>" for i in reversed(range(depth)))
    return f"{opening}leaf{closing}"


def _wide_document(width: int) -> str:
    children = "".join(f"<c>{i}</c>" for i in range(width))
    return f"<r>{children}</r>"


class TestDeepDocuments:
    DEPTH = 400

    def test_parse_and_model(self):
        tree = untyped_document_to_tree(
            parse_document(_deep_document(self.DEPTH)))
        assert len(document_order(tree)) == self.DEPTH + 2

    def test_storage(self):
        engine = StorageEngine()
        engine.load_document(parse_document(_deep_document(self.DEPTH)))
        engine.check_invariants()
        assert engine.node_count() == self.DEPTH + 2
        # The deepest label has one component per level.
        deepest = max(engine.iter_document_order(),
                      key=lambda d: d.nid.depth)
        assert deepest.nid.depth == self.DEPTH + 2

    def test_roundtrip(self):
        document = parse_document(_deep_document(self.DEPTH))
        tree = untyped_document_to_tree(document)
        assert content_equal(tree_to_document(tree), document)


class TestWideDocuments:
    WIDTH = 5000

    def test_parse_and_query(self):
        tree = untyped_document_to_tree(
            parse_document(_wide_document(self.WIDTH)))
        assert len(evaluate_tree(tree, "/r/c")) == self.WIDTH
        assert len(evaluate_tree(tree, "/r/c[5000]")) == 1

    def test_storage_blocks_chain(self):
        engine = StorageEngine(block_capacity=32)
        engine.load_document(parse_document(_wide_document(self.WIDTH)))
        engine.check_invariants()
        c = engine.schema.find_path("r/c")
        assert c.descriptor_count == self.WIDTH
        assert c.block_count() == (self.WIDTH + 31) // 32

    def test_sibling_labels_stay_single_digit_heavy(self):
        """Bulk-loaded labels spread evenly; with base 256 and 5000
        siblings the labels need two digits but stay short."""
        engine = StorageEngine()
        engine.load_document(parse_document(_wide_document(self.WIDTH)))
        r = engine.children(engine.document)[0]
        lengths = {len(child.nid) for child in engine.children(r)}
        assert max(lengths) <= 8


class TestLargeDocuments:
    def test_end_to_end_on_30k_nodes(self):
        document = make_library_document(books=1000, papers=1000, seed=1)
        text = serialize_document(document)
        reparsed = parse_document(text)
        tree = untyped_document_to_tree(reparsed)
        engine = StorageEngine()
        engine.load_document(reparsed)
        assert engine.schema.node_count() == 17
        titles_model = len(evaluate_tree(tree, "//title"))
        titles_storage = sum(
            1 for _ in engine.scan_schema_node(
                engine.schema.find_path("library/book/title")))
        titles_storage += sum(
            1 for _ in engine.scan_schema_node(
                engine.schema.find_path("library/paper/title")))
        assert titles_model == titles_storage == 2000

    def test_huge_text_node(self):
        payload = "x" * 1_000_000
        document = parse_document(f"<a>{payload}</a>")
        assert document.root.text_content() == payload
        engine = StorageEngine()
        engine.load_document(document)
        a = engine.children(engine.document)[0]
        assert len(engine.string_value(a)) == 1_000_000

    def test_many_attributes(self):
        attrs = " ".join(f'a{i}="{i}"' for i in range(500))
        document = parse_document(f"<e {attrs}/>")
        engine = StorageEngine()
        engine.load_document(document)
        e = engine.children(engine.document)[0]
        assert len(engine.attributes(e)) == 500
