"""Tests for the value classes of the non-trivial XSD value spaces."""

from decimal import Decimal

import pytest
from hypothesis import given, strategies as st

from repro.xsdtypes import (
    Binary,
    Duration,
    IndeterminateOrder,
    Temporal,
    days_from_civil,
    days_in_month,
    is_leap_year,
)


class TestCalendar:
    def test_epoch(self):
        assert days_from_civil(1970, 1, 1) == 0

    def test_day_after_epoch(self):
        assert days_from_civil(1970, 1, 2) == 1

    def test_known_date(self):
        # 2000-03-01 was 11017 days after the epoch.
        assert days_from_civil(2000, 3, 1) == 11017

    def test_negative_years_supported(self):
        assert days_from_civil(-1, 1, 1) < days_from_civil(1, 1, 1)

    def test_leap_years(self):
        assert is_leap_year(2000)
        assert is_leap_year(2004)
        assert not is_leap_year(1900)
        assert not is_leap_year(2001)

    def test_days_in_month(self):
        assert days_in_month(2004, 2) == 29
        assert days_in_month(2005, 2) == 28
        assert days_in_month(2005, 4) == 30
        assert days_in_month(2005, 12) == 31

    @given(st.integers(min_value=-5000, max_value=5000),
           st.integers(min_value=1, max_value=12))
    def test_day_numbers_strictly_increase(self, year, month):
        last = days_in_month(year, month)
        first_day = days_from_civil(year, month, 1)
        last_day = days_from_civil(year, month, last)
        assert last_day - first_day == last - 1


class TestTemporalOrdering:
    def test_same_zone_comparison(self):
        a = Temporal("date", 2004, 7, 1, tz_minutes=0)
        b = Temporal("date", 2004, 7, 2, tz_minutes=0)
        assert a < b
        assert b > a
        assert a <= a

    def test_timezone_normalization(self):
        # 12:00 at +02:00 is the same instant as 10:00Z.
        a = Temporal("dateTime", 2004, 7, 1, 12, 0, Decimal(0), 120)
        b = Temporal("dateTime", 2004, 7, 1, 10, 0, Decimal(0), 0)
        assert a == b

    def test_zoned_vs_unzoned_equal_is_false(self):
        a = Temporal("dateTime", 2004, 7, 1, 12, 0, Decimal(0), 0)
        b = Temporal("dateTime", 2004, 7, 1, 12, 0, Decimal(0), None)
        assert a != b

    def test_zoned_vs_unzoned_far_apart_is_determinate(self):
        a = Temporal("date", 2004, 1, 1, tz_minutes=None)
        b = Temporal("date", 2005, 1, 1, tz_minutes=0)
        assert a < b

    def test_zoned_vs_unzoned_close_is_indeterminate(self):
        a = Temporal("dateTime", 2004, 7, 1, 12, 0, Decimal(0), None)
        b = Temporal("dateTime", 2004, 7, 1, 13, 0, Decimal(0), 0)
        with pytest.raises(IndeterminateOrder):
            bool(a < b)

    def test_cross_kind_comparison_rejected(self):
        with pytest.raises(IndeterminateOrder):
            bool(Temporal("date") < Temporal("time"))

    def test_hash_consistent_with_eq(self):
        a = Temporal("dateTime", 2004, 7, 1, 12, 0, Decimal(0), 120)
        b = Temporal("dateTime", 2004, 7, 1, 10, 0, Decimal(0), 0)
        assert hash(a) == hash(b)


class TestTemporalCanonical:
    def test_date_canonical(self):
        assert Temporal("date", 2004, 7, 1).canonical() == "2004-07-01"

    def test_datetime_canonical_with_zone(self):
        t = Temporal("dateTime", 2004, 7, 1, 9, 5, Decimal("6.5"), 0)
        assert t.canonical() == "2004-07-01T09:05:06.5Z"

    def test_negative_offset(self):
        t = Temporal("time", hour=1, minute=2, second=Decimal(3),
                     tz_minutes=-330)
        assert t.canonical() == "01:02:03-05:30"

    def test_g_types_canonical(self):
        assert Temporal("gYear", 2004).canonical() == "2004"
        assert Temporal("gYearMonth", 2004, 7).canonical() == "2004-07"
        assert Temporal("gMonthDay", month=7, day=4).canonical() == "--07-04"
        assert Temporal("gDay", day=4).canonical() == "---04"
        assert Temporal("gMonth", month=7).canonical() == "--07"

    def test_negative_year(self):
        assert Temporal("gYear", -44).canonical() == "-0044"


class TestDuration:
    def test_equality_of_mixed_units(self):
        assert Duration(months=12) == Duration(months=12)
        assert Duration(seconds=Decimal(86400)) == Duration(
            seconds=Decimal(86400))

    def test_day_time_ordering(self):
        assert Duration(seconds=Decimal(1)) < Duration(seconds=Decimal(2))

    def test_year_month_ordering(self):
        assert Duration(months=1) < Duration(months=2)

    def test_indeterminate_comparison(self):
        # One month vs 30 days: depends on the starting instant.
        with pytest.raises(IndeterminateOrder):
            bool(Duration(months=1) < Duration(seconds=Decimal(30 * 86400)))

    def test_determinate_mixed_comparison(self):
        # One month is always longer than a single day.
        assert Duration(seconds=Decimal(86400)) < Duration(months=1)

    def test_canonical_zero(self):
        assert Duration().canonical() == "PT0S"

    def test_canonical_composite(self):
        d = Duration(months=14,
                     seconds=Decimal(3 * 86400 + 4 * 3600 + 5 * 60 + 6))
        assert d.canonical() == "P1Y2M3DT4H5M6S"

    def test_canonical_negative(self):
        assert Duration(months=-1).canonical() == "-P1M"

    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000))
    def test_pure_month_order_total(self, a, b):
        da, db = Duration(months=a), Duration(months=b)
        assert (da < db) == (a < b)


class TestBinary:
    def test_length(self):
        assert len(Binary(b"\x01\x02")) == 2

    def test_hex(self):
        assert Binary(b"\xde\xad").hex() == "DEAD"

    def test_equality(self):
        assert Binary(b"ab") == Binary(b"ab")
        assert Binary(b"ab") != Binary(b"ba")
