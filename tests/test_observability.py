"""Tests for the production observability layer (PR 8).

The always-on telemetry tier, the structured event + slow-query log,
windowed histograms, per-schema-node statistics collectors (and their
persistence through checkpoint/recover), the operator CLI surfaces,
and the benchmark regression comparator.
"""

import json

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.errors import StorageError
from repro.obs.events import EventLog
from repro.obs.metrics import Histogram, MetricsRegistry, \
    render_prometheus
from repro.obs.statistics import StatisticsCollector
from repro.query import StorageQueryEngine, clear_parse_cache
from repro.storage import (
    FileBackend,
    MemoryBackend,
    SqliteBackend,
    StorageEngine,
    load_engine,
    recover,
)
from repro.storage.persist import dumps_engine
from repro.workloads import make_library_document
from repro.xmlio import QName, parse_document
from repro.workloads.fixtures import EXAMPLE_8_DOCUMENT

from benchmarks import compare as bench_compare


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.set_telemetry(True)
    obs.set_slow_query_threshold(None)
    obs.reset()
    clear_parse_cache()
    yield
    obs.disable()
    obs.set_telemetry(True)
    obs.set_slow_query_threshold(None)
    obs.reset()


def _engine(document=None, **kwargs) -> StorageEngine:
    engine = StorageEngine(**kwargs)
    engine.load_document(document
                         or parse_document(EXAMPLE_8_DOCUMENT))
    return engine


class TestTelemetryTier:
    """The always-on tier records without diagnostics enabled."""

    def test_telemetry_is_on_by_default(self):
        assert obs.TELEMETRY is True
        assert obs.RECORDING is True
        assert obs.ENABLED is False

    def test_load_counts_without_enable(self):
        _engine()
        snapshot = obs.snapshot()
        assert snapshot["storage.descriptors.allocated"] > 0
        assert snapshot["numbering.labels.allocated"] > 0

    def test_query_latency_lands_in_the_histogram(self):
        queries = StorageQueryEngine(_engine())
        queries.evaluate("/library/book/title")
        queries.evaluate("/library/book/title")
        latency = obs.REGISTRY.histogram("query.latency.ns").summary()
        assert latency["count"] == 2
        assert latency["p50"] > 0
        assert obs.REGISTRY.value("query.evaluations") == 2
        # Telemetry alone must not collect EXPLAIN diagnostics.
        assert len(obs.EXPLAINS) == 0

    def test_wal_and_txn_histograms_record(self, tmp_path):
        from repro.storage import TransactionManager, WriteAheadLog
        engine = _engine()
        wal = WriteAheadLog(tmp_path / "t.wal", sync=True)
        manager = TransactionManager(engine, wal)
        library = engine.children(engine.document)[0]
        with manager.transaction():
            engine.insert_child(library, 0, name=QName("", "added"))
        wal.close()
        registry = obs.REGISTRY
        assert registry.histogram("wal.append.ns").count > 0
        assert registry.histogram("wal.sync.ns").count > 0
        assert registry.histogram("txn.commit.ns").count == 1

    def test_checkpoint_histogram_and_mode_counters(self, tmp_path):
        engine = _engine()
        FileBackend(tmp_path / "s.img").checkpoint(engine)
        backend = SqliteBackend(tmp_path / "s.db")
        backend.checkpoint(engine)
        library = engine.children(engine.document)[0]
        engine.insert_child(library, 0, name=QName("", "added"))
        backend.checkpoint(engine)
        registry = obs.REGISTRY
        assert registry.histogram("checkpoint.file.ns").count == 1
        assert registry.histogram("checkpoint.sqlite.ns").count == 2
        assert registry.value("checkpoint.full") == 2
        assert registry.value("checkpoint.incremental") == 1

    def test_telemetry_off_records_nothing(self):
        obs.set_telemetry(False)
        assert obs.RECORDING is False
        queries = StorageQueryEngine(_engine())
        queries.evaluate("/library/book/title")
        assert obs.REGISTRY.value("query.evaluations") == 0


class TestHistogramWindow:
    def test_window_wraps_and_percentiles_track_recent(self):
        histogram = Histogram("h", window=10)
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert sorted(histogram.window_values()) == \
            [float(v) for v in range(90, 100)]
        assert histogram.percentiles()["p50"] >= 90.0
        # Lifetime aggregates keep the full stream.
        assert histogram.min == 0.0
        assert histogram.max == 99.0
        assert histogram.total == sum(range(100))

    def test_partial_window_uses_observed_prefix(self):
        histogram = Histogram("h", window=512)
        histogram.observe(5.0)
        histogram.observe(1.0)
        assert sorted(histogram.window_values()) == [1.0, 5.0]
        summary = histogram.summary()
        assert summary["count"] == 2
        assert summary["min"] == 1.0 and summary["max"] == 5.0

    def test_reset_isolates_snapshots(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.histogram("h").observe(3.0)
        first = registry.snapshot()
        registry.reset()
        second = registry.snapshot()
        assert first["c"] == 7 and second["c"] == 0
        assert first["h"]["count"] == 1 and second["h"]["count"] == 0
        # The first snapshot is a value copy, not a live view.
        assert first["h"]["count"] == 1


class TestEventLog:
    def test_injectable_clock_is_deterministic(self):
        ticks = iter(range(100, 200))
        log = EventLog(clock=lambda: next(ticks))
        log.emit("a")
        log.emit("b", severity="warn", detail="x")
        assert [r.monotonic_ns for r in log] == [100, 101]
        assert log.to_jsonl() == (
            '{"event":"a","severity":"info","monotonic_ns":100}\n'
            '{"event":"b","severity":"warn","monotonic_ns":101,'
            '"detail":"x"}')

    def test_ring_is_bounded_and_counts_drops(self):
        log = EventLog(clock=lambda: 0, limit=4)
        for index in range(10):
            log.emit(f"e{index}")
        assert len(log) == 4
        assert log.dropped == 6
        assert [r.kind for r in log] == ["e6", "e7", "e8", "e9"]

    def test_unknown_severity_is_an_error(self):
        log = EventLog(clock=lambda: 0)
        with pytest.raises(ValueError, match="unknown severity"):
            log.emit("oops", severity="fatal")

    def test_find_and_last(self):
        log = EventLog(clock=lambda: 0)
        log.emit("a", n=1)
        log.emit("b")
        log.emit("a", n=2)
        assert [r.fields["n"] for r in log.find("a")] == [1, 2]
        assert log.last("a").fields["n"] == 2
        assert log.last().kind == "a"
        assert log.last("missing") is None


class TestSlowQueryLog:
    def test_slow_query_event_carries_the_full_explain(self):
        obs.set_slow_query_threshold(0.0)  # everything is slow
        queries = StorageQueryEngine(_engine())
        queries.evaluate("/library/book/title")
        event = obs.EVENTS.last("query.slow")
        assert event is not None and event.severity == "warn"
        record = event.as_dict()
        assert record["path"] == "/library/book/title"
        assert record["strategy"] == "scan"
        assert record["plan_cache"] == "miss"
        assert record["nodes_returned"] > 0
        assert record["stage_ns"], "per-stage timings missing"
        assert obs.REGISTRY.value("query.slow") == 1
        # The slow-query log works without full diagnostics: no
        # EXPLAIN is retained beyond the event itself.
        assert len(obs.EXPLAINS) == 0

    def test_threshold_filters_fast_queries(self):
        obs.set_slow_query_threshold(60.0)  # a minute: nothing is slow
        queries = StorageQueryEngine(_engine())
        queries.evaluate("/library/book/title")
        assert obs.EVENTS.last("query.slow") is None
        assert obs.REGISTRY.value("query.slow") == 0

    def test_disarming_restores_the_telemetry_path(self):
        obs.set_slow_query_threshold(0.0)
        obs.set_slow_query_threshold(None)
        queries = StorageQueryEngine(_engine())
        queries.evaluate("/library/book/title")
        assert obs.EVENTS.last("query.slow") is None
        assert obs.REGISTRY.value("query.evaluations") == 1


class TestChromeTrace:
    def test_chrome_trace_export_shape(self):
        obs.enable(tracing=True)
        queries = StorageQueryEngine(_engine())
        queries.evaluate("/library/book/title")
        trace = obs.TRACER.chrome_trace()
        events = trace["traceEvents"]
        assert events, "no spans were traced"
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 1 and event["tid"] == 1
            assert event["ts"] >= 0 and event["dur"] >= 0
        assert trace["otherData"]["dropped_spans"] == 0
        json.dumps(trace)  # must be serializable as-is


class TestPrometheusRendering:
    def test_render_covers_all_instrument_kinds(self):
        registry = MetricsRegistry()
        registry.counter("a.count").inc(3)
        registry.gauge("b.depth").set(2)
        histogram = registry.histogram("c.latency.ns")
        for value in (10.0, 20.0, 30.0):
            histogram.observe(value)
        text = render_prometheus(registry)
        assert "# TYPE repro_a_count_total counter\n" \
            "repro_a_count_total 3" in text
        assert "# TYPE repro_b_depth gauge\nrepro_b_depth 2" in text
        assert "# TYPE repro_c_latency_ns summary" in text
        assert 'repro_c_latency_ns{quantile="0.5"} 20.0' in text
        assert "repro_c_latency_ns_sum 60.0" in text
        assert "repro_c_latency_ns_count 3" in text
        assert text.endswith("\n")


class TestNotLowerableReason:
    def test_naive_plans_report_their_reason_in_explain(self):
        obs.enable()
        queries = StorageQueryEngine(_engine())
        queries.evaluate("//book[2]")
        record = obs.EXPLAINS.last()
        assert record.as_dict()["strategy"] == "naive"
        assert "positional predicate" in \
            record.as_dict()["not_lowerable_reason"]
        # Naive plans still lower (to a navigate closure), so the
        # human rendering keeps the reason out of the way.
        assert record.compiled is True
        assert "not lowerable" not in record.render()

    def test_unlowerable_strategy_surfaces_in_the_rendering(self):
        queries = StorageQueryEngine(_engine())
        plan = queries.compile("/library/book/title")
        plan.strategy = "bogus"  # simulate a plan lowering can't take
        plan.executor = None
        obs.enable()
        queries.evaluate("/library/book/title")
        record = obs.EXPLAINS.last()
        assert record.compiled is False
        assert record.as_dict()["not_lowerable_reason"] == \
            "no closure lowering for strategy 'bogus'"
        assert "not lowerable:      no closure lowering" in \
            record.render()


class TestStatisticsCollector:
    def _mutate(self, engine):
        library = engine.children(engine.document)[0]
        paper = engine.insert_child(library, 0, name=QName("", "paper"))
        title = engine.insert_child(paper, 0, name=QName("", "title"))
        engine.insert_child(title, 0, text="Stats")
        engine.set_attribute(paper, QName("", "tag"), "first")
        engine.set_attribute(paper, QName("", "tag"), "second",
                             replace=True)
        engine.delete_subtree(engine.children(library)[-1])

    def test_incremental_stats_match_a_recount(self):
        engine = _engine(block_capacity=4)
        self._mutate(engine)
        assert engine.stats.export() == \
            StatisticsCollector.recount(engine).export()
        engine.stats.verify_consistency(engine)

    def test_export_digest_shape(self):
        engine = _engine()
        digest = engine.stats.export()
        assert "#document" in digest
        title = digest["library/book/title"]
        assert title["descriptors"] == 2
        assert title["distinct_values"] == 0  # values live in text
        text = digest["library/book/author/#text"]
        assert text["distinct_values"] == 4
        assert text["min_value"] == "Abiteboul"
        assert text["max_value"] == "Vianu"
        assert text["bytes"] > 0

    def test_value_change_keeps_distinct_counts_exact(self):
        engine = _engine()
        library = engine.children(engine.document)[0]
        book = engine.children(library)[0]
        engine.set_attribute(book, QName("", "lang"), "en")
        engine.set_attribute(book, QName("", "lang"), "de",
                             replace=True)
        stats = engine.stats.export()["library/book/@lang"]
        assert stats["descriptors"] == 1
        assert stats["distinct_values"] == 1
        assert stats["min_value"] == "de"
        assert engine.stats.export() == \
            StatisticsCollector.recount(engine).export()

    def test_typed_order_ties_ignore_insertion_order(self):
        from repro.obs.statistics import NodeStats
        values = ["9", "0009", "1.0", "1", "nan"]
        forward, backward = NodeStats(), NodeStats()
        for value in values:
            forward.add_value(value)
        for value in reversed(values):
            backward.add_value(value)
        digest = forward.as_dict()
        assert digest == backward.as_dict()
        # Numeric ties break lexicographically; nan sorts after
        # every number.
        assert digest["min_value"] == "1"
        assert digest["max_value"] == "nan"

    def test_digest_is_stable_across_mutation_order(self):
        engine = _engine()
        library = engine.children(engine.document)[0]
        books = engine.children(library)
        # Mutate in the reverse of the document order a recount
        # walks; the numerically-equal distinct strings must digest
        # identically either way.
        engine.set_attribute(books[1], QName("", "rank"), "9")
        engine.set_attribute(books[0], QName("", "rank"), "0009")
        stats = engine.stats.export()["library/book/@rank"]
        assert stats["min_value"] == "0009"
        assert stats["max_value"] == "9"
        engine.stats.verify_consistency(engine)

    @pytest.mark.parametrize("backend_factory", [
        lambda tmp: FileBackend(tmp / "s.img", wal_path=tmp / "s.wal"),
        lambda tmp: SqliteBackend(tmp / "s.db"),
        lambda tmp: MemoryBackend(),
    ], ids=["file", "sqlite", "memory"])
    def test_stats_survive_checkpoint_recover(self, tmp_path,
                                              backend_factory):
        engine = _engine(make_library_document(books=5, papers=3,
                                               seed=11))
        self._mutate(engine)
        backend = backend_factory(tmp_path)
        backend.checkpoint(engine)
        result = recover(backend, strict=True)
        recovered = result.engine
        assert recovered.stats.export() == engine.stats.export()
        assert recovered.stats.export() == \
            StatisticsCollector.recount(recovered).export()

    def test_tampered_digest_is_detected(self):
        import struct
        import zlib
        engine = _engine()
        image = dumps_engine(engine)
        digest = json.dumps(engine.stats.export(),
                            separators=(",", ":"),
                            sort_keys=True).encode("utf-8")
        body = image[:-4]
        tail = struct.pack("<I", len(digest)) + digest
        assert body.endswith(tail)
        lying = json.loads(digest)
        lying["#document"]["descriptors"] += 1
        forged = json.dumps(lying, separators=(",", ":"),
                            sort_keys=True).encode("utf-8")
        body = body[:-len(tail)] + \
            struct.pack("<I", len(forged)) + forged
        with pytest.raises(StorageError,
                           match="statistics digest"):
            load_engine(body + struct.pack("<I", zlib.crc32(body)))

    def test_reset_zeroes_everything(self):
        engine = _engine()
        engine.stats.reset()
        assert engine.stats.export() == {}
        assert engine.stats.total_descriptors() == 0


class TestOperatorCli:
    def _doc(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(EXAMPLE_8_DOCUMENT)
        return str(path)

    def test_stats_json_has_instruments_and_statistics(self, tmp_path,
                                                       capsys):
        assert cli_main(["stats", self._doc(tmp_path),
                         "--path", "/library/book/title",
                         "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        histograms = report["instruments"]["histograms"]
        assert "query.latency.ns" in histograms
        assert histograms["query.latency.ns"]["p95"] > 0
        assert report["instruments"]["counters"][
            "storage.descriptors.allocated"] > 0
        assert report["statistics"]["library/book/title"][
            "descriptors"] == 2

    def test_metrics_prom_exposition(self, tmp_path, capsys):
        assert cli_main(["metrics", self._doc(tmp_path),
                         "--path", "/library/book/title",
                         "--prom"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_query_latency_ns summary" in text
        assert 'repro_query_latency_ns{quantile="0.99"}' in text
        assert "repro_storage_descriptors_allocated" in text

    def test_top_json_aggregates_and_slow_events(self, tmp_path,
                                                 capsys):
        assert cli_main(["top", self._doc(tmp_path),
                         "--path", "/library/book/title",
                         "--repeat", "7", "--slow-ms", "0",
                         "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["queries"]["evaluations"] == 7
        assert report["queries"]["latency_ns"]["count"] == 7
        assert report["caches"]["plan_hits"] == 6
        assert len(report["slow_events"]) == 7
        assert report["slow_events"][0]["strategy"] == "scan"
        # The CLI disarms the threshold on the way out.
        assert obs.SLOW_QUERY_NS is None

    def test_trace_writes_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert cli_main(["trace", self._doc(tmp_path),
                         "/library/book/title",
                         "--out", str(out)]) == 0
        trace = json.loads(out.read_text())
        assert trace["traceEvents"]
        assert trace["traceEvents"][0]["ph"] == "X"


def _report(meta=None, records=(), indexes=(), summary=None,
            metrics=None):
    out = {"records": list(records),
           "indexes": {"records": list(indexes)},
           "summary": summary or {}}
    if meta is not None:
        out["meta"] = meta
    if metrics is not None:
        out["metrics"] = metrics
    return out


def _meta(**overrides):
    meta = {"format": 2, "git_sha": "cafe", "timestamp": "t",
            "python": "3.11.7", "implementation": "CPython",
            "machine": "x86_64", "system": "Linux", "host": "ci",
            "scales": [10], "smoke": False}
    meta.update(overrides)
    return meta


class TestBenchCompare:
    def test_missing_meta_is_refused(self):
        with pytest.raises(bench_compare.Refusal, match="meta"):
            bench_compare.compare(_report(), _report(meta=_meta()))

    def test_format_mismatch_is_refused(self):
        with pytest.raises(bench_compare.Refusal, match="format"):
            bench_compare.compare(_report(meta=_meta(format=1)),
                                  _report(meta=_meta()))

    def test_ratio_drop_fails_and_small_scales_are_ignored(self):
        base = _report(meta=_meta(host="a"), records=[
            {"path": "/p", "scale": 1000, "cached_vs_uncached": 4.0,
             "ops_cached_plan": 100.0},
            {"path": "/p", "scale": 10, "cached_vs_uncached": 4.0,
             "ops_cached_plan": 100.0}])
        fresh = _report(meta=_meta(host="b"), records=[
            {"path": "/p", "scale": 1000, "cached_vs_uncached": 2.0,
             "ops_cached_plan": 10.0},
            {"path": "/p", "scale": 10, "cached_vs_uncached": 0.1,
             "ops_cached_plan": 1.0}])
        failures = bench_compare.compare(base, fresh)
        assert [f[0] for f in failures] == \
            ["cached_vs_uncached[/p@1000]"]

    def test_raw_ops_gate_only_on_the_same_machine(self):
        record = {"path": "/p", "scale": 1000,
                  "cached_vs_uncached": 4.0, "ops_cached_plan": 100.0}
        slower = dict(record, ops_cached_plan=50.0)
        cross = bench_compare.compare(
            _report(meta=_meta(host="a"), records=[record]),
            _report(meta=_meta(host="b"), records=[slower]))
        assert cross == []
        same = bench_compare.compare(
            _report(meta=_meta(), records=[record]),
            _report(meta=_meta(), records=[slower]))
        assert [f[0] for f in same] == ["ops_cached_plan[/p@1000]"]

    def test_summary_gates_flip_only_between_same_kind_runs(self):
        base = _report(meta=_meta(),
                       summary={"speedup_2x_met": True})
        fresh_smoke = _report(meta=_meta(smoke=True),
                              summary={"speedup_2x_met": False})
        fresh_full = _report(meta=_meta(),
                             summary={"speedup_2x_met": False})
        assert bench_compare.compare(base, fresh_smoke) == []
        failures = bench_compare.compare(base, fresh_full)
        assert [f[0] for f in failures] == ["summary.speedup_2x_met"]

    def test_p99_blowup_gate(self):
        metrics = {"scale": 100,
                   "registry": {"query.latency.ns": {"p99": 100.0}}}
        blown = {"scale": 100,
                 "registry": {"query.latency.ns": {"p99": 500.0}}}
        failures = bench_compare.compare(
            _report(meta=_meta(), metrics=metrics),
            _report(meta=_meta(), metrics=blown))
        assert [f[0] for f in failures] == ["query.latency.ns.p99"]

    def test_main_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "a.json"
        good.write_text(json.dumps(_report(meta=_meta())))
        assert bench_compare.main([str(good), str(good)]) == 0
        stampless = tmp_path / "b.json"
        stampless.write_text(json.dumps(_report()))
        assert bench_compare.main([str(stampless), str(good)]) == 2
        capsys.readouterr()
