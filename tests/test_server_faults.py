"""The session crash matrix: kill the server at every session-layer
fault point, recover from the backend's files alone, and require the
committed prefix with zero relabels.

Three windows (see ``SESSION_CRASH_POINTS``):

* ``session.lease.granted`` — the lease is granted but the session has
  written nothing: recovery sees exactly the prior committed state,
  and the leaked lease dead-letters for the next claimant;
* ``session.txn.mid`` — the holder dies with logged-but-uncommitted
  operations: recovery discards the suffix (readers could never have
  observed it — their horizon stops at the last COMMIT);
* ``session.reader.checkpoint`` — the server dies right after a
  checkpoint while readers still pin the pre-checkpoint snapshot: the
  pinned view keeps serving, and recovery replays the new image.

Plus the reproducibility half of the satellite: a probabilistic sweep
over concurrent writer threads, each armed with ``plan.split(name)``
installed thread-locally, replays the identical per-thread crash
schedule on a second run.
"""

import time

import pytest

from repro.server import DatabaseServer
from repro.storage import (
    SESSION_CRASH_POINTS,
    CrashError,
    FileBackend,
    FaultPlan,
    MemoryBackend,
    SqliteBackend,
    faults,
    recover,
)
from repro.workloads.bookstore import (
    BOOKS_NAMESPACE,
    make_bookstore_document,
)
from repro.xmlio.qname import QName

TITLES = "/BookStore/Book/Title"


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    yield
    faults.clear()
    faults.clear_local()


def make_backend(name, tmp_path):
    if name == "file":
        return FileBackend(tmp_path / "store.img",
                           wal_path=tmp_path / "store.wal")
    if name == "sqlite":
        return SqliteBackend(tmp_path / "store.db")
    return MemoryBackend()


def add_book(tag):
    def mutate(engine, session):
        store = engine.children(engine.document)[0]
        book = engine.insert_child(
            store, 0, name=QName(BOOKS_NAMESPACE, "Book"))
        title = engine.insert_child(
            book, 0, name=QName(BOOKS_NAMESPACE, "Title"))
        engine.insert_child(title, 0, text=tag)
    return mutate


def titles_of(engine):
    store = engine.children(engine.document)[0]
    return sorted(engine.string_value(engine.children(book)[0])
                  for book in engine.children(store))


def assert_recovered(backend, expected_titles):
    """The backend's files alone must reproduce exactly the committed
    prefix — no uncommitted state, no relabels (Proposition 1)."""
    result = recover(backend)
    assert result.relabels == 0
    assert titles_of(result.engine) == sorted(expected_titles)
    return result


@pytest.mark.parametrize("backend_name", ["file", "sqlite", "memory"])
class TestSessionCrashMatrix:
    """Each named point, each backend: kill, recover, verify."""

    def _boot(self, backend, ttl=0.2):
        server = DatabaseServer(backend,
                                make_bookstore_document(books=4, seed=2),
                                lease_ttl=ttl, workers=1)
        with server.open_session("write") as writer:
            writer.execute(add_book("BASE"))
        base = titles_of(server.engine)
        assert "BASE" in base
        return server, base

    def test_crash_between_grant_and_first_wal_record(
            self, backend_name, tmp_path):
        backend = make_backend(backend_name, tmp_path)
        server, committed = self._boot(backend)
        plan = FaultPlan().crash_at("session.lease.granted")
        with faults.injected(plan):
            with pytest.raises(CrashError):
                server.open_session("write")
        assert plan.fired == [("session.lease.granted", 1)]
        # The holder died before logging anything: recovery is exactly
        # the prior committed state.
        assert_recovered(backend, committed)
        # The leaked lease expires into a dead letter; the next
        # claimant is not blocked forever.
        lease = server.leases.acquire("undertaker", timeout=5.0)
        assert lease.owner == "undertaker"
        assert [l.note for l in server.leases.drain_dead_letters()] \
            == ["write session #2"]

    def test_lease_holder_dies_mid_transaction(
            self, backend_name, tmp_path):
        backend = make_backend(backend_name, tmp_path)
        server, committed = self._boot(backend)
        session = server.open_session("write")
        plan = FaultPlan().crash_at("session.txn.mid")
        with faults.injected(plan):
            with pytest.raises(CrashError):
                session.execute(add_book("DOOMED"))
        # Logged operations exist but no COMMIT: the suffix is
        # discarded, the doomed insert unobservable.
        result = assert_recovered(backend, committed)
        assert "DOOMED" not in titles_of(result.engine)

    def test_reader_outlives_a_checkpoint(self, backend_name, tmp_path):
        backend = make_backend(backend_name, tmp_path)
        server, committed = self._boot(backend)
        reader = server.open_session("read")
        before = reader.query_values(TITLES)
        with server.open_session("write") as writer:
            writer.execute(add_book("CKPT"))
        plan = FaultPlan().crash_at("session.reader.checkpoint")
        with faults.injected(plan):
            with pytest.raises(CrashError):
                server.checkpoint_now()
        # The pinned snapshot was materialized from the *previous*
        # durable state and keeps serving across the crash.
        assert reader.query_values(TITLES) == before
        assert "CKPT" not in before
        # The checkpoint itself landed before the kill: recovery
        # replays the new image, commit included.
        assert_recovered(backend, committed + ["CKPT"])


class TestProbabilisticSessionSweep:
    """Concurrent writers under seeded per-thread plans: the crash
    schedule is a pure function of (seed, thread key) — a second run
    replays it exactly, whatever the scheduler did."""

    THREADS, ROUNDS, SEED = 3, 5, 29

    def _sweep(self):
        import threading

        server = DatabaseServer(MemoryBackend(),
                                make_bookstore_document(books=3, seed=4),
                                lease_ttl=0.05, acquire_timeout=10.0,
                                workers=1)
        parent = FaultPlan.probabilistic(
            seed=self.SEED, rate=0.4,
            points={"session.lease.granted"})
        outcomes = {}

        def writer(index):
            name = f"writer-{index}"
            schedule = []
            with faults.injected_local(parent.split(name)):
                for round_no in range(self.ROUNDS):
                    try:
                        with server.open_session(
                                "write", owner=name,
                                timeout=10.0) as session:
                            session.execute(
                                add_book(f"{name}r{round_no}"))
                        schedule.append("ok")
                    except CrashError:
                        schedule.append("crash")
            outcomes[name] = schedule

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        committed = {f"writer-{i}r{r}"
                     for i in range(self.THREADS)
                     for r in range(self.ROUNDS)
                     if outcomes[f"writer-{i}"][r] == "ok"}
        # Give the last leaked lease time to lapse, then observe it.
        time.sleep(0.06)
        server.leases.holder()
        dead = len(server.leases.drain_dead_letters())
        result = recover(server.backend)
        return outcomes, committed, dead, result

    def test_replay_is_identical_and_recovery_clean(self):
        first = self._sweep()
        second = self._sweep()
        outcomes, committed, dead, result = first
        # Reproducible per thread: same seed, same keys, same schedule.
        assert outcomes == second[0]
        # The coin landed both ways somewhere in the sweep.
        flat = [o for schedule in outcomes.values() for o in schedule]
        assert "crash" in flat and "ok" in flat
        # Every crash leaked a lease that was dead-lettered.
        assert dead == flat.count("crash")
        # Recovery holds exactly the committed writes, relabel-free.
        assert result.relabels == 0
        recovered = set(titles_of(result.engine))
        assert committed <= recovered
        doomed = {f"writer-{i}r{r}"
                  for i in range(self.THREADS)
                  for r in range(self.ROUNDS)
                  if outcomes[f"writer-{i}"][r] == "crash"}
        assert not (doomed & recovered)


def test_session_points_are_registered():
    assert SESSION_CRASH_POINTS == {
        "session.lease.granted", "session.txn.mid",
        "session.reader.checkpoint"}
