"""Tests for the XQuery-lite language (lexer, parser, evaluator)."""

from decimal import Decimal

import pytest

from repro.errors import QueryError
from repro.mapping import document_to_tree, untyped_document_to_tree
from repro.schema import parse_schema
from repro.xmlio import parse_document
from repro.xquery import execute, execute_values, parse_query, tokenize
from repro.xquery.ast import Comparison, Flwor, Literal, PathExpr
from repro.workloads.fixtures import (
    EXAMPLE_7_DOCUMENT,
    EXAMPLE_7_SCHEMA,
    EXAMPLE_8_DOCUMENT,
)


@pytest.fixture(scope="module")
def bookstore():
    return document_to_tree(parse_document(EXAMPLE_7_DOCUMENT),
                            parse_schema(EXAMPLE_7_SCHEMA))


@pytest.fixture(scope="module")
def library():
    return untyped_document_to_tree(parse_document(EXAMPLE_8_DOCUMENT))


class TestLexer:
    def test_keywords_and_variables(self):
        tokens = tokenize("for $b in /a return $b")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "variable", "keyword", "path",
                         "keyword", "variable"]

    def test_strings_unquoted(self):
        (token,) = tokenize("'hello world'")
        assert token.kind == "string"
        assert token.text == "hello world"

    def test_comparison_vs_constructor(self):
        tokens = tokenize("$a < 3")
        assert tokens[1].kind == "comparison"
        tokens = tokenize("<tag>")
        assert tokens[0].kind == "start_tag"
        assert tokens[0].text == "tag"

    def test_path_with_predicate(self):
        (token,) = tokenize("/a/b[@x='1']/c")
        assert token.kind == "path"

    def test_junk_rejected(self):
        with pytest.raises(QueryError):
            tokenize("for $x § in /a")


class TestParser:
    def test_plain_path(self):
        expression = parse_query("/a/b")
        assert isinstance(expression, PathExpr)

    def test_flwor_shape(self):
        expression = parse_query(
            "for $x in /a let $y := $x/b where $y = '1' "
            "order by $y return $y")
        assert isinstance(expression, Flwor)
        assert len(expression.clauses) == 2
        assert expression.where is not None
        assert expression.order is not None

    def test_comparison(self):
        expression = parse_query("/a = 3")
        assert isinstance(expression, Comparison)
        assert isinstance(expression.right, Literal)
        assert expression.right.value == 3

    def test_decimal_literal(self):
        expression = parse_query("/a = 3.5")
        assert expression.right.value == Decimal("3.5")

    @pytest.mark.parametrize("bad", [
        "return /a",              # FLWOR without for/let
        "for $x in /a",           # missing return
        "for x in /a return x",   # missing $
        "unknownfn(/a)",
        "<a>{/x}</b>",            # mismatched constructor tags
        "for $x in /a return $x trailing",
    ])
    def test_rejects(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad)


class TestPathsAndVariables:
    def test_plain_path_query(self, library):
        assert execute_values(library, "/library/book/title") == \
            ["Foundations of Databases",
             "An Introduction to Database Systems"]

    def test_for_over_path(self, library):
        result = execute_values(
            library, "for $b in /library/book return $b/title")
        assert len(result) == 2

    def test_var_path_application(self, library):
        result = execute_values(
            library,
            "for $b in /library/book return $b/author[1]")
        assert result == ["Abiteboul", "Date"]

    def test_let_binding(self, library):
        result = execute_values(
            library,
            "for $b in /library/book let $t := $b/title return $t")
        assert len(result) == 2

    def test_unbound_variable(self, library):
        with pytest.raises(QueryError):
            execute(library, "for $a in /library return $ghost")


class TestWhere:
    def test_string_equality(self, bookstore):
        result = execute_values(
            bookstore,
            "for $b in /BookStore/Book where $b/Date = '1998' "
            "return $b/Title")
        assert result == ["My Life and Times"]

    def test_numeric_comparison_on_untyped(self, library):
        result = execute_values(
            library,
            "for $b in /library/book "
            "where $b/issue/year > 2000 return $b/title")
        assert result == ["An Introduction to Database Systems"]

    def test_count_in_where(self, library):
        result = execute_values(
            library,
            "for $b in /library/book where count($b/author) = 3 "
            "return $b/title")
        assert result == ["Foundations of Databases"]

    def test_and_or(self, bookstore):
        result = execute_values(
            bookstore,
            "for $b in /BookStore/Book "
            "where $b/Date = '1998' or $b/Date = '1977' "
            "return $b/Date")
        assert sorted(result) == ["1977", "1998"]
        result = execute_values(
            bookstore,
            "for $b in /BookStore/Book "
            "where $b/Date = '1998' and $b/Date = '1977' "
            "return $b/Date")
        assert result == []

    def test_existential_comparison(self, library):
        # paper/book with *some* author named Codd
        result = execute_values(
            library,
            "for $p in /library/paper where $p/author = 'Codd' "
            "return $p/title")
        assert len(result) == 2


class TestOrderBy:
    def test_ascending_strings(self, bookstore):
        result = execute_values(
            bookstore,
            "for $b in /BookStore/Book order by $b/Title "
            "return $b/Title")
        assert result == sorted(result)

    def test_descending(self, bookstore):
        result = execute_values(
            bookstore,
            "for $b in /BookStore/Book order by $b/Title descending "
            "return $b/Title")
        assert result == sorted(result, reverse=True)

    def test_numeric_order_on_typed_values(self):
        schema = parse_schema("""
          <xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
           <xsd:element name="ns"><xsd:complexType><xsd:sequence>
            <xsd:element name="n" type="xsd:integer"
                         maxOccurs="unbounded"/>
           </xsd:sequence></xsd:complexType></xsd:element>
          </xsd:schema>""")
        tree = document_to_tree(
            parse_document("<ns><n>10</n><n>2</n><n>33</n></ns>"),
            schema)
        result = execute_values(
            tree, "for $n in /ns/n order by $n return $n")
        assert result == ["2", "10", "33"]  # numeric, not lexicographic


class TestMultipleFor:
    def test_cartesian_product(self, library):
        result = execute_values(
            library,
            "for $b in /library/book, $p in /library/paper "
            "return $b/title[1]")
        assert len(result) == 4  # 2 books x 2 papers

    def test_join_condition(self, library):
        result = execute_values(
            library,
            "for $p in /library/paper, $q in /library/paper "
            "where $p/author = $q/author "
            "return $p/title[1]")
        assert len(result) == 4  # both papers share the author Codd


class TestFunctions:
    def test_count(self, library):
        assert execute(library, "count(//author)") == [6]

    def test_string_join(self, library):
        (joined,) = execute(
            library, "string-join(/library/paper/author, ';')")
        assert joined == "Codd;Codd"

    def test_distinct_values(self, library):
        assert execute_values(
            library, "distinct-values(/library/paper/author)") == ["Codd"]

    def test_exists_empty_not(self, library):
        assert execute(library, "exists(//issue)") == [True]
        assert execute(library, "empty(//nonexistent)") == [True]
        assert execute(library, "not(exists(//issue))") == [False]

    def test_string(self, library):
        (value,) = execute(library, "string(/library/book[1]/title)")
        assert value == "Foundations of Databases"

    def test_data_on_typed(self, bookstore):
        values = execute(bookstore, "data(/BookStore/Book[1]/Title)")
        assert values == ["My Life and Times"]


class TestConstructors:
    def test_simple_constructor(self, library):
        (element,) = execute(
            library,
            "for $b in /library/book[1] return "
            "<summary>{$b/title}</summary>")
        assert element.name.local == "summary"
        (title,) = element.element_children()
        assert title.string_value() == "Foundations of Databases"

    def test_copy_semantics(self, library):
        (element,) = execute(
            library, "<wrap>{/library/book[1]/title}</wrap>")
        original = execute(library, "/library/book[1]/title")[0]
        copy = element.element_children()[0]
        assert copy is not original
        assert copy.string_value() == original.string_value()
        assert original.parent_or_none() is not element

    def test_nested_constructors(self, library):
        (element,) = execute(
            library,
            "<report><count>{count(//book)}</count></report>")
        assert element.string_value() == "2"

    def test_atomic_content_becomes_text(self, library):
        (element,) = execute(library, "<n>{count(//paper)}</n>")
        (text,) = element.children()
        assert text.node_kind() == "text"
        assert text.string_value() == "2"

    def test_constructed_tree_serializes(self, bookstore):
        from repro.mapping import serialize_tree
        (element,) = execute(
            bookstore,
            "for $b in /BookStore/Book[1] return "
            "<entry>{$b/Title}</entry>")
        text = serialize_tree(element)
        assert "<entry>" in text
        assert 'xmlns="http://www.books.org"' in text


class TestSequences:
    def test_parenthesized_sequence(self, library):
        result = execute_values(
            library, "(count(//book), count(//paper))")
        assert result == ["2", "2"]

    def test_flwor_concatenates(self, library):
        result = execute_values(
            library,
            "for $x in /library/book return "
            "($x/title[1], $x/author[1])")
        assert len(result) == 4


class TestNestedFlwor:
    def test_flwor_inside_return(self, library):
        result = execute_values(library, """
            for $b in /library/book
            return for $a in $b/author return $a""")
        assert len(result) == 4  # 3 + 1 authors

    def test_let_shadowing_inner_scope(self, library):
        result = execute_values(library, """
            for $b in /library/book
            let $t := $b/title
            return for $x in $t return $x""")
        assert len(result) == 2

    def test_where_on_inner_variable(self, bookstore):
        result = execute_values(bookstore, """
            for $b in /BookStore/Book
            return for $d in $b/Date where $d = '1977' return $d""")
        assert result == ["1977"]
