"""Tests for axes, the path language and the three query evaluators."""

import pytest

from repro.errors import QueryError
from repro.xmlio import parse_document
from repro.mapping import untyped_document_to_tree
from repro.order import document_order
from repro.query import (
    AXES,
    StorageQueryEngine,
    evaluate_tree,
    parse_path,
)
from repro.query.paths import Step
from repro.storage import StorageEngine
from repro.workloads import make_library_document
from repro.workloads.fixtures import EXAMPLE_8_DOCUMENT

_DOC = '<r i="1"><a><b/><c>x</c></a><d j="2"/><a><b/></a></r>'


@pytest.fixture
def tree():
    return untyped_document_to_tree(parse_document(_DOC))


def _names(nodes):
    out = []
    for node in nodes:
        names = node.node_name()
        out.append(names.head().local if names else node.node_kind())
    return out


class TestAxes:
    def test_child(self, tree):
        r = tree.document_element()
        assert _names(AXES["child"](r)) == ["a", "d", "a"]

    def test_attribute(self, tree):
        r = tree.document_element()
        assert _names(AXES["attribute"](r)) == ["i"]

    def test_parent_and_self(self, tree):
        r = tree.document_element()
        a = r.element_children()[0]
        assert list(AXES["parent"](a)) == [r]
        assert list(AXES["self"](a)) == [a]

    def test_descendant(self, tree):
        r = tree.document_element()
        assert _names(AXES["descendant"](r)) == \
            ["a", "b", "c", "text", "d", "a", "b"]

    def test_descendant_or_self(self, tree):
        r = tree.document_element()
        assert _names(AXES["descendant-or-self"](r))[0] == "r"

    def test_ancestor(self, tree):
        r = tree.document_element()
        b = r.element_children()[0].element_children()[0]
        assert _names(AXES["ancestor"](b)) == ["a", "r", "document"]
        assert _names(AXES["ancestor-or-self"](b))[0] == "b"

    def test_sibling_axes(self, tree):
        r = tree.document_element()
        first_a, d, second_a = r.element_children()
        assert _names(AXES["following-sibling"](d)) == ["a"]
        assert _names(AXES["preceding-sibling"](d)) == ["a"]
        assert _names(AXES["following-sibling"](second_a)) == []

    def test_following_excludes_descendants(self, tree):
        r = tree.document_element()
        first_a = r.element_children()[0]
        following = _names(AXES["following"](first_a))
        assert following == ["d", "a", "b"]

    def test_preceding_excludes_ancestors(self, tree):
        r = tree.document_element()
        second_a = r.element_children()[2]
        preceding = _names(AXES["preceding"](second_a))
        # reverse document order, no ancestors, no attributes
        assert preceding == ["d", "text", "c", "b", "a"]

    def test_attribute_has_no_siblings(self, tree):
        r = tree.document_element()
        attribute = list(r.attributes())[0]
        assert list(AXES["following-sibling"](attribute)) == []
        assert list(AXES["preceding-sibling"](attribute)) == []

    def test_axis_order_consistency(self, tree):
        """Forward axes yield document order; reverse axes reversed."""
        positions = {node: i
                     for i, node in enumerate(document_order(tree))}
        r = tree.document_element()
        for axis in ("descendant", "following"):
            result = list(AXES[axis](r.element_children()[0]))
            assert [positions[n] for n in result] == \
                sorted(positions[n] for n in result)
        for axis in ("preceding", "ancestor"):
            result = list(AXES[axis](r.element_children()[2]))
            assert [positions[n] for n in result] == sorted(
                (positions[n] for n in result), reverse=True)


class TestPathParser:
    def test_child_steps(self):
        path = parse_path("/library/book/title")
        assert [s.name for s in path.steps] == ["library", "book", "title"]
        assert all(s.axis == "child" for s in path.steps)

    def test_descendant_step(self):
        path = parse_path("//author")
        assert path.steps[0].axis == "descendant-or-self"

    def test_attribute_step(self):
        path = parse_path("/a/@id")
        assert path.steps[-1] == Step("child", "attribute", "id")

    def test_wildcards(self):
        path = parse_path("/a/*/@*")
        assert path.steps[1].name is None
        assert path.steps[2].name is None

    def test_text_step(self):
        path = parse_path("/a/text()")
        assert path.steps[-1].kind == "text"

    @pytest.mark.parametrize("bad", [
        "relative/path", "/a//", "/", "/a/@", "/a/b[]", "/a/b[0]",
        "/a/b[t=v]", "/a/b[f()]", "/a/b[1", "/a/b[x<2]",
    ])
    def test_rejects(self, bad):
        with pytest.raises(QueryError):
            parse_path(bad)

    def test_repr_round_trip(self):
        for text in ("/a/b", "//x", "/a/@id", "/a/text()", "/a/*"):
            assert repr(parse_path(text)) == text


class TestTreeEvaluation:
    def test_simple_path(self, tree):
        result = evaluate_tree(tree, "/r/a/b")
        assert _names(result) == ["b", "b"]

    def test_wildcard(self, tree):
        assert _names(evaluate_tree(tree, "/r/*")) == ["a", "d", "a"]

    def test_descendant(self, tree):
        assert _names(evaluate_tree(tree, "//b")) == ["b", "b"]

    def test_attribute(self, tree):
        result = evaluate_tree(tree, "/r/d/@j")
        assert [n.string_value() for n in result] == ["2"]

    def test_text(self, tree):
        result = evaluate_tree(tree, "/r/a/c/text()")
        assert [n.string_value() for n in result] == ["x"]

    def test_no_match(self, tree):
        assert evaluate_tree(tree, "/r/zzz") == []

    def test_results_in_document_order(self, tree):
        positions = {node: i
                     for i, node in enumerate(document_order(tree))}
        result = evaluate_tree(tree, "//b")
        assert [positions[n] for n in result] == \
            sorted(positions[n] for n in result)


class TestStorageEvaluation:
    @pytest.fixture
    def stored(self):
        engine = StorageEngine()
        engine.load_document(parse_document(EXAMPLE_8_DOCUMENT))
        return engine, StorageQueryEngine(engine)

    @pytest.mark.parametrize("path,expected", [
        ("/library/book/title", 2),
        ("/library/paper/title", 2),
        ("//title", 4),
        ("//author", 6),
        ("/library/book/issue/year", 1),
        ("/library/*/title/text()", 4),
        ("/library/zzz", 0),
    ])
    def test_naive_equals_schema_driven(self, stored, path, expected):
        engine, queries = stored
        naive = queries.evaluate_naive(path)
        driven = queries.evaluate_schema_driven(path)
        assert len(naive) == len(driven) == expected
        assert [engine.string_value(d) for d in naive] == \
            [engine.string_value(d) for d in driven]

    def test_matches_tree_evaluator(self, stored):
        engine, queries = stored
        tree = untyped_document_to_tree(
            parse_document(EXAMPLE_8_DOCUMENT))
        for path in ("/library/book/title", "//author", "//title"):
            from_tree = [n.string_value()
                         for n in evaluate_tree(tree, path)]
            from_storage = [engine.string_value(d)
                            for d in queries.evaluate_schema_driven(path)]
            assert from_tree == from_storage

    def test_schema_driven_merges_document_order(self, stored):
        engine, queries = stored
        result = queries.evaluate_schema_driven("//title")
        symbols = [d.nid.symbols() for d in result]
        assert symbols == sorted(symbols)

    def test_matching_schema_nodes(self, stored):
        _engine, queries = stored
        nodes = queries.matching_schema_nodes("//title")
        assert {n.path for n in nodes} == \
            {"library/book/title", "library/paper/title"}

    def test_on_scaled_document(self):
        document = make_library_document(books=40, papers=40, seed=9)
        engine = StorageEngine()
        engine.load_document(document)
        queries = StorageQueryEngine(engine)
        naive = queries.evaluate_naive("/library/book/author")
        driven = queries.evaluate_schema_driven("/library/book/author")
        assert [d.nid for d in naive] == [d.nid for d in driven]
        assert len(naive) > 40
