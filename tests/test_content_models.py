"""Tests for content-model compilation and the two matchers."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.content import (
    ChoiceParticle,
    ContentModel,
    DerivativeMatcher,
    EmptyParticle,
    GlushkovAutomaton,
    NameParticle,
    RepeatParticle,
    SequenceParticle,
    compile_group,
)
from repro.errors import ContentModelError
from repro.schema import (
    CombinationFactor,
    ElementDeclaration,
    GroupDefinition,
    RepetitionFactor,
    TypeName,
    UNBOUNDED,
)
from repro.xmlio import xsd


def _eld(name: str, minimum: int = 1, maximum=1) -> ElementDeclaration:
    return ElementDeclaration(name, TypeName(xsd("string")),
                              RepetitionFactor(minimum, maximum))


def _group(members, combination=CombinationFactor.SEQUENCE,
           minimum=1, maximum=1) -> GroupDefinition:
    return GroupDefinition(tuple(members), combination,
                           RepetitionFactor(minimum, maximum))


class TestCompilation:
    def test_empty_group_compiles_to_epsilon(self):
        assert isinstance(compile_group(_group([])), EmptyParticle)

    def test_sequence_shape(self):
        particle = compile_group(_group([_eld("A"), _eld("B")]))
        assert isinstance(particle, SequenceParticle)
        assert [repr(c) for c in particle.children] == ["A", "B"]

    def test_choice_shape(self):
        particle = compile_group(
            _group([_eld("A"), _eld("B")], CombinationFactor.CHOICE))
        assert isinstance(particle, ChoiceParticle)

    def test_occurrence_wrapping(self):
        particle = compile_group(_group([_eld("A", 0, 5)]))
        (child,) = particle.children if isinstance(
            particle, SequenceParticle) else (particle,)
        assert isinstance(child, RepeatParticle)
        assert child.minimum == 0 and child.maximum == 5

    def test_zero_max_becomes_empty(self):
        particle = compile_group(_group([_eld("A", 0, 0)]))
        model = ContentModel(_group([_eld("A", 0, 0)]))
        assert model.matches([])
        assert not model.matches(["A"])


class TestSequenceMatching:
    def test_example_2_sequence(self):
        # Example 2: sequence of B then C.
        model = ContentModel(_group([_eld("B"), _eld("C")]))
        assert model.matches(["B", "C"])
        assert not model.matches(["C", "B"])
        assert not model.matches(["B"])
        assert not model.matches(["B", "C", "C"])
        assert not model.matches([])

    def test_optional_members(self):
        model = ContentModel(_group([_eld("A", 0, 1), _eld("B")]))
        assert model.matches(["B"])
        assert model.matches(["A", "B"])
        assert not model.matches(["A"])

    def test_bounded_repetition(self):
        model = ContentModel(_group([_eld("A", 2, 4)]))
        assert not model.matches(["A"])
        assert model.matches(["A"] * 2)
        assert model.matches(["A"] * 4)
        assert not model.matches(["A"] * 5)

    def test_huge_max_occurs_is_cheap(self):
        # The derivative matcher must not expand maxOccurs copies.
        model = ContentModel(_group([_eld("A", 0, 10**9)]))
        assert model.matches(["A"] * 1000)
        assert not model.matches(["A"] * 1000 + ["B"])


class TestChoiceMatching:
    def test_example_3_choice(self):
        # Example 3: (zero | one) repeated 0..unbounded.
        model = ContentModel(_group(
            [_eld("zero"), _eld("one")],
            CombinationFactor.CHOICE, 0, UNBOUNDED))
        assert model.matches([])
        assert model.matches(["zero"])
        assert model.matches(["one", "zero", "one"])
        assert not model.matches(["two"])

    def test_exclusive_choice(self):
        model = ContentModel(_group(
            [_eld("A"), _eld("B")], CombinationFactor.CHOICE))
        assert model.matches(["A"])
        assert model.matches(["B"])
        assert not model.matches(["A", "B"])
        assert not model.matches([])


class TestNestedGroups:
    def test_sequence_of_choices(self):
        inner = _group([_eld("X"), _eld("Y")], CombinationFactor.CHOICE)
        model = ContentModel(_group([_eld("A"), inner, _eld("B")]))
        assert model.matches(["A", "X", "B"])
        assert model.matches(["A", "Y", "B"])
        assert not model.matches(["A", "X", "Y", "B"])

    def test_repeated_nested_group(self):
        inner = _group([_eld("K"), _eld("V")], minimum=0, maximum=UNBOUNDED)
        model = ContentModel(_group([inner]))
        assert model.matches([])
        assert model.matches(["K", "V", "K", "V"])
        assert not model.matches(["K", "V", "K"])


class TestExplain:
    def test_unknown_name(self):
        model = ContentModel(_group([_eld("A")]))
        assert "does not occur" in model.explain(["Z"])

    def test_wrong_position(self):
        model = ContentModel(_group([_eld("A"), _eld("B")]))
        message = model.explain(["B"])
        assert "not allowed here" in message
        assert "'A'" in message

    def test_premature_end(self):
        model = ContentModel(_group([_eld("A"), _eld("B")]))
        assert "prematurely" in model.explain(["A"])

    def test_match_message(self):
        model = ContentModel(_group([_eld("A")]))
        assert model.explain(["A"]) == "the sequence matches"


class TestDeclarationAttribution:
    def test_declaration_for(self):
        model = ContentModel(_group([_eld("A", 0, 2), _eld("B")]))
        assert model.declaration_for("A").repetition.maximum == 2
        assert model.knows("A")
        assert not model.knows("Z")


class TestDeterminism:
    def test_flat_groups_are_deterministic(self):
        model = ContentModel(_group([_eld("A"), _eld("B", 0, 9)]))
        assert model.is_deterministic()

    def test_competing_names_detected(self):
        # (A, B) | (A, C): the two A positions compete — a UPA violation.
        left = _group([_eld("A"), _eld("B")])
        right = _group([_eld("A"), _eld("C")])
        model = ContentModel(_group([left, right],
                                    CombinationFactor.CHOICE))
        assert not model.is_deterministic()
        conflicts = model.automaton().competing_positions()
        assert any(name == "A" for name, _, _ in conflicts)

    def test_expansion_limit_enforced(self):
        group = _group([_eld("A", 0, 10**9)])
        with pytest.raises(ContentModelError):
            GlushkovAutomaton(compile_group(group), expansion_limit=100)


# ----------------------------------------------------------------------
# Cross-checking the two matchers against each other and brute force.

_random_group = st.deferred(lambda: st.one_of(_leaf_group, _nested_group))

_names = st.sampled_from(["a", "b", "c"])

_leaf_member = st.builds(
    _eld,
    _names,
    st.integers(min_value=0, max_value=2),
    st.one_of(st.integers(min_value=2, max_value=3),
              st.just(UNBOUNDED)))


@st.composite
def _distinct_members(draw, member_strategy, max_size=3):
    members = draw(st.lists(member_strategy, min_size=1, max_size=max_size))
    seen: set[str] = set()
    result = []
    for member in members:
        if isinstance(member, ElementDeclaration):
            if member.name in seen:
                continue
            seen.add(member.name)
        result.append(member)
    return result


_leaf_group = st.builds(
    _group,
    _distinct_members(_leaf_member),
    st.sampled_from([CombinationFactor.SEQUENCE, CombinationFactor.CHOICE]),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=2, max_value=3))

_nested_group = st.builds(
    _group,
    _distinct_members(st.one_of(_leaf_member, _leaf_group)),
    st.sampled_from([CombinationFactor.SEQUENCE, CombinationFactor.CHOICE]),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=1, max_value=2))


class TestMatcherCrossCheck:
    @settings(max_examples=150, deadline=None)
    @given(_random_group, st.lists(_names, max_size=6))
    def test_derivative_agrees_with_glushkov(self, group, word):
        particle = compile_group(group)
        derivative = DerivativeMatcher(particle).matches(word)
        glushkov = GlushkovAutomaton(particle).matches(word)
        assert derivative == glushkov

    def test_exhaustive_short_words(self):
        rng = random.Random(7)
        groups = [
            _group([_eld("a", 0, 2), _eld("b")]),
            _group([_eld("a"), _eld("b", 0, UNBOUNDED)],
                   CombinationFactor.CHOICE, 1, 2),
            _group([_group([_eld("a"), _eld("b")],
                           CombinationFactor.CHOICE, 0, 2), _eld("c")]),
        ]
        for group in groups:
            particle = compile_group(group)
            derivative = DerivativeMatcher(particle)
            glushkov = GlushkovAutomaton(particle)
            for length in range(5):
                for word in itertools.product("abc", repeat=length):
                    assert (derivative.matches(word)
                            == glushkov.matches(word)), (group, word)
