"""Cross-backend parity of the NodeStore protocol.

The same document presented by :class:`TreeNodeStore` (the §5/§6
state-algebra tree) and by :class:`StorageNodeStore` (the §9 Sedna
storage) must answer all ten accessors identically, agree on document
order, and drive every protocol consumer — conformance (§6.2), the
mapping ``g`` (§8), path and XQuery evaluation — to identical results.
Parity must survive updates: mixed insert/delete/set_attribute
sequences through :class:`StoredDocument` keep the two views
bisimilar.
"""

import pytest

from repro.database import DatabaseError, StoredDocument, XmlDatabase
from repro.errors import ModelError, StorageError
from repro.algebra.conformance import ConformanceChecker
from repro.mapping import serialize_store, untyped_document_to_tree
from repro.order import StoreOrderIndex, store_document_order
from repro.query import evaluate_store
from repro.schema import parse_schema
from repro.storage import StorageNodeStore
from repro.workloads.fixtures import (
    EXAMPLE_7_DOCUMENT,
    EXAMPLE_7_SCHEMA,
    EXAMPLE_8_DOCUMENT,
    LIBRARY_SCHEMA,
)
from repro.xdm import TREE_STORE, bisimulate, stores_agree
from repro.xmlio import parse_document
from repro.xquery import execute_values


@pytest.fixture
def untyped_doc():
    return XmlDatabase().store("library", EXAMPLE_8_DOCUMENT)


@pytest.fixture
def typed_doc():
    schema = parse_schema(EXAMPLE_7_SCHEMA)
    return XmlDatabase().store("bookstore", EXAMPLE_7_DOCUMENT, schema)


@pytest.fixture
def library_doc():
    schema = parse_schema(LIBRARY_SCHEMA)
    return XmlDatabase().store("library", EXAMPLE_8_DOCUMENT, schema)


def _typed_value_outcome(store, ref):
    try:
        return [atomic.value for atomic in store.typed_value(ref)]
    except ModelError:
        return "model-error"


def assert_accessor_parity(store_a, ref_a, store_b, ref_b,
                           parent_a=None, parent_b=None):
    """All ten §5 accessors agree at this node and below (attributes
    matched by name: the §6.2 automorphism σ leaves their order free)."""
    assert store_a.node_kind(ref_a) == store_b.node_kind(ref_b)
    assert store_a.node_name(ref_a) == store_b.node_name(ref_b)
    assert store_a.string_value(ref_a) == store_b.string_value(ref_b)
    assert store_a.type_name(ref_a) == store_b.type_name(ref_b)
    assert store_a.base_uri(ref_a) == store_b.base_uri(ref_b)
    assert store_a.nilled(ref_a) == store_b.nilled(ref_b)
    assert _typed_value_outcome(store_a, ref_a) == \
        _typed_value_outcome(store_b, ref_b)
    up_a, up_b = store_a.parent(ref_a), store_b.parent(ref_b)
    if parent_a is None:
        assert up_a is None and up_b is None
    else:
        assert store_a.node_key(up_a) == store_a.node_key(parent_a)
        assert store_b.node_key(up_b) == store_b.node_key(parent_b)

    attrs_a = {store_a.local_name(a): a
               for a in store_a.attributes(ref_a)}
    attrs_b = {store_b.local_name(b): b
               for b in store_b.attributes(ref_b)}
    assert set(attrs_a) == set(attrs_b)
    for local, attr_a in attrs_a.items():
        assert_accessor_parity(store_a, attr_a, store_b, attrs_b[local],
                               parent_a=ref_a, parent_b=ref_b)

    children_a = store_a.children(ref_a)
    children_b = store_b.children(ref_b)
    assert len(children_a) == len(children_b)
    for child_a, child_b in zip(children_a, children_b):
        assert_accessor_parity(store_a, child_a, store_b, child_b,
                               parent_a=ref_a, parent_b=ref_b)


def _stores_of(stored: StoredDocument):
    tree_store = stored.tree_store
    if stored.schema is not None:
        storage_store = StorageNodeStore.typed(stored.engine,
                                               stored.schema)
    else:
        storage_store = stored.storage_store
    return tree_store, storage_store


class TestAccessorParity:
    def test_untyped(self, untyped_doc):
        tree_store, storage_store = _stores_of(untyped_doc)
        assert_accessor_parity(tree_store, tree_store.root(),
                               storage_store, storage_store.root())

    def test_typed_bookstore(self, typed_doc):
        tree_store, storage_store = _stores_of(typed_doc)
        assert_accessor_parity(tree_store, tree_store.root(),
                               storage_store, storage_store.root())

    def test_typed_library(self, library_doc):
        tree_store, storage_store = _stores_of(library_doc)
        assert_accessor_parity(tree_store, tree_store.root(),
                               storage_store, storage_store.root())


class TestDocumentOrderParity:
    def test_same_length_and_pairwise_agreement(self, untyped_doc):
        tree_store, storage_store = _stores_of(untyped_doc)
        order_a = store_document_order(tree_store)
        order_b = store_document_order(storage_store)
        assert len(order_a) == len(order_b)
        for ref_a, ref_b in zip(order_a, order_b):
            assert tree_store.node_kind(ref_a) == \
                storage_store.node_kind(ref_b)
            assert tree_store.string_value(ref_a) == \
                storage_store.string_value(ref_b)

    def test_before_agrees(self, untyped_doc):
        tree_store, storage_store = _stores_of(untyped_doc)
        order_a = store_document_order(tree_store)
        order_b = store_document_order(storage_store)
        pairs = [(0, 1), (1, 5), (3, 2), (len(order_a) - 1, 0)]
        for i, j in pairs:
            assert tree_store.before(order_a[i], order_a[j]) == \
                storage_store.before(order_b[i], order_b[j])

    def test_store_order_index(self, untyped_doc):
        tree_store, storage_store = _stores_of(untyped_doc)
        index_a = StoreOrderIndex(tree_store)
        index_b = StoreOrderIndex(storage_store)
        assert len(index_a) == len(index_b)
        order_a = store_document_order(tree_store)
        order_b = store_document_order(storage_store)
        for ref_a, ref_b in zip(order_a, order_b):
            assert index_a.position(ref_a) == index_b.position(ref_b)


class TestConsumerParity:
    def test_paths(self, untyped_doc):
        tree_store, storage_store = _stores_of(untyped_doc)
        for path in ("/library/book/title", "//author", "//book[2]/title",
                     "//paper/author", "/library/book[issue]/title"):
            values_a = [tree_store.string_value(r) for r in
                        evaluate_store(tree_store, path)]
            values_b = [storage_store.string_value(r) for r in
                        evaluate_store(storage_store, path)]
            assert values_a == values_b, path

    def test_conformance(self, library_doc):
        checker = ConformanceChecker(library_doc.schema)
        tree_store, storage_store = _stores_of(library_doc)
        assert checker.check_store(tree_store) == []
        assert checker.check_store(storage_store) == []

    def test_conformance_sees_storage_violations(self, library_doc):
        # Delete a required title in both representations: both views
        # must report the same item numbers.
        library_doc.delete("/library/book[1]/title")
        checker = ConformanceChecker(library_doc.schema)
        tree_store, storage_store = _stores_of(library_doc)
        items_a = {v.item for v in checker.check_store(tree_store)}
        items_b = {v.item for v in checker.check_store(storage_store)}
        assert items_a == items_b != set()

    def test_mapping_g(self, untyped_doc):
        tree_store, storage_store = _stores_of(untyped_doc)
        assert serialize_store(tree_store) == \
            serialize_store(storage_store)

    def test_mapping_g_typed(self, typed_doc):
        tree_store, storage_store = _stores_of(typed_doc)
        assert serialize_store(tree_store) == \
            serialize_store(storage_store)

    def test_xquery(self, untyped_doc):
        tree_store, storage_store = _stores_of(untyped_doc)
        queries = (
            "//author",
            "count(//book)",
            "for $b in /library/book where count($b/author) > 1 "
            "return $b/title",
            "for $t in //title order by $t return $t",
            "distinct-values(//author)",
        )
        for query in queries:
            assert execute_values(tree_store, query) == \
                execute_values(storage_store, query), query


class TestParityUnderUpdates:
    def test_mixed_updates_stay_bisimilar(self, untyped_doc):
        doc = untyped_doc
        # Append a new book after every existing child (child indices
        # count the preserved whitespace text nodes too).
        end = len(list(doc.tree.document_element().children()))
        doc.insert_element("/library", end, "book")
        doc.insert_element("/library/book[3]", 0, "title")
        doc.insert_text("/library/book[3]/title", 0, "The Art of SQL")
        doc.set_attribute("/library/book[3]", "lang", "en")
        doc.delete("/library/paper[2]")
        doc.set_attribute("/library/book[1]", "shelf", "A3")
        doc.set_attribute("/library/book[1]", "shelf", "B1")  # replace
        doc.verify_consistency()
        tree_store, storage_store = _stores_of(doc)
        assert_accessor_parity(tree_store, tree_store.root(),
                               storage_store, storage_store.root())
        assert len(store_document_order(tree_store)) == \
            len(store_document_order(storage_store))

    def test_queries_after_updates(self, untyped_doc):
        doc = untyped_doc
        doc.insert_element("/library", 0, "book")
        doc.insert_element("/library/book[1]", 0, "title")
        doc.insert_text("/library/book[1]/title", 0, "Transactions")
        doc.delete("/library/book[2]/author[2]")
        tree_store, storage_store = _stores_of(doc)
        for path in ("//title", "//author", "/library/book/title"):
            values_a = [tree_store.string_value(r) for r in
                        evaluate_store(tree_store, path)]
            values_b = [storage_store.string_value(r) for r in
                        evaluate_store(storage_store, path)]
            assert values_a == values_b, path

    def test_divergence_is_detected(self, untyped_doc):
        doc = untyped_doc
        tree_store, storage_store = _stores_of(doc)
        assert stores_agree(tree_store, storage_store)
        # Mutate the tree side only: bisimulation must fail.
        root_element = doc.tree.document_element()
        doc.algebra.append_child(root_element,
                                 doc.algebra.create_text("rogue"))
        assert not stores_agree(tree_store, storage_store)
        with pytest.raises(StorageError):
            bisimulate(tree_store, storage_store)


class TestDeleteRegression:
    """StoredDocument.delete: the root element is not deletable, and
    nested deletes keep both representations in lockstep."""

    def test_delete_root_element_rejected(self, untyped_doc):
        with pytest.raises(DatabaseError, match="document root"):
            untyped_doc.delete("/library")

    def test_nested_delete_keeps_consistency(self, untyped_doc):
        before = untyped_doc.engine.node_count()
        subtree = len(list(TREE_STORE.iter_document_order(
            untyped_doc.query("/library/book[2]/issue")[0])))
        removed = untyped_doc.delete("/library/book[2]/issue")
        assert removed == subtree
        assert untyped_doc.engine.node_count() == before - removed
        untyped_doc.verify_consistency()
        assert untyped_doc.query_values("//publisher") == []

    def test_descriptor_forgotten_after_delete(self, untyped_doc):
        target = untyped_doc.query("/library/paper[1]")[0]
        untyped_doc.delete("/library/paper[1]")
        with pytest.raises(DatabaseError, match="diverged"):
            untyped_doc._descriptor_for(target)


class TestSetAttributeReplace:
    """StoredDocument.set_attribute: second write to the same name
    replaces the value in *both* representations."""

    def test_replace_updates_both_sides(self, untyped_doc):
        doc = untyped_doc
        doc.set_attribute("/library/book[1]", "lang", "en")
        doc.set_attribute("/library/book[1]", "lang", "fr")
        doc.verify_consistency()
        (element,) = doc.query("/library/book[1]")
        attributes = list(element.attributes())
        assert len(attributes) == 1
        assert attributes[0].string_value() == "fr"
        descriptor = doc._descriptor_for(element)
        stored = doc.engine.attributes(descriptor)
        assert len(stored) == 1
        assert stored[0].value == "fr"

    def test_replace_keeps_label_and_identity(self, untyped_doc):
        doc = untyped_doc
        doc.set_attribute("/library/book[1]", "lang", "en")
        (element,) = doc.query("/library/book[1]")
        (attribute,) = element.attributes()
        descriptor = doc._descriptor_for(attribute)
        nid = descriptor.nid.symbols()
        doc.set_attribute("/library/book[1]", "lang", "de")
        assert doc._descriptor_for(attribute) is descriptor
        assert descriptor.nid.symbols() == nid  # no relabeling
        assert attribute.string_value() == "de"

    def test_engine_default_still_rejects_duplicates(self, untyped_doc):
        doc = untyped_doc
        doc.set_attribute("/library/book[1]", "lang", "en")
        (element,) = doc.query("/library/book[1]")
        descriptor = doc._descriptor_for(element)
        from repro.xmlio.qname import QName
        with pytest.raises(StorageError, match="already present"):
            doc.engine.set_attribute(descriptor, QName("", "lang"), "xx")


class TestDescriptorLookup:
    def test_lookup_is_dictionary_backed(self, untyped_doc):
        # Every tree node has a mapped descriptor and the map is exactly
        # the size of the document.
        doc = untyped_doc
        refs = list(TREE_STORE.iter_document_order(doc.tree))
        assert len(doc._descriptors) == len(refs)
        for node in refs:
            descriptor = doc._descriptor_for(node)
            assert doc.engine.node_kind(descriptor) == node.node_kind()

    def test_foreign_node_rejected(self, untyped_doc):
        other = untyped_document_to_tree(
            parse_document("<x><y/></x>"))
        with pytest.raises(DatabaseError, match="diverged"):
            untyped_doc._descriptor_for(other.document_element())
