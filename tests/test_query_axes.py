"""Laziness and storage-side tests for the following/preceding axes.

The axes used to materialize identifier sets over a full
``iter_document_order`` walk.  These tests pin down the rewrite: the
tree-side axes stream structurally (first result in O(depth+fan-out)
accessor calls), and the storage-side axes decide membership purely by
Section 9.3 label comparison.
"""

import pytest

from repro.mapping import untyped_document_to_tree
from repro.query import (
    AXES,
    STORAGE_AXES,
    storage_following_axis,
    storage_preceding_axis,
)
from repro.query.axes import following_axis, preceding_axis
from repro.storage import StorageEngine
from repro.storage.labels import before, is_ancestor
from repro.workloads import make_library_document
from repro.xdm.node import AttributeNode, ElementNode
from repro.xmlio import parse_document, serialize_document

_DOC = '<r i="1"><a><b/><c>x</c></a><d j="2"/><a><b/></a></r>'


def _wide_document(width=400, leaves=3):
    items = "".join(
        "<item>" + "<leaf/>" * leaves + "</item>" for _ in range(width))
    return untyped_document_to_tree(
        parse_document(f"<root>{items}</root>"))


@pytest.fixture
def counted_children(monkeypatch):
    """Count every ElementNode.children() call — the axes' only way
    to reach new nodes, so the count bounds how much tree they visit."""
    calls = {"n": 0}
    original = ElementNode.children

    def counting(self):
        calls["n"] += 1
        return original(self)

    monkeypatch.setattr(ElementNode, "children", counting)
    return calls


class TestAxisLaziness:
    def test_first_following_result_is_cheap(self, counted_children):
        tree = _wide_document()
        context = tree.document_element().element_children()[0]
        counted_children["n"] = 0
        first = next(following_axis(context))
        # One call on the root to find the next sibling; the sibling
        # itself is yielded before its own subtree is entered.  A
        # whole-document walk would cost 400+ calls here.
        assert counted_children["n"] <= 3
        assert first.node_name().head().local == "item"

    def test_first_preceding_result_is_cheap(self, counted_children):
        tree = _wide_document()
        context = tree.document_element().element_children()[-1]
        counted_children["n"] = 0
        first = next(preceding_axis(context))
        # Root's children once to buffer the level, then descend into
        # the nearest preceding sibling's subtree only.
        assert counted_children["n"] <= 6
        assert first.node_name().head().local == "leaf"

    def test_partial_consumption_stays_partial(self, counted_children):
        tree = _wide_document()
        context = tree.document_element().element_children()[0]
        counted_children["n"] = 0
        iterator = following_axis(context)
        for _ in range(8):
            next(iterator)
        partial = counted_children["n"]
        assert partial <= 12
        # Draining the rest really does visit the remaining siblings.
        remaining = sum(1 for _ in iterator)
        assert remaining > 300
        assert counted_children["n"] > partial


class TestStorageAxes:
    @pytest.fixture(scope="class")
    def loaded(self):
        engine = StorageEngine()
        engine.load_document(parse_document(_DOC))
        tree = untyped_document_to_tree(parse_document(_DOC))
        return engine, tree

    @pytest.fixture(scope="class")
    def scaled(self):
        text = serialize_document(
            make_library_document(books=12, papers=12, seed=7))
        engine = StorageEngine()
        engine.load_document(parse_document(text))
        tree = untyped_document_to_tree(parse_document(text))
        return engine, tree

    @staticmethod
    def _paired(engine, tree):
        """(tree node, descriptor) pairs in document order, attributes
        excluded on both sides."""
        from repro.order.document_order import iter_document_order
        from repro.query.axes import _storage_document_stream
        tree_nodes = [node for node in iter_document_order(tree)
                      if not isinstance(node, AttributeNode)]
        descriptors = list(_storage_document_stream(engine))
        assert len(tree_nodes) == len(descriptors)
        return list(zip(tree_nodes, descriptors))

    @staticmethod
    def _signature(engine, descriptor):
        name = engine.node_name(descriptor)
        return name.local if name is not None else \
            engine.node_kind(descriptor)

    def _assert_axes_agree(self, engine, tree):
        pairs = self._paired(engine, tree)
        labels = {id(node): descriptor for node, descriptor in pairs}
        for node, descriptor in pairs:
            if isinstance(node, ElementNode):
                for name, storage_axis in STORAGE_AXES.items():
                    expected = [labels[id(n)].nid
                                for n in AXES[name](node)]
                    got = [d.nid
                           for d in storage_axis(engine, descriptor)]
                    assert got == expected, (name, descriptor)

    def test_following_and_preceding_agree_with_tree(self, loaded):
        self._assert_axes_agree(*loaded)

    def test_agreement_on_scaled_library(self, scaled):
        self._assert_axes_agree(*scaled)

    def test_following_plus_rest_partitions_document(self, loaded):
        """following ∪ preceding ∪ ancestors ∪ descendants ∪ self
        covers every non-attribute node exactly once (the XPath axis
        partition), stated purely in labels."""
        engine, tree = loaded
        pairs = self._paired(engine, tree)
        everything = [d for _, d in pairs]
        for _, descriptor in pairs:
            context = descriptor.nid
            following = list(storage_following_axis(engine, descriptor))
            preceding = list(storage_preceding_axis(engine, descriptor))
            covered = len(following) + len(preceding) + sum(
                1 for other in everything
                if other.nid is context
                or is_ancestor(other.nid, context)
                or is_ancestor(context, other.nid))
            assert covered == len(everything)

    def test_preceding_stops_scanning_at_context(self, loaded):
        """The merged scan breaks at the context label instead of
        draining the document: probing a descriptor past the context
        must not happen (verified by a counting shim)."""
        engine, tree = loaded
        pairs = self._paired(engine, tree)
        # Context: the first <b/> — early in the document.
        node, descriptor = next(
            (n, d) for n, d in pairs
            if isinstance(n, ElementNode)
            and n.node_name().head().local == "b")
        scanned = []
        import repro.query.axes as axes_module
        original = axes_module._storage_document_stream

        def shim():
            for candidate in original(engine):
                scanned.append(candidate)
                yield candidate

        axes_module._storage_document_stream = lambda _engine: shim()
        try:
            list(storage_preceding_axis(engine, descriptor))
        finally:
            axes_module._storage_document_stream = original
        # Only descriptors up to (and including) the context were
        # pulled from the merge; everything after it stayed unread.
        assert all(not before(descriptor.nid, d.nid) for d in scanned)
        assert len(scanned) < len(pairs)

    def test_storage_axes_allocate_no_identifier_sets(self, loaded):
        """Membership is decided by before/is_ancestor on labels —
        the generators hold no set of node identifiers.  Checked
        structurally: the generator's local state never contains a
        set or dict of nids."""
        engine, tree = loaded
        pairs = self._paired(engine, tree)
        _, descriptor = pairs[len(pairs) // 2]
        iterator = storage_following_axis(engine, descriptor)
        next(iterator, None)
        state = iterator.gi_frame.f_locals if iterator.gi_frame else {}
        assert not any(isinstance(v, (set, frozenset, dict))
                       for v in state.values())
