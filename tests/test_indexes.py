"""Secondary indexes: DDL, typed probes, maintenance, planner, WAL.

The tentpole contract under test: a typed-value index keyed by the §4
value space and a path index materializing a descriptive-schema match
set, declared through ``engine.create_index``, kept current by the
mutation paths, consulted by the plan compiler (with index-epoch cache
invalidation), persisted as *definitions* (contents are derived state
rebuilt on load), and replayed/reconciled through the WAL on recovery.
"""

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.errors import StorageError, TypeSystemError, UpdateError
from repro.query.engine import StorageQueryEngine
from repro.storage import (
    StorageEngine,
    TransactionManager,
    WriteAheadLog,
    bulk_load,
    recover,
)
from repro.storage.indexes import ValueIndex
from repro.storage.wal import CHECKPOINT, CREATE_INDEX, DROP_INDEX, read_wal
from repro.workloads.library import make_library_document
from repro.xmlio.qname import QName


def _engine(books=8, papers=4, **kwargs) -> StorageEngine:
    engine = StorageEngine()
    engine.load_document(make_library_document(
        books=books, papers=papers, year_attrs=True, **kwargs))
    return engine


def _books(engine):
    library = engine.children(engine.document)[0]
    return [child for child in engine.children(library)
            if child.schema_node.name.local == "book"]


def _year(engine, book):
    for attribute in engine.attributes(book):
        if attribute.schema_node.name.local == "year":
            return attribute
    return None


# ---------------------------------------------------------------------------
# DDL validation


class TestDdlValidation:
    def test_unknown_kind_rejected(self):
        engine = _engine()
        with pytest.raises(UpdateError, match="unknown index kind"):
            engine.create_index("library/book/@year", kind="btree")

    def test_value_index_rejects_descendant_and_predicates(self):
        engine = _engine()
        with pytest.raises(UpdateError, match="exact schema path"):
            engine.create_index("//book/@year")
        with pytest.raises(UpdateError, match="exact schema path"):
            engine.create_index("library/book[1]/@year")

    def test_value_index_requires_resolving_path(self):
        engine = _engine()
        with pytest.raises(UpdateError, match="does not resolve"):
            engine.create_index("library/shelf/@year")

    def test_value_index_rejects_unknown_type(self):
        engine = _engine()
        with pytest.raises(UpdateError):
            engine.create_index("library/book/@year",
                                value_type="no-such-type")

    def test_path_index_rejects_predicates(self):
        engine = _engine()
        with pytest.raises(UpdateError, match="predicate-free"):
            engine.create_index("/library/book[@year]", kind="path")

    def test_duplicate_declaration_rejected(self):
        engine = _engine()
        engine.create_index("library/book/@year")
        with pytest.raises(UpdateError, match="already declared"):
            engine.create_index("/library/book/@year")

    def test_drop_unknown_index_rejected(self):
        engine = _engine()
        with pytest.raises(UpdateError):
            engine.drop_index("library/book/@year")

    def test_drop_removes_the_index(self):
        engine = _engine()
        engine.create_index("library/book/@year")
        assert len(engine.indexes) == 1
        engine.drop_index("library/book/@year")
        assert len(engine.indexes) == 0
        assert not engine.indexes.active


# ---------------------------------------------------------------------------
# Typed-value probes


class TestValueProbes:
    def test_attribute_eq_probe_returns_owning_elements(self):
        engine = _engine()
        index = engine.create_index("library/book/@year",
                                    value_type="integer")
        books = _books(engine)
        target = int(_year(engine, books[0]).value)
        expected = [book for book in books
                    if int(_year(engine, book).value) == target]
        assert index.probe_eq(index.parse_key(str(target))) == expected

    def test_probes_compare_in_the_typed_value_space(self):
        engine = StorageEngine()
        engine.load_document(make_library_document(books=0, papers=0))
        library = engine.children(engine.document)[0]
        year = QName("", "year")
        lexicals = ["9", "10", "100", "0009"]
        for i, lexical in enumerate(lexicals):
            book = engine.insert_child(library, i, name=QName("", "book"))
            engine.set_attribute(book, year, lexical)
        index = engine.create_index("library/book/@year",
                                    value_type="integer")
        # Lexically "9" > "10"; in the integer value space 9 < 10, and
        # "9" and "0009" collapse to the same key.
        assert len(index.probe_eq(9)) == 2
        low = index.probe_range(high=10, inclusive_high=False)
        assert [int(_year(engine, b).value) for b in low] == [9, 9]
        assert index.stats()["distinct_keys"] == 3

    def test_range_probe_respects_bounds(self):
        engine = _engine(books=12)
        index = engine.create_index("library/book/@year",
                                    value_type="integer")
        years = sorted({int(_year(engine, b).value)
                        for b in _books(engine)})
        low, high = years[1], years[-2]
        hits = index.probe_range(low, high)
        got = sorted({int(_year(engine, b).value) for b in hits})
        assert got == [y for y in years if low <= y <= high]
        exclusive = index.probe_range(low, high, inclusive_low=False,
                                      inclusive_high=False)
        got = sorted({int(_year(engine, b).value) for b in exclusive})
        assert got == [y for y in years if low < y < high]

    def test_probe_results_are_in_document_order(self):
        engine = _engine(books=12)
        index = engine.create_index("library/book/@year",
                                    value_type="integer")
        for result in (index.probe_exists(), index.probe_range()):
            keys = [d.nid.sort_key() for d in result]
            assert keys == sorted(keys)

    def test_element_index_keys_on_string_value(self):
        engine = _engine()
        index = engine.create_index("library/book/title")
        titles = [engine.string_value(engine.children(book)[0])
                  for book in _books(engine)]
        hits = index.probe_eq(index.parse_key(titles[0]))
        assert hits  # owners are the title elements themselves
        assert all(engine.string_value(d) == titles[0] for d in hits)
        assert len(hits) == titles.count(titles[0])

    def test_untyped_values_probe_as_existing_only(self):
        engine = _engine(books=4)
        books = _books(engine)
        _year(engine, books[0]).value = "not-a-year"
        index = engine.create_index("library/book/@year",
                                    value_type="integer")
        assert len(index.probe_exists()) == 4
        assert index.stats()["entries"] == 4
        assert index.stats()["distinct_keys"] <= 3
        assert books[0] not in index.probe_range()
        with pytest.raises(TypeSystemError):
            index.parse_key("not-a-year")


# ---------------------------------------------------------------------------
# Path index


class TestPathIndex:
    def test_probe_merges_descriptor_sets_in_document_order(self):
        engine = _engine(books=6, papers=6)
        index = engine.create_index("//author", kind="path")
        queries = StorageQueryEngine(engine)
        assert index.probe() == queries.evaluate_naive("//author")
        assert index.stats()["schema_nodes_covered"] >= 2

    def test_survives_schema_growth(self):
        engine = _engine(books=4, papers=2)
        index = engine.create_index("//author", kind="path")
        before = len(index.probe())
        # A brand-new schema path matching //author appears later.
        library = engine.children(engine.document)[0]
        journal = engine.insert_child(library, len(_books(engine)),
                                      name=QName("", "journal"))
        author = engine.insert_child(journal, 0,
                                     name=QName("", "author"))
        engine.insert_child(author, 0, text="Nobody")
        queries = StorageQueryEngine(engine)
        assert len(index.probe()) == before + 1
        assert index.probe() == queries.evaluate_naive("//author")


# ---------------------------------------------------------------------------
# Incremental maintenance


class TestMaintenance:
    def test_insert_update_delete_keep_indexes_consistent(self):
        engine = _engine()
        engine.create_index("library/book/@year", value_type="integer")
        engine.create_index("library/book/title")
        engine.create_index("//author", kind="path")
        library = engine.children(engine.document)[0]

        book = engine.insert_child(library, 0, name=QName("", "book"))
        engine.set_attribute(book, QName("", "year"), "2001")
        title = engine.insert_child(book, 0, name=QName("", "title"))
        engine.insert_child(title, 0, text="New Book")
        assert engine.indexes.verify_consistency() == 3

        engine.set_attribute(book, QName("", "year"), "2002",
                             replace=True)
        assert engine.indexes.verify_consistency() == 3

        engine.delete_subtree(book)
        assert engine.indexes.verify_consistency() == 3

    def test_eq_probe_tracks_value_updates(self):
        engine = _engine()
        index = engine.create_index("library/book/@year",
                                    value_type="integer")
        book = _books(engine)[0]
        engine.set_attribute(book, QName("", "year"), "3000",
                             replace=True)
        assert index.probe_eq(3000) == [book]
        engine.set_attribute(book, QName("", "year"), "3001",
                             replace=True)
        assert index.probe_eq(3000) == []
        assert index.probe_eq(3001) == [book]

    def test_rolled_back_transaction_leaves_indexes_untouched(
            self, tmp_path):
        engine = _engine()
        index = engine.create_index("library/book/@year",
                                    value_type="integer")
        snapshot = index.snapshot()
        manager = TransactionManager(
            engine, WriteAheadLog(tmp_path / "wal.log"))
        library = engine.children(engine.document)[0]
        with pytest.raises(RuntimeError):
            with manager.transaction():
                book = engine.insert_child(library, 0,
                                           name=QName("", "book"))
                engine.set_attribute(book, QName("", "year"), "2525")
                raise RuntimeError("roll it back")
        assert index.snapshot() == snapshot
        assert engine.indexes.verify_consistency() == 1

    def test_rolled_back_ddl_is_undone(self, tmp_path):
        engine = _engine()
        engine.create_index("library/book/title")
        manager = TransactionManager(
            engine, WriteAheadLog(tmp_path / "wal.log"))
        with pytest.raises(RuntimeError):
            with manager.transaction():
                engine.create_index("library/book/@year")
                engine.drop_index("library/book/title")
                raise RuntimeError("roll it back")
        assert [d.path for d in engine.indexes.definitions()] \
            == ["library/book/title"]
        assert engine.indexes.verify_consistency() == 1


# ---------------------------------------------------------------------------
# Planner integration


class TestPlannerIntegration:
    def _queries(self, engine):
        return StorageQueryEngine(engine)

    @pytest.mark.parametrize("path", [
        "/library/book[@year='1970']/title",
        "/library/book[@year]",
        "/library/book[@year]/author",
        "//author",
    ])
    def test_index_route_matches_naive_evaluation(self, path):
        engine = _engine(books=16, papers=8)
        queries = self._queries(engine)
        expected = queries.evaluate_naive(path)
        assert queries.evaluate(path) == expected
        engine.create_index("library/book/@year", value_type="integer")
        engine.create_index("//author", kind="path")
        assert queries.evaluate(path) == expected

    def test_explain_reports_the_index_strategy(self):
        engine = _engine()
        engine.create_index("library/book/@year", value_type="integer")
        queries = self._queries(engine)
        obs.reset()
        obs.enable()
        try:
            queries.evaluate("/library/book[@year]/title")
            record = obs.EXPLAINS.last()
            assert record.strategy == "index"
            assert record.index_used == "value:library/book/@year"
            counters = obs.REGISTRY.snapshot()
            assert counters["index.probes"] >= 1
            assert counters["index.hits"] >= 1
        finally:
            obs.disable()
            obs.reset()

    def test_unparseable_literal_declines_the_index(self):
        # Typed equality can never hold, but the scan route's untyped
        # string comparison still could — the planner must not change
        # semantics by probing.
        engine = _engine()
        engine.create_index("library/book/@year", value_type="integer")
        queries = self._queries(engine)
        plan = queries.compile("/library/book[@year='oops']/title")
        assert plan.strategy != "index"

    def test_epoch_bump_invalidates_exactly_affected_plans(self):
        engine = _engine(books=6, papers=3)
        queries = self._queries(engine)
        affected = "/library/book[@year]/title"
        unaffected = "/library/paper/title"
        queries.evaluate(affected)
        queries.evaluate(unaffected)
        base = queries.cache_stats()
        engine.create_index("library/book/@year", value_type="integer")
        assert queries.compile(affected).strategy == "index"
        assert queries.compile(unaffected).strategy == "scan"
        stats = queries.cache_stats()
        assert stats["plan_invalidations"] \
            - base["plan_invalidations"] == 1
        # The unaffected plan was restamped in place and counts a hit.
        assert stats["plan_hits"] - base["plan_hits"] == 1

    def test_dropping_the_index_falls_back_to_scan(self):
        engine = _engine()
        queries = self._queries(engine)
        path = "/library/book[@year]/title"
        engine.create_index("library/book/@year", value_type="integer")
        expected = queries.evaluate_naive(path)
        assert queries.compile(path).strategy == "index"
        assert queries.evaluate(path) == expected
        engine.drop_index("library/book/@year")
        assert queries.compile(path).strategy != "index"
        assert queries.evaluate(path) == expected

    def test_schema_driven_baseline_stays_index_free(self):
        engine = _engine()
        engine.create_index("library/book/@year", value_type="integer")
        queries = self._queries(engine)
        path = "/library/book[@year]/title"
        assert queries.evaluate_schema_driven(path) \
            == queries.evaluate_naive(path)


# ---------------------------------------------------------------------------
# WAL + bulk load


class TestDurability:
    def test_ddl_is_logged_and_replayed(self, tmp_path):
        engine = _engine()
        wal = WriteAheadLog(tmp_path / "wal.log")
        manager = TransactionManager(engine, wal)
        image = tmp_path / "store.img"
        from repro.storage.recovery import checkpoint
        checkpoint(engine, image, wal=wal)
        engine.create_index("library/book/@year", value_type="integer")
        engine.drop_index("library/book/@year")
        engine.create_index("library/book/title")
        kinds = [r.kind for r in read_wal(wal.path).records]
        assert kinds.count(CREATE_INDEX) == 2
        assert kinds.count(DROP_INDEX) == 1

        result = recover(image, wal.path)
        assert result.index_definitions == 1
        assert result.indexes_verified == 1
        assert [d.path for d in result.engine.indexes.definitions()] \
            == ["library/book/title"]

    def test_bulk_load_writes_one_logical_record(self, tmp_path):
        document = make_library_document(books=6, papers=3,
                                         year_attrs=True)
        wal = WriteAheadLog(tmp_path / "wal.log")
        engine = StorageEngine()
        summary = bulk_load(engine, document, tmp_path / "store.img",
                            wal)
        assert summary["wal_records"] == 3
        # The implicit checkpoint put the LOAD under the horizon and
        # rotated the log: only the checkpoint marker remains.
        kinds = [r.kind for r in read_wal(wal.path).records]
        assert kinds == [CHECKPOINT]

        reference = StorageEngine()
        reference.load_document(document)
        assert engine.node_count() == reference.node_count()

        result = recover(tmp_path / "store.img", wal.path)
        assert result.relabels == 0
        assert result.engine.node_count() == engine.node_count()

    def test_bulk_load_requires_an_empty_engine(self, tmp_path):
        engine = _engine()
        wal = WriteAheadLog(tmp_path / "wal.log")
        with pytest.raises(StorageError):
            bulk_load(engine, make_library_document(),
                      tmp_path / "store.img", wal)

    def test_bulk_load_builds_declared_indexes_once(self, tmp_path):
        document = make_library_document(books=6, year_attrs=True)
        engine = StorageEngine()
        wal = WriteAheadLog(tmp_path / "wal.log")
        bulk_load(engine, document, tmp_path / "store.img", wal)
        engine.create_index("library/book/@year", value_type="integer")
        assert engine.indexes.verify_consistency() == 1


# ---------------------------------------------------------------------------
# CLI


_YEARED_DOC = ("<library>"
               "<book year='1994'><title>TAOI</title>"
               "<author>Gray</author></book>"
               "<book year='2001'><title>QET</title>"
               "<author>Codd</author></book>"
               "<paper><title>FMXS</title><author>Siméon</author></paper>"
               "</library>")


class TestCli:
    @pytest.fixture
    def doc(self, tmp_path):
        path = tmp_path / "lib.xml"
        path.write_text(_YEARED_DOC, encoding="utf-8")
        return str(path)

    def test_declares_and_probes_a_value_index(self, doc, capsys):
        code = cli_main(["index", doc, "library/book/@year",
                         "--type", "integer", "--eq", "1994"])
        assert code == 0
        out = capsys.readouterr().out
        assert "index value:library/book/@year (integer)" in out
        assert "probe eq '1994': 1 match(es)" in out

    def test_json_report_includes_explain(self, doc, capsys):
        import json
        code = cli_main(["index", doc, "library/book/@year",
                         "--type", "integer",
                         "--query", "/library/book[@year='2001']/title",
                         "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["definition"]["kind"] == "value"
        assert report["stats"]["entries"] == 2
        assert report["query"]["count"] == 1
        assert report["query"]["explain"]["strategy"] == "index"

    def test_path_index_rejects_value_probes(self, doc, capsys):
        code = cli_main(["index", doc, "//author", "--kind", "path",
                         "--eq", "x"])
        assert code == 2

    def test_range_probe(self, doc, capsys):
        code = cli_main(["index", doc, "library/book/@year",
                         "--type", "integer",
                         "--low", "1990", "--high", "2000"])
        assert code == 0
        assert "1 match(es)" in capsys.readouterr().out
