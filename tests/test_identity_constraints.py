"""Tests for ID/IDREF identity constraints."""

import pytest

from repro.algebra.identity import check_identity, collect_ids
from repro.mapping import document_to_tree
from repro.schema import parse_schema
from repro.xmlio import parse_document
from repro.workloads.fixtures import wrap_in_schema

_SCHEMA = wrap_in_schema("""
 <xsd:complexType name="Person">
  <xsd:sequence>
   <xsd:element name="name" type="xsd:string"/>
  </xsd:sequence>
  <xsd:attribute name="pid" type="xsd:ID"/>
  <xsd:attribute name="manager" type="xsd:IDREF"/>
 </xsd:complexType>
 <xsd:element name="staff"><xsd:complexType>
  <xsd:sequence>
   <xsd:element name="person" type="Person"
                minOccurs="0" maxOccurs="unbounded"/>
  </xsd:sequence>
 </xsd:complexType></xsd:element>""")

_REFS_SCHEMA = wrap_in_schema("""
 <xsd:complexType name="Node">
  <xsd:sequence>
   <xsd:element name="label" type="xsd:string"/>
  </xsd:sequence>
  <xsd:attribute name="nid" type="xsd:ID"/>
  <xsd:attribute name="links" type="xsd:IDREFS"/>
 </xsd:complexType>
 <xsd:element name="graph"><xsd:complexType>
  <xsd:sequence>
   <xsd:element name="node" type="Node"
                minOccurs="0" maxOccurs="unbounded"/>
  </xsd:sequence>
 </xsd:complexType></xsd:element>""")


def _tree(schema_text, document_text):
    return document_to_tree(parse_document(document_text),
                            parse_schema(schema_text))


class TestIdUniqueness:
    def test_unique_ids_pass(self):
        tree = _tree(_SCHEMA, """
          <staff>
            <person pid="p1" manager="p2"><name>Ann</name></person>
            <person pid="p2" manager="p2"><name>Bob</name></person>
          </staff>""")
        assert check_identity(tree) == []

    def test_duplicate_id_detected(self):
        tree = _tree(_SCHEMA, """
          <staff>
            <person pid="p1" manager="p1"><name>Ann</name></person>
            <person pid="p1" manager="p1"><name>Bob</name></person>
          </staff>""")
        violations = check_identity(tree)
        assert any(v.kind == "duplicate-id" and v.value == "p1"
                   for v in violations)

    def test_collect_ids(self):
        tree = _tree(_SCHEMA, """
          <staff>
            <person pid="p1" manager="p1"><name>Ann</name></person>
            <person pid="p2" manager="p1"><name>Bob</name></person>
          </staff>""")
        ids = collect_ids(tree)
        assert set(ids) == {"p1", "p2"}
        assert "person[2]" in ids["p2"]


class TestIdrefResolution:
    def test_dangling_idref_detected(self):
        tree = _tree(_SCHEMA, """
          <staff>
            <person pid="p1" manager="ghost"><name>Ann</name></person>
          </staff>""")
        violations = check_identity(tree)
        assert any(v.kind == "dangling-idref" and v.value == "ghost"
                   for v in violations)

    def test_forward_reference_allowed(self):
        tree = _tree(_SCHEMA, """
          <staff>
            <person pid="p1" manager="p2"><name>Ann</name></person>
            <person pid="p2" manager="p1"><name>Bob</name></person>
          </staff>""")
        assert check_identity(tree) == []

    def test_idrefs_each_token_checked(self):
        tree = _tree(_REFS_SCHEMA, """
          <graph>
            <node nid="a" links="a b"><label>A</label></node>
            <node nid="b" links="a ghost"><label>B</label></node>
          </graph>""")
        violations = check_identity(tree)
        assert len(violations) == 1
        assert violations[0].value == "ghost"

    def test_violation_reports_path(self):
        tree = _tree(_SCHEMA, """
          <staff>
            <person pid="p1" manager="x"><name>Ann</name></person>
          </staff>""")
        (violation,) = check_identity(tree)
        assert violation.path.endswith("person[1]/@manager")


class TestUntypedDocumentsAreUnconstrained:
    def test_untyped_attributes_ignored(self):
        from repro.mapping import untyped_document_to_tree
        tree = untyped_document_to_tree(parse_document(
            '<r><a pid="x"/><b pid="x"/></r>'))
        # Without xs:ID annotations there are no identity constraints.
        assert check_identity(tree) == []
