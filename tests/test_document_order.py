"""Tests for document order (Section 7)."""

import pytest

from repro.errors import ModelError
from repro.xmlio import QName
from repro.algebra import StateAlgebra, build_element_tree
from repro.order import (
    DocumentOrderIndex,
    before,
    compare,
    document_order,
    is_total_order,
    tree_before,
)


@pytest.fixture
def tree():
    """document -> r(@k) -> [a(@m)[text], b[c]] per the Section 7 rules."""
    algebra = StateAlgebra()
    document = algebra.create_document()
    r = build_element_tree(
        algebra,
        ("r", {"k": "v"},
         [("a", {"m": "w"}, ["text"]), ("b", {}, [("c", {}, [])])]))
    algebra.append_child(document, r)
    return document


def _by_name(document, local):
    for node in document_order(document):
        names = node.node_name()
        if names and names.head().local == local:
            return node
    raise AssertionError(f"no node named {local}")


class TestOrderRules:
    def test_document_precedes_element_child(self, tree):
        nodes = document_order(tree)
        assert nodes[0] is tree
        assert nodes[1] is tree.document_element()

    def test_element_precedes_its_attributes(self, tree):
        r = tree.document_element()
        attribute = list(r.attributes())[0]
        assert before(r, attribute)

    def test_attributes_precede_children(self, tree):
        r = tree.document_element()
        attribute = list(r.attributes())[0]
        first_child = list(r.children())[0]
        assert before(attribute, first_child)

    def test_subtrees_are_blockwise_ordered(self, tree):
        a = _by_name(tree, "a")
        b = _by_name(tree, "b")
        assert tree_before(a, b)

    def test_descendants_follow_ancestors(self, tree):
        a = _by_name(tree, "a")
        text = list(a.children())[0]
        assert before(a, text)

    def test_expected_total_order(self, tree):
        kinds_names = []
        for node in document_order(tree):
            names = node.node_name()
            label = names.head().local if names else node.node_kind()
            kinds_names.append(label)
        assert kinds_names == ["document", "r", "k", "a", "m", "text",
                               "b", "c"]


class TestStrictTotalOrder:
    def test_is_total_order(self, tree):
        assert is_total_order(tree)

    def test_irreflexive(self, tree):
        r = tree.document_element()
        assert not before(r, r)
        assert compare(r, r) == 0

    def test_antisymmetric(self, tree):
        a = _by_name(tree, "a")
        b = _by_name(tree, "b")
        assert before(a, b) != before(b, a)

    def test_different_trees_rejected(self, tree):
        other_algebra = StateAlgebra()
        foreign = other_algebra.create_element(QName("", "x"))
        with pytest.raises(ModelError):
            before(tree, foreign)


class TestIndex:
    def test_index_agrees_with_structural_compare(self, tree):
        index = DocumentOrderIndex(tree)
        nodes = document_order(tree)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                assert index.before(a, b)
                assert not index.before(b, a)
                assert index.compare(a, b) == -1
                assert index.compare(b, a) == 1

    def test_index_positions_sequential(self, tree):
        index = DocumentOrderIndex(tree)
        nodes = document_order(tree)
        assert [index.position(n) for n in nodes] == list(range(len(nodes)))

    def test_foreign_node_rejected(self, tree):
        index = DocumentOrderIndex(tree)
        algebra = StateAlgebra()
        with pytest.raises(ModelError):
            index.position(algebra.create_text("t"))

    def test_len(self, tree):
        assert len(DocumentOrderIndex(tree)) == 8
