"""Unit and property tests for the XML serializer (parse/serialize loop)."""

import string

from hypothesis import given, strategies as st

from repro.xmlio import (
    QName,
    XmlDocument,
    XmlElement,
    XmlText,
    escape_attribute,
    escape_text,
    parse_document,
    serialize_document,
    serialize_element,
)


class TestEscaping:
    def test_text_escaping(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_escaping(self):
        assert escape_attribute('a"b<c&d') == "a&quot;b&lt;c&amp;d"

    def test_attribute_whitespace_escaped(self):
        assert escape_attribute("a\tb\nc") == "a&#9;b&#10;c"


class TestSerialization:
    def test_empty_element_self_closes(self):
        assert serialize_element(XmlElement(QName("", "a"))) == "<a/>"

    def test_attributes_serialized_in_order(self):
        element = XmlElement(QName("", "a"),
                             attributes={QName("", "b"): "1",
                                         QName("", "c"): "2"})
        assert serialize_element(element) == '<a b="1" c="2"/>'

    def test_namespace_declarations_serialized(self):
        element = XmlElement(QName("urn:x", "a"),
                             namespace_decls={"": "urn:x"})
        assert serialize_element(element) == '<a xmlns="urn:x"/>'

    def test_prefixed_names(self):
        element = XmlElement(QName("urn:p", "a", "p"),
                             namespace_decls={"p": "urn:p"})
        assert serialize_element(element) == '<p:a xmlns:p="urn:p"/>'

    def test_xml_declaration(self):
        doc = XmlDocument(XmlElement(QName("", "a")))
        out = serialize_document(doc, xml_declaration=True)
        assert out.startswith("<?xml version=")

    def test_pretty_printing_element_only(self):
        doc = parse_document("<a><b/><c/></a>")
        out = serialize_document(doc, indent="  ")
        assert out == "<a>\n  <b/>\n  <c/>\n</a>\n"

    def test_pretty_printing_preserves_mixed(self):
        doc = parse_document("<a>x<b/>y</a>")
        out = serialize_document(doc, indent="  ")
        assert "x<b/>y" in out


def _roundtrip(text: str) -> XmlDocument:
    return parse_document(serialize_document(parse_document(text)))


class TestRoundTrip:
    def test_simple_roundtrip(self):
        doc = _roundtrip('<a x="1&amp; 2">text &lt; here<b/></a>')
        assert doc.root.get("x") == "1& 2"
        assert doc.root.text_content() == "text < here"

    def test_namespace_roundtrip(self):
        doc = _roundtrip('<p:a xmlns:p="urn:p" xmlns="urn:d"><b/></p:a>')
        assert doc.root.name == QName("urn:p", "a")
        assert doc.root.element_children()[0].name == QName("urn:d", "b")


_name_strategy = st.text(string.ascii_lowercase, min_size=1, max_size=8).filter(
    lambda name: name != "xmlns")
_text_strategy = st.text(
    st.characters(blacklist_categories=("Cs", "Cc"),
                  blacklist_characters="\r"),
    max_size=40)


@st.composite
def _element_strategy(draw, depth=0):
    name = draw(_name_strategy)
    element = XmlElement(QName("", name))
    n_attrs = draw(st.integers(min_value=0, max_value=3))
    for _ in range(n_attrs):
        attr = QName("", draw(_name_strategy))
        if attr not in element.attributes:
            element.attributes[attr] = draw(_text_strategy)
    if depth < 3:
        n_children = draw(st.integers(min_value=0, max_value=3))
        for _ in range(n_children):
            if draw(st.booleans()):
                text = draw(_text_strategy)
                if text:
                    element.append(XmlText(text))
            else:
                element.append(draw(_element_strategy(depth=depth + 1)))
    return element


def _content_equal(a: XmlElement, b: XmlElement) -> bool:
    if a.name != b.name or a.attributes != b.attributes:
        return False
    if len(a.children) != len(b.children):
        return False
    for ca, cb in zip(a.children, b.children):
        if isinstance(ca, XmlText) != isinstance(cb, XmlText):
            return False
        if isinstance(ca, XmlText):
            if ca.text != cb.text:
                return False
        elif not _content_equal(ca, cb):
            return False
    return True


class TestRoundTripProperties:
    @given(_element_strategy())
    def test_serialize_then_parse_is_identity(self, element):
        reparsed = parse_document(
            serialize_document(XmlDocument(element))).root
        assert _content_equal(element, reparsed)

    @given(_element_strategy())
    def test_serialization_is_deterministic(self, element):
        doc = XmlDocument(element)
        assert serialize_document(doc) == serialize_document(doc)
