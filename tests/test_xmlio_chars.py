"""Tests for character classification and QName handling."""

import pytest

from repro.errors import ConformanceError, LexicalError, XmlSyntaxError
from repro.xmlio import QName, split_prefixed, xdt, xsd
from repro.xmlio.chars import (
    collapse_whitespace,
    is_name,
    is_name_char,
    is_name_start_char,
    is_ncname,
    is_whitespace,
    is_xml_char,
    replace_whitespace,
)


class TestCharClasses:
    def test_whitespace(self):
        for ch in " \t\r\n":
            assert is_whitespace(ch)
        assert not is_whitespace("x")
        assert not is_whitespace(" ")  # nbsp is not XML whitespace

    def test_name_start_chars(self):
        for ch in ("a", "Z", "_", ":", "é", "Ж", "中"):
            assert is_name_start_char(ch), ch
        for ch in ("1", "-", ".", " ", "!"):
            assert not is_name_start_char(ch), ch

    def test_name_chars(self):
        for ch in ("a", "1", "-", ".", "·"):
            assert is_name_char(ch), ch
        assert not is_name_char(" ")

    def test_xml_chars(self):
        assert is_xml_char("a")
        assert is_xml_char("\t")
        assert is_xml_char("\U0001F600")
        assert not is_xml_char("\x00")
        assert not is_xml_char("\x0b")
        assert not is_xml_char("￾")

    def test_is_name(self):
        assert is_name("abc")
        assert is_name("_a-1.b")
        assert is_name("p:local")
        assert not is_name("")
        assert not is_name("1ab")
        assert not is_name("a b")

    def test_is_ncname(self):
        assert is_ncname("abc")
        assert not is_ncname("p:local")
        assert not is_ncname("")


class TestWhitespaceFacetHelpers:
    def test_collapse(self):
        assert collapse_whitespace("  a\t\tb \n c  ") == "a b c"
        assert collapse_whitespace("") == ""
        assert collapse_whitespace("   ") == ""

    def test_replace(self):
        assert replace_whitespace("a\tb\nc\rd") == "a b c d"
        assert replace_whitespace("a  b") == "a  b"  # spaces untouched


class TestQName:
    def test_clark_and_lexical(self):
        qname = QName("urn:x", "local", "p")
        assert qname.clark == "{urn:x}local"
        assert qname.lexical == "p:local"
        assert str(qname) == "p:local"

    def test_no_namespace(self):
        qname = QName("", "local")
        assert qname.clark == "local"
        assert qname.lexical == "local"

    def test_invalid_local_rejected(self):
        with pytest.raises(XmlSyntaxError):
            QName("", "not a name")

    def test_invalid_prefix_rejected(self):
        with pytest.raises(XmlSyntaxError):
            QName("urn:x", "ok", "bad prefix")

    def test_split_prefixed(self):
        assert split_prefixed("a:b") == ("a", "b")
        assert split_prefixed("plain") == ("", "plain")

    @pytest.mark.parametrize("bad", ["a:b:c", ":x", "x:"])
    def test_split_prefixed_rejects(self, bad):
        with pytest.raises(XmlSyntaxError):
            split_prefixed(bad)

    def test_helpers(self):
        assert xsd("string").uri == "http://www.w3.org/2001/XMLSchema"
        assert xsd("string").prefix == "xs"
        assert xdt("untypedAtomic").prefix == "xdt"


class TestErrorTypes:
    def test_conformance_error_carries_item_and_path(self):
        error = ConformanceError("5.1.1", "bad value", path="/a/b[1]")
        assert error.item == "5.1.1"
        assert error.path == "/a/b[1]"
        assert "5.1.1" in str(error)
        assert "/a/b[1]" in str(error)

    def test_lexical_error_fields(self):
        error = LexicalError("xs:integer", "abc", "not a number")
        assert error.type_name == "xs:integer"
        assert error.literal == "abc"
        assert "not a number" in str(error)

    def test_xml_syntax_error_position(self):
        error = XmlSyntaxError("oops", line=3, column=7)
        assert error.line == 3
        assert "line 3" in str(error)


class TestFormalConstructorExtras:
    def test_instance_with_projection(self):
        from repro.schema.constructors import Instance, NAT_NUMBER, Pair

        class Point:
            def __init__(self, x, y):
                self.x, self.y = x, y

        formal = Instance(Point, project=lambda p: (p.x, p.y),
                          inner=Pair(NAT_NUMBER, NAT_NUMBER))
        assert formal.contains(Point(1, 2))
        assert not formal.contains(Point(-1, 2))
        assert not formal.contains("not a point")

    def test_union_of_instances(self):
        from repro.schema.constructors import union_of_instances
        formal = union_of_instances(int, str)
        assert formal.contains(3)
        assert formal.contains("x")
        assert not formal.contains(3.5)

    def test_repr_is_name(self):
        from repro.schema.constructors import Seq, NAME
        assert repr(Seq(NAME)) == "Seq(Name)"
