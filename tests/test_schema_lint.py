"""Tests for the static schema diagnostics."""

from repro.schema import lint_schema, parse_schema
from repro.workloads.fixtures import (
    EXAMPLE_6_SCHEMA,
    EXAMPLE_7_SCHEMA,
    LIBRARY_SCHEMA,
    wrap_in_schema,
)


def _messages(issues):
    return [issue.message for issue in issues]


class TestCleanSchemas:
    def test_paper_examples_are_clean(self):
        for source in (EXAMPLE_6_SCHEMA, EXAMPLE_7_SCHEMA, LIBRARY_SCHEMA):
            assert lint_schema(parse_schema(source)) == []


class TestUpaDetection:
    def test_competing_choice_branches(self):
        schema = parse_schema(wrap_in_schema("""
          <xsd:element name="R"><xsd:complexType>
            <xsd:choice>
              <xsd:sequence>
                <xsd:element name="A" type="xsd:string"/>
                <xsd:element name="B" type="xsd:string"/>
              </xsd:sequence>
              <xsd:sequence>
                <xsd:element name="A" type="xsd:string"/>
                <xsd:element name="C" type="xsd:string"/>
              </xsd:sequence>
            </xsd:choice>
          </xsd:complexType></xsd:element>"""))
        issues = lint_schema(schema)
        assert any(issue.severity == "error"
                   and "Unique Particle Attribution" in issue.message
                   for issue in issues)

    def test_optional_prefix_ambiguity(self):
        # (A? , A) is ambiguous: an A can bind to either particle.
        schema = parse_schema(wrap_in_schema("""
          <xsd:element name="R"><xsd:complexType>
            <xsd:sequence>
              <xsd:sequence minOccurs="0">
                <xsd:element name="A" type="xsd:string"/>
              </xsd:sequence>
              <xsd:sequence>
                <xsd:element name="A" type="xsd:string"/>
              </xsd:sequence>
            </xsd:sequence>
          </xsd:complexType></xsd:element>"""))
        issues = lint_schema(schema)
        assert any(issue.severity == "error" for issue in issues)

    def test_counted_particle_not_flagged(self):
        # B{0,9} expands to many B positions but is perfectly
        # deterministic — a naive checker would false-positive here.
        schema = parse_schema(wrap_in_schema("""
          <xsd:element name="R"><xsd:complexType>
            <xsd:sequence>
              <xsd:element name="A" type="xsd:string"/>
              <xsd:element name="B" type="xsd:string"
                           minOccurs="0" maxOccurs="9"/>
            </xsd:sequence>
          </xsd:complexType></xsd:element>"""))
        assert lint_schema(schema) == []


class TestWarnings:
    def test_max_occurs_zero(self):
        schema = parse_schema(wrap_in_schema("""
          <xsd:element name="R"><xsd:complexType>
            <xsd:sequence>
              <xsd:element name="Gone" type="xsd:string"
                           minOccurs="0" maxOccurs="0"/>
              <xsd:element name="Kept" type="xsd:string"/>
            </xsd:sequence>
          </xsd:complexType></xsd:element>"""))
        issues = lint_schema(schema)
        assert any("maxOccurs=0" in m for m in _messages(issues))

    def test_unused_named_type(self):
        schema = parse_schema(wrap_in_schema("""
          <xsd:complexType name="Orphan">
            <xsd:sequence>
              <xsd:element name="X" type="xsd:string"/>
            </xsd:sequence>
          </xsd:complexType>
          <xsd:element name="R" type="xsd:string"/>"""))
        issues = lint_schema(schema)
        assert any("never used" in m for m in _messages(issues))

    def test_errors_sort_before_warnings(self):
        schema = parse_schema(wrap_in_schema("""
          <xsd:complexType name="Orphan">
            <xsd:choice>
              <xsd:sequence>
                <xsd:element name="A" type="xsd:string"/>
              </xsd:sequence>
              <xsd:sequence>
                <xsd:element name="A" type="xsd:string"/>
              </xsd:sequence>
            </xsd:choice>
          </xsd:complexType>
          <xsd:element name="R" type="xsd:string"/>"""))
        issues = lint_schema(schema)
        assert issues[0].severity == "error"
