"""Tests for the Seq(T) sequence type of Section 4."""

import pytest
from hypothesis import given, strategies as st

from repro.xsdtypes import Sequence, seq


class TestOperations:
    def test_length_operation(self):
        assert len(seq()) == 0
        assert len(seq(1, 2, 3)) == 3

    def test_concatenation_operation(self):
        assert seq(1, 2) + seq(3) == seq(1, 2, 3)
        assert seq() + seq(1) == seq(1)
        assert seq(1) + seq() == seq(1)

    def test_indexing_is_one_based(self):
        s = seq("a", "b", "c")
        assert s[1] == "a"
        assert s[3] == "c"

    def test_index_zero_rejected(self):
        with pytest.raises(IndexError):
            seq("a")[0]

    def test_index_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            seq("a")[2]

    def test_non_integer_index_rejected(self):
        with pytest.raises(TypeError):
            seq("a")["x"]


class TestFlattening:
    def test_nested_sequences_flatten(self):
        assert Sequence([seq(1, 2), seq(3)]) == seq(1, 2, 3)

    def test_empty_nested_sequences_vanish(self):
        assert Sequence([seq(), seq(1), seq()]) == seq(1)


class TestEquality:
    def test_equal_sequences(self):
        assert seq(1, 2) == seq(1, 2)
        assert hash(seq(1, 2)) == hash(seq(1, 2))

    def test_order_matters(self):
        assert seq(1, 2) != seq(2, 1)

    def test_empty_singleton(self):
        assert Sequence.empty() == seq()
        assert Sequence.empty().is_empty()

    def test_bool(self):
        assert not seq()
        assert seq(0)  # a sequence holding a falsy item is non-empty


class TestHelpers:
    def test_head(self):
        assert seq(7, 8).head() == 7

    def test_head_of_empty_raises(self):
        with pytest.raises(IndexError):
            seq().head()

    def test_map(self):
        assert seq(1, 2).map(lambda x: x * 10) == seq(10, 20)

    def test_items_tuple(self):
        assert seq(1, 2).items == (1, 2)

    def test_of_constructor(self):
        assert Sequence.of(1, 2) == seq(1, 2)


class TestAlgebraicProperties:
    @given(st.lists(st.integers()), st.lists(st.integers()),
           st.lists(st.integers()))
    def test_concatenation_associative(self, a, b, c):
        sa, sb, sc = Sequence(a), Sequence(b), Sequence(c)
        assert (sa + sb) + sc == sa + (sb + sc)

    @given(st.lists(st.integers()))
    def test_empty_is_identity(self, items):
        s = Sequence(items)
        assert s + Sequence.empty() == s
        assert Sequence.empty() + s == s

    @given(st.lists(st.integers()), st.lists(st.integers()))
    def test_length_homomorphism(self, a, b):
        assert len(Sequence(a) + Sequence(b)) == len(a) + len(b)

    @given(st.lists(st.integers(), min_size=1))
    def test_indexing_agrees_with_items(self, items):
        s = Sequence(items)
        for i, item in enumerate(items, start=1):
            assert s[i] == item
