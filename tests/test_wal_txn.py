"""Tests for the write-ahead log and the transaction manager.

The log format, torn-tail rule and transaction semantics are
medium-independent: the suite parametrizes over every shipped
:class:`WalStore` (file, sqlite rows, in-memory)."""

import pytest

from repro.errors import ReproError, StorageError, UpdateError
from repro.storage import (
    FileWalStore,
    MemoryWalStore,
    SqliteBackend,
    StorageEngine,
    Transaction,
    TransactionManager,
    WriteAheadLog,
    equal,
    read_wal,
    read_wal_store,
)
from repro.storage import wal as walmod
from repro.xmlio import QName, parse_document
from repro.workloads.fixtures import EXAMPLE_8_DOCUMENT


@pytest.fixture(params=["file", "sqlite", "memory"])
def wal_store(request, tmp_path):
    if request.param == "file":
        return FileWalStore(tmp_path / "test.wal")
    if request.param == "sqlite":
        return SqliteBackend(tmp_path / "wal.db").wal_store()
    return MemoryWalStore()


def _engine(capacity: int = 4) -> StorageEngine:
    engine = StorageEngine(block_capacity=capacity)
    engine.load_document(parse_document(EXAMPLE_8_DOCUMENT))
    return engine


def _attached(wal_store, capacity: int = 4, strict: bool = False):
    engine = _engine(capacity)
    wal = WriteAheadLog(wal_store)
    manager = TransactionManager(engine, wal, strict=strict)
    return engine, wal, manager


def _library(engine):
    return engine.children(engine.document)[0]


def _snapshot(engine):
    return [(engine.node_kind(d), d.nid.symbols(), d.value)
            for d in engine.iter_document_order()]


class TestWalFormat:
    def test_roundtrip_and_monotonic_lsns(self, wal_store):
        wal = WriteAheadLog(wal_store)
        nid = _engine().document.nid
        wal.append_begin(1)
        wal.append_insert_element(1, nid, 0, QName("", "book"), nid)
        wal.append_insert_text(1, nid, 0, "hello", nid)
        wal.append_set_attribute(1, nid, QName("", "year"), "2004",
                                 nid, replace=False)
        wal.append_delete(1, nid)
        wal.append_commit(1)
        wal.close()

        scan = read_wal_store(wal_store)
        assert [r.kind for r in scan.records] == [
            walmod.BEGIN, walmod.INSERT_ELEMENT, walmod.INSERT_TEXT,
            walmod.SET_ATTRIBUTE, walmod.DELETE, walmod.COMMIT]
        assert [r.lsn for r in scan.records] == [1, 2, 3, 4, 5, 6]
        assert not scan.torn
        assert scan.committed_txns() == {1}
        insert = scan.records[1]
        assert insert.name == QName("", "book")
        assert equal(insert.nid, nid)
        text = scan.records[2]
        assert text.text == "hello"
        attribute = scan.records[3]
        assert attribute.text == "2004"
        assert attribute.replace is False

    def test_reopen_continues_lsns(self, wal_store):
        wal = WriteAheadLog(wal_store)
        wal.append_begin(1)
        wal.append_commit(1)
        wal.close()
        wal = WriteAheadLog(wal_store)
        assert wal.last_lsn == 2
        wal.append_begin(2)
        wal.close()
        assert [r.lsn for r in read_wal_store(wal_store).records] \
            == [1, 2, 3]

    def test_crc_corruption_drops_the_tail(self, wal_store):
        wal = WriteAheadLog(wal_store)
        wal.append_begin(1)
        offset_after_first = len(wal_store.load())
        wal.append_commit(1)
        wal.close()
        data = bytearray(wal_store.load())
        # Flip a payload byte of the second record: its CRC fails and
        # the scan must stop after the first.
        data[-1] ^= 0xFF
        wal_store.reset(bytes(data))
        scan = read_wal_store(wal_store)
        assert [r.kind for r in scan.records] == [walmod.BEGIN]
        assert scan.torn
        assert scan.valid_bytes == offset_after_first

    def test_torn_tail_is_detected_and_truncated_on_reopen(self,
                                                           wal_store):
        wal = WriteAheadLog(wal_store)
        wal.append_begin(1)
        wal.close()
        wal_store.append(b"\x30\x00\x00\x00\xAA")  # half frame
        scan = read_wal_store(wal_store)
        assert scan.torn and scan.torn_bytes == 5
        assert [r.kind for r in scan.records] == [walmod.BEGIN]
        # Reopening for append truncates the torn tail away.
        wal = WriteAheadLog(wal_store)
        wal.append_commit(1)
        wal.close()
        scan = read_wal_store(wal_store)
        assert not scan.torn
        assert [r.kind for r in scan.records] == [walmod.BEGIN,
                                                  walmod.COMMIT]

    def test_not_a_wal(self, wal_store):
        wal_store.reset(b"NOTAWAL0\x01")
        with pytest.raises(StorageError):
            read_wal_store(wal_store)

    def test_not_a_wal_file(self, tmp_path):
        path = tmp_path / "bad.wal"
        path.write_bytes(b"NOTAWAL0\x01")
        with pytest.raises(StorageError):
            read_wal(path)

    def test_fresh_store_is_an_empty_scan(self, wal_store):
        scan = read_wal_store(wal_store)
        assert scan.records == [] and not scan.torn

    def test_missing_file_is_an_empty_scan(self, tmp_path):
        scan = read_wal(tmp_path / "absent.wal")
        assert scan.records == [] and not scan.torn


class TestTransactions:
    def test_commit_logs_before_and_commits(self, wal_store):
        engine, wal, manager = _attached(wal_store)
        library = _library(engine)
        with manager.transaction():
            paper = engine.insert_child(library, 0,
                                        name=QName("", "paper"))
            engine.insert_child(paper, 0, name=QName("", "title"))
        wal.close()
        scan = read_wal_store(wal_store)
        kinds = [r.kind for r in scan.records]
        assert kinds == [walmod.BEGIN, walmod.INSERT_ELEMENT,
                         walmod.INSERT_ELEMENT, walmod.COMMIT]
        assert scan.committed_txns() == {1}

    def test_rollback_insert(self, wal_store):
        engine, wal, manager = _attached(wal_store)
        library = _library(engine)
        before_image = _snapshot(engine)
        with pytest.raises(RuntimeError, match="boom"):
            with manager.transaction():
                engine.insert_child(library, 0, name=QName("", "paper"))
                raise RuntimeError("boom")
        assert _snapshot(engine) == before_image
        engine.check_invariants()
        scan = read_wal_store(wal_store)
        assert scan.records[-1].kind == walmod.ABORT
        assert scan.committed_txns() == set()

    def test_rollback_set_attribute_new_and_replace(self, wal_store):
        engine, wal, manager = _attached(wal_store)
        book = engine.children(_library(engine))[0]
        engine.set_attribute(book, QName("", "lang"), "en")
        before_image = _snapshot(engine)
        with pytest.raises(RuntimeError):
            with manager.transaction():
                engine.set_attribute(book, QName("", "lang"), "fr",
                                     replace=True)
                engine.set_attribute(book, QName("", "year"), "2004")
                raise RuntimeError("boom")
        assert _snapshot(engine) == before_image
        (lang,) = engine.attributes(book)
        assert lang.value == "en"
        engine.check_invariants()

    def test_rollback_delete_restores_subtree_label_exactly(self,
                                                            wal_store):
        engine, wal, manager = _attached(wal_store)
        library = _library(engine)
        before_image = _snapshot(engine)
        with pytest.raises(RuntimeError):
            with manager.transaction():
                engine.delete_subtree(engine.children(library)[0])
                raise RuntimeError("boom")
        assert _snapshot(engine) == before_image
        engine.check_invariants()

    def test_explicit_begin_commit_and_no_nesting(self, wal_store):
        engine, wal, manager = _attached(wal_store)
        txn = manager.begin()
        assert isinstance(txn, Transaction)
        with pytest.raises(UpdateError):
            manager.begin()
        manager.commit()
        with pytest.raises(UpdateError):
            manager.commit()
        with pytest.raises(UpdateError):
            manager.rollback()

    def test_autocommit_wraps_unmanaged_mutations(self, wal_store):
        engine, wal, manager = _attached(wal_store)
        library = _library(engine)
        engine.insert_child(library, 0, name=QName("", "paper"))
        wal.close()
        scan = read_wal_store(wal_store)
        assert [r.kind for r in scan.records] == [
            walmod.BEGIN, walmod.INSERT_ELEMENT, walmod.COMMIT]

    def test_strict_commit_rejects_corrupt_state(self, wal_store,
                                                 monkeypatch):
        engine, wal, manager = _attached(wal_store, strict=True)
        library = _library(engine)

        def broken():
            raise StorageError("simulated invariant breach")

        with manager.transaction() as txn:
            engine.insert_child(library, 0, name=QName("", "paper"))
            monkeypatch.setattr(engine, "check_invariants", broken)
            with pytest.raises(StorageError,
                               match="simulated invariant breach"):
                manager.commit()
        monkeypatch.undo()
        assert manager.active is None
        assert txn.state == "aborted"
        engine.check_invariants()
        scan = read_wal_store(wal_store)
        assert scan.committed_txns() == set()

    def test_one_manager_per_engine(self, wal_store):
        engine, wal, manager = _attached(wal_store)
        with pytest.raises(StorageError):
            TransactionManager(engine, wal)
        manager.detach()
        TransactionManager(engine, wal)


class TestUpdateValidation:
    """Bad mutations are refused up front — nothing half-applied."""

    def test_update_error_is_a_repro_error(self):
        assert issubclass(UpdateError, StorageError)
        assert issubclass(UpdateError, ReproError)

    @pytest.mark.parametrize("mutate", [
        lambda e, lib: e.delete_subtree(e.document),
        lambda e, lib: e.insert_child(lib, 99, name=QName("", "x")),
        lambda e, lib: e.insert_child(lib, -1, name=QName("", "x")),
        lambda e, lib: e.insert_child(lib, 0),
        lambda e, lib: e.insert_child(
            lib, 0, name=QName("", "x"), text="both"),
    ], ids=["delete-root", "index-high", "index-negative",
            "neither-name-nor-text", "both-name-and-text"])
    def test_refused_before_any_change(self, mutate):
        engine = _engine()
        library = _library(engine)
        before_image = _snapshot(engine)
        with pytest.raises(UpdateError):
            mutate(engine, library)
        assert _snapshot(engine) == before_image
        engine.check_invariants()

    def test_insert_under_text_node_refused(self):
        engine = _engine()
        title = engine.children(
            engine.children(_library(engine))[0])[0]
        (text,) = engine.children(title)
        assert engine.node_kind(text) == "text"
        with pytest.raises(UpdateError):
            engine.insert_child(text, 0, name=QName("", "x"))

    def test_set_attribute_on_non_element_refused(self):
        engine = _engine()
        with pytest.raises(UpdateError):
            engine.set_attribute(engine.document, QName("", "a"), "v")

    def test_duplicate_attribute_without_replace_refused(self):
        engine = _engine()
        book = engine.children(_library(engine))[0]
        engine.set_attribute(book, QName("", "lang"), "en")
        with pytest.raises(UpdateError):
            engine.set_attribute(book, QName("", "lang"), "fr")
        (lang,) = engine.attributes(book)
        assert lang.value == "en"

    def test_deleted_node_cannot_be_mutated(self):
        engine = _engine()
        book = engine.children(_library(engine))[0]
        engine.delete_subtree(book)
        with pytest.raises(UpdateError):
            engine.delete_subtree(book)
        with pytest.raises(UpdateError):
            engine.insert_child(book, 0, name=QName("", "x"))
