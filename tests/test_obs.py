"""Tests for the observability layer: metrics registry, span tracing,
query EXPLAIN, and the instrumented hot paths.

The headline invariant re-asserted here through the metrics registry:
Proposition 1 — the Sedna numbering scheme's relabel counter stays at
an explicit zero across randomized update workloads, while the Dewey
and interval baselines' counters do not.
"""

import pytest

from repro import obs
from repro.numbering import (
    DeweyBaseline,
    IntervalBaseline,
    SednaAdapter,
    UpdateWorkload,
)
from repro.obs import explain
from repro.obs.explain import collect
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Tracer
from repro.query import StorageQueryEngine, clear_parse_cache
from repro.storage import StorageEngine
from repro.workloads import make_library_document
from repro.xquery.evaluator import execute_values


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts diagnostics-off with zeroed instruments;
    telemetry (production default: on) is restored afterwards."""
    obs.disable()
    obs.set_slow_query_threshold(None)
    obs.reset()
    yield
    obs.disable()
    obs.set_telemetry(True)
    obs.set_slow_query_threshold(None)
    obs.reset()


def _library_queries(books=10):
    engine = StorageEngine()
    engine.load_document(
        make_library_document(books=books, papers=books, seed=books))
    return StorageQueryEngine(engine)


# ----------------------------------------------------------------------
# Metrics registry


class TestMetricsRegistry:
    def test_counter_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(4)
        assert registry.counter("a.b") is counter
        assert registry.value("a.b") == 5

    def test_type_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_gauge_and_histogram(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.add(-1)
        histogram = registry.histogram("latency")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert gauge.value == 2
        assert histogram.summary() == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
            "p50": 2.0, "p95": 3.0, "p99": 3.0}

    def test_snapshot_is_sorted_and_expands_histograms(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.histogram("a").observe(1.0)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "z"]
        assert snapshot["a"]["count"] == 1
        assert snapshot["z"] == 1

    def test_reset_keeps_registrations(self):
        """A counter materialized at zero must stay visible — that is
        how the Proposition 1 zero shows up in snapshots."""
        registry = MetricsRegistry()
        registry.counter("relabels").inc(7)
        registry.reset()
        assert "relabels" in registry
        assert registry.snapshot() == {"relabels": 0}

    def test_clear_forgets_instruments(self):
        registry = MetricsRegistry()
        registry.counter("x")
        registry.clear()
        assert len(registry) == 0
        assert registry.value("x", default=-1) == -1


# ----------------------------------------------------------------------
# Span tracing


def _fake_clock():
    """A deterministic clock: 0.0, 1.0, 2.0, ... per call."""
    ticks = iter(range(1000))
    return lambda: float(next(ticks))


class TestTracer:
    def test_nested_spans_with_injected_clock(self):
        tracer = Tracer(clock=_fake_clock())
        tracer.enabled = True
        # Clock calls: outer start=0, armed at 1; inner start=2, armed
        # at 3; inner exit at 4 (elapsed 1); outer exit at 5 (elapsed 4).
        with tracer.span("outer"):
            with tracer.span("inner", kind="leaf"):
                pass
        outer, inner = tracer.records
        assert (outer.name, outer.depth) == ("outer", 0)
        assert (inner.name, inner.depth) == ("inner", 1)
        assert inner.elapsed == 1.0
        assert outer.elapsed == 4.0
        assert inner.tags == {"kind": "leaf"}
        assert list(tracer.iter_roots()) == [outer]

    def test_event_records_zero_duration(self):
        tracer = Tracer(clock=_fake_clock())
        tracer.enabled = True
        tracer.event("tick", site="here")
        (record,) = tracer.find("tick")
        assert record.elapsed == 0.0
        assert record.tags == {"site": "here"}

    def test_disabled_span_records_nothing(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("ignored"):
            pass
        tracer.event("also ignored")
        assert tracer.records == []
        assert tracer.dump() == "(no spans recorded)"

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(clock=_fake_clock(), limit=3)
        tracer.enabled = True
        for index in range(5):
            tracer.event(f"e{index}")
        assert [r.name for r in tracer.records] == ["e2", "e3", "e4"]
        assert tracer.dropped == 2

    def test_dump_is_indented_and_tagged(self):
        tracer = Tracer(clock=_fake_clock())
        tracer.enabled = True
        with tracer.span("outer"):
            tracer.event("inner", item="4")
        dump = tracer.dump()
        lines = dump.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "item=4" in lines[1]

    def test_reset_clears_records_and_depth(self):
        tracer = Tracer(clock=_fake_clock())
        tracer.enabled = True
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.records == []
        with tracer.span("b"):
            pass
        assert tracer.records[0].depth == 0


# ----------------------------------------------------------------------
# The master switch


class TestSwitch:
    def test_enable_disable_round_trip(self):
        assert not obs.is_enabled()
        obs.enable()
        assert obs.is_enabled()
        assert obs.TRACER.enabled
        obs.disable()
        assert not obs.is_enabled()
        assert not obs.TRACER.enabled

    def test_enable_without_tracing(self):
        obs.enable(tracing=False)
        assert obs.is_enabled()
        assert not obs.TRACER.enabled

    def test_disabled_paths_do_not_count(self):
        """With both tiers off, the guarded instrumentation must not
        bump any registry counter (the <5% overhead budget assumes
        exactly one attribute test on the disabled path)."""
        obs.set_telemetry(False)
        queries = _library_queries()
        queries.evaluate("/library/book/title")
        for name in ("storage.descriptors.allocated",
                     "storage.blocks.allocated",
                     "numbering.labels.allocated",
                     "query.evaluations",
                     "query.plan.compiles"):
            assert obs.REGISTRY.value(name) == 0
        assert len(obs.EXPLAINS) == 0
        assert obs.TRACER.records == []


# ----------------------------------------------------------------------
# Instrumented hot paths


class TestInstrumentedPaths:
    def test_storage_load_counts_descriptors_and_labels(self):
        obs.enable()
        queries = _library_queries()
        engine = queries.engine
        allocated = obs.REGISTRY.value("storage.descriptors.allocated")
        assert allocated == engine.node_count()
        assert obs.REGISTRY.value("numbering.labels.allocated") \
            == engine.node_count()
        assert obs.REGISTRY.value("storage.blocks.allocated") \
            == engine.block_count()
        assert obs.REGISTRY.value("storage.relabels") == 0

    def test_block_splits_are_counted(self):
        obs.enable()
        engine = StorageEngine(block_capacity=2)
        engine.load_document(make_library_document(books=5, papers=0,
                                                   seed=1))
        root = engine.children(engine.document)[0]
        for index in range(8):
            engine.insert_child(root, 0, text=f"t{index}")
        assert engine.split_count > 0
        assert obs.REGISTRY.value("storage.blocks.split") \
            == engine.split_count
        assert obs.REGISTRY.value("storage.inserts") == 8
        # Inserting never relabeled anything (Proposition 1).
        assert obs.REGISTRY.value("storage.relabels") == 0

    def test_explain_records_cold_then_warm(self):
        obs.enable()
        queries = _library_queries()
        queries.evaluate("/library/book/title")
        cold = obs.EXPLAINS.last()
        queries.evaluate("/library/book/title")
        warm = obs.EXPLAINS.last()
        assert cold.path == "/library/book/title"
        assert cold.strategy == "scan"
        assert (cold.plan_cache, warm.plan_cache) == ("miss", "hit")
        assert cold.nodes_returned == 10
        assert cold.nodes_visited >= cold.nodes_returned
        assert warm.elapsed_s >= 0.0
        assert obs.REGISTRY.value("query.evaluations") == 2
        assert obs.REGISTRY.value("query.plan.compiles") == 1
        assert obs.REGISTRY.value("query.plan_cache.hits") == 1

    def test_explain_reports_structural_pruning(self):
        obs.enable()
        queries = _library_queries()
        queries.evaluate("/library/book[@year]/title")
        record = obs.EXPLAINS.last()
        assert record.strategy == "empty"
        assert record.pruned_schema_nodes == 1
        assert record.nodes_visited == 0
        assert obs.REGISTRY.value("query.plan.pruned_schema_nodes") == 1

    def test_explain_counts_axis_steps_on_hybrid_plans(self):
        obs.enable()
        queries = _library_queries()
        path = "/library/book[title]/author"
        result = queries.evaluate(path)
        record = obs.EXPLAINS.last()
        assert record.strategy == "hybrid"
        assert record.axis_steps >= 1
        assert record.nodes_returned == len(result) > 0

    def test_collect_stacks_and_restores(self):
        with collect("outer") as outer:
            assert explain.ACTIVE is outer
            with collect("inner") as inner:
                assert explain.ACTIVE is inner
            assert explain.ACTIVE is outer
        assert explain.ACTIVE is None

    def test_parse_cache_counters_live_in_the_registry(self):
        """Satellite: one counter mechanism — the CacheStats view and
        the registry snapshot read the same instruments."""
        from repro.query.cache import cached_parse_path, \
            parse_cache_stats
        clear_parse_cache()
        cached_parse_path("/library/book")
        cached_parse_path("/library/book")
        stats = parse_cache_stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert obs.REGISTRY.value("query.parse_cache.hits") == 1
        assert obs.REGISTRY.value("query.parse_cache.misses") == 1
        clear_parse_cache()
        assert obs.REGISTRY.value("query.parse_cache.hits") == 0

    def test_conformance_checks_and_violations_are_counted(self):
        from repro.algebra import check_conformance
        from repro.mapping import document_to_tree
        from repro.schema import parse_schema
        from repro.workloads.fixtures import LIBRARY_SCHEMA
        obs.enable()
        schema = parse_schema(LIBRARY_SCHEMA)
        document = make_library_document(books=2, papers=1, seed=2)
        tree = document_to_tree(document, schema)
        assert check_conformance(tree, schema) == []
        assert obs.REGISTRY.value("conformance.documents_checked") == 1
        assert obs.REGISTRY.value("conformance.checks.item1") == 1
        assert obs.REGISTRY.value("conformance.checks.item4") > 0
        assert obs.REGISTRY.value("conformance.checks.item7") == 1
        assert obs.REGISTRY.value("conformance.documents_failed") == 0
        # Break the tree: drop a required child.
        from repro.algebra.state import StateAlgebra
        book = tree.document_element().children()[1]  # 1-based s[i]
        StateAlgebra().remove_child(book, book.children()[1])
        violations = check_conformance(tree, schema)
        assert violations
        assert obs.REGISTRY.value("conformance.documents_failed") == 1
        item = violations[0].item.split(".", 1)[0]
        assert obs.REGISTRY.value(
            f"conformance.violations.item{item}") >= 1
        assert obs.TRACER.find("conformance.violation")

    def test_flwor_clauses_are_traced(self):
        obs.enable()
        queries = _library_queries()
        values = execute_values(
            queries.store,
            'for $b in /library/book where $b/title '
            'order by $b/title return $b/title')
        assert len(values) == 10
        for name in ("xquery.flwor", "xquery.flwor.bind",
                     "xquery.flwor.where", "xquery.flwor.order",
                     "xquery.flwor.return"):
            assert obs.TRACER.find(name), f"missing span {name}"
        (where,) = obs.TRACER.find("xquery.flwor.where")
        assert where.tags["tuples"] == 10
        assert obs.REGISTRY.value("xquery.flwor.evaluations") == 1
        assert obs.REGISTRY.value("xquery.flwor.tuples") == 10

    def test_flwor_untraced_path_still_works_when_disabled(self):
        queries = _library_queries()
        values = execute_values(
            queries.store,
            'for $b in /library/book return $b/title')
        assert len(values) == 10
        assert obs.TRACER.records == []


# ----------------------------------------------------------------------
# Proposition 1 through the registry


class TestCompiledExecutionCounters:
    """Contract of the closure-chain counters and EXPLAIN fields."""

    def test_lowering_is_counted_in_compile_ns(self):
        obs.enable()
        queries = _library_queries()
        queries.evaluate("/library/book/title")
        assert obs.REGISTRY.value("query.compile.ns") > 0
        assert obs.REGISTRY.value("query.plans.lowered") == 1
        # The warm run reuses the executor: no further lowering cost.
        lowered_ns = obs.REGISTRY.value("query.compile.ns")
        queries.evaluate("/library/book/title")
        assert obs.REGISTRY.value("query.compile.ns") == lowered_ns
        assert obs.REGISTRY.value("query.plans.lowered") == 1

    def test_compiled_hits_counter_tracks_chain_executions(self):
        obs.enable()
        queries = _library_queries()
        for _ in range(3):
            queries.evaluate("/library/book/title")
        assert obs.REGISTRY.value("query.exec.compiled.hits") == 3

    def test_explain_reports_the_stage_chain(self):
        obs.enable()
        queries = _library_queries()
        queries.evaluate("/library/book[@id]/title")
        record = obs.EXPLAINS.last()
        assert record.strategy in ("hybrid", "empty")
        assert record.compiled is True
        names = [name for name, _ns in record.stage_ns]
        assert names, "compiled run must report its stages"
        assert all(elapsed >= 0 for _name, elapsed in record.stage_ns)
        payload = record.as_dict()
        assert payload["compiled"] is True
        assert payload["stage_ns"] == [[name, elapsed]
                                       for name, elapsed
                                       in record.stage_ns]
        rendered = record.render()
        assert "compiled:           yes" in rendered
        assert f"stage {names[0]}" in rendered

    def test_naive_plans_lower_to_a_navigate_closure(self):
        obs.enable()
        queries = _library_queries()
        queries.evaluate("//book[1]")
        record = obs.EXPLAINS.last()
        assert record.strategy == "naive"
        assert record.compiled is True
        assert record.stage_ns[0][0] == "navigate"

    def test_interpreted_explains_stay_marked_uncompiled(self):
        with collect("manual") as record:
            pass
        assert record.compiled is False
        assert record.stage_ns == []
        assert record.as_dict()["compiled"] is False
        assert "compiled:           no" in record.render()


class TestProposition1Counters:
    def test_sedna_relabel_counter_stays_zero_across_workloads(self):
        obs.enable()
        for seed in (0, 1, 2):
            stats = UpdateWorkload(operations=120, seed=seed).run(
                SednaAdapter)
            assert stats.relabels == 0
        assert obs.REGISTRY.value("numbering.relabels.sedna") == 0
        # The counter is materialized, not merely absent.
        assert "numbering.relabels.sedna" in obs.REGISTRY

    def test_baseline_relabel_counters_mirror_the_schemes(self):
        obs.enable()
        dewey = UpdateWorkload(operations=120, seed=0).run(DeweyBaseline)
        interval = UpdateWorkload(operations=120, seed=0).run(
            IntervalBaseline)
        assert dewey.relabels > 0
        assert interval.relabels > 0
        assert obs.REGISTRY.value("numbering.relabels.dewey") \
            == dewey.relabels
        assert obs.REGISTRY.value("numbering.relabels.interval") \
            == interval.relabels
