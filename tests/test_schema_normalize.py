"""Tests for canonical forms: every rewrite preserves the language."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.content import DerivativeMatcher, compile_group
from repro.schema import (
    CombinationFactor,
    ComplexContentType,
    ElementDeclaration,
    GroupDefinition,
    RepetitionFactor,
    TypeName,
    UNBOUNDED,
    normalize_group,
    normalize_schema,
    parse_schema,
    write_schema,
)
from repro.schema.normalize import _fuse_bounds
from repro.xmlio import xsd
from repro.workloads.fixtures import EXAMPLE_7_SCHEMA, wrap_in_schema


def _eld(name, minimum=1, maximum=1):
    return ElementDeclaration(name, TypeName(xsd("string")),
                              RepetitionFactor(minimum, maximum))


def _grp(members, combination=CombinationFactor.SEQUENCE,
         minimum=1, maximum=1):
    return GroupDefinition(tuple(members), combination,
                           RepetitionFactor(minimum, maximum))


def _language_equal(a: GroupDefinition, b: GroupDefinition,
                    alphabet=("a", "b", "c"), max_len=5) -> bool:
    matcher_a = DerivativeMatcher(compile_group(a))
    matcher_b = DerivativeMatcher(compile_group(b))
    for length in range(max_len + 1):
        for word in itertools.product(alphabet, repeat=length):
            if matcher_a.matches(word) != matcher_b.matches(word):
                return False
    return True


class TestFuseBounds:
    @pytest.mark.parametrize("inner,outer,expected", [
        ((1, 1), (2, 5), (2, 5)),
        ((0, 1), (0, UNBOUNDED), (0, UNBOUNDED)),
        ((2, 3), (1, 1), (2, 3)),
        ((2, 3), (2, 2), (4, 6)),          # p == q: single interval
        ((1, UNBOUNDED), (3, 5), (3, UNBOUNDED)),
        ((0, 2), (0, 3), (0, 6)),
        ((1, 2), (1, UNBOUNDED), (1, UNBOUNDED)),
    ])
    def test_sound_fusions(self, inner, outer, expected):
        result = _fuse_bounds(RepetitionFactor(*inner),
                              RepetitionFactor(*outer))
        assert result is not None
        assert result.as_pair() == expected

    @pytest.mark.parametrize("inner,outer", [
        ((2, 2), (1, 2)),    # {2,2}{1,2} = {2} u {4} — gap at 3
        ((3, 4), (1, 3)),    # gap between 4 and 6
        ((2, 3), (0, 2)),    # 0 then 2..6: gap at 1
    ])
    def test_unsound_fusions_rejected(self, inner, outer):
        assert _fuse_bounds(RepetitionFactor(*inner),
                            RepetitionFactor(*outer)) is None

    @given(st.integers(0, 3), st.integers(0, 3),
           st.integers(0, 3), st.integers(0, 3))
    @settings(max_examples=200, deadline=None)
    def test_fusion_matches_brute_force(self, m, dn, p, dq):
        n, q = m + dn, p + dq
        fused = _fuse_bounds(RepetitionFactor(m, n),
                             RepetitionFactor(p, q))
        counts = set()
        for k in range(p, q + 1):
            for total in range(k * m, k * n + 1):
                counts.add(total)
        if fused is None:
            # must NOT be a contiguous interval
            if counts:
                low, high = min(counts), max(counts)
                assert set(range(low, high + 1)) != counts
        else:
            low = fused.minimum
            high = fused.maximum
            assert counts == set(range(low, int(high) + 1)) or \
                (not counts and low == 0 and high == 0)


class TestRewriteRules:
    def test_unwrap_singleton_group(self):
        inner = _grp([_eld("A"), _eld("B")])
        outer = _grp([inner])
        normalized = normalize_group(outer)
        assert [m.name for m in normalized.members] == ["A", "B"]

    def test_flatten_nested_sequence(self):
        nested = _grp([_eld("B"), _eld("C")])
        outer = _grp([_eld("A"), nested, _eld("D")])
        normalized = normalize_group(outer)
        assert [m.name for m in normalized.members] == \
            ["A", "B", "C", "D"]

    def test_flatten_respects_name_distinctness(self):
        nested = _grp([_eld("A")])  # would collide with sibling A
        outer = _grp([_eld("A"), nested])
        normalized = normalize_group(outer)
        # the nested group must survive (as a group), not be spliced
        assert any(isinstance(m, GroupDefinition)
                   for m in normalized.members)
        assert _language_equal(outer, normalized)

    def test_fuse_element_repetition(self):
        inner = _grp([_eld("A", 0, 2)], minimum=0, maximum=3)
        outer = _grp([inner])
        normalized = normalize_group(outer)
        (member,) = normalized.members
        assert isinstance(member, ElementDeclaration)
        assert member.repetition.as_pair() == (0, 6)

    def test_prune_unusable_member(self):
        outer = _grp([_eld("A"), _eld("Gone", 0, 0)])
        normalized = normalize_group(outer)
        assert [m.name for m in normalized.members] == ["A"]

    def test_epsilon_not_pruned_from_choice(self):
        eps = _grp([])
        choice = _grp([_eld("A"), eps], CombinationFactor.CHOICE)
        normalized = normalize_group(choice)
        assert _language_equal(choice, normalized)
        matcher = DerivativeMatcher(compile_group(normalized))
        assert matcher.matches([])  # the ε alternative survives

    def test_single_alternative_choice_becomes_sequence(self):
        choice = _grp([_eld("A")], CombinationFactor.CHOICE)
        assert normalize_group(choice).combination is \
            CombinationFactor.SEQUENCE

    def test_already_normal_is_fixed_point(self):
        group = _grp([_eld("A"), _eld("B", 0, UNBOUNDED)])
        assert normalize_group(group) == group


# Random group strategy (reuses the shapes of the matcher tests).
_leaf = st.builds(
    _eld, st.sampled_from(["a", "b", "c"]),
    st.integers(0, 2),
    st.one_of(st.integers(2, 3), st.just(UNBOUNDED)))


@st.composite
def _distinct(draw, inner, max_size=3):
    members, seen = [], set()
    for member in draw(st.lists(inner, min_size=1, max_size=max_size)):
        if isinstance(member, ElementDeclaration):
            if member.name in seen:
                continue
            seen.add(member.name)
        members.append(member)
    return members


_flat_group = st.builds(
    _grp, _distinct(_leaf),
    st.sampled_from(list(CombinationFactor)),
    st.integers(0, 2), st.integers(2, 3))

_nested_group = st.builds(
    _grp, _distinct(st.one_of(_leaf, _flat_group)),
    st.sampled_from(list(CombinationFactor)),
    st.integers(0, 1), st.integers(1, 2))


class TestLanguagePreservation:
    @settings(max_examples=120, deadline=None)
    @given(st.one_of(_flat_group, _nested_group))
    def test_normalization_preserves_language(self, group):
        normalized = normalize_group(group)
        assert _language_equal(group, normalized, max_len=4)

    @settings(max_examples=60, deadline=None)
    @given(_nested_group)
    def test_normalization_is_idempotent(self, group):
        once = normalize_group(group)
        assert normalize_group(once) == once


class TestSchemaNormalization:
    def test_normalize_whole_schema(self):
        schema = parse_schema(wrap_in_schema("""
          <xsd:element name="R"><xsd:complexType>
            <xsd:sequence>
              <xsd:sequence>
                <xsd:element name="A" type="xsd:string"/>
              </xsd:sequence>
              <xsd:element name="B" type="xsd:string"/>
            </xsd:sequence>
          </xsd:complexType></xsd:element>"""))
        normalized = normalize_schema(schema)
        group = normalized.root_element.type.group
        assert group.is_flat
        assert [m.name for m in group.members] == ["A", "B"]

    def test_normalized_schema_still_serializes(self):
        schema = normalize_schema(parse_schema(EXAMPLE_7_SCHEMA))
        assert parse_schema(write_schema(schema)) is not None

    def test_normalization_recurses_into_named_types(self):
        schema = parse_schema(wrap_in_schema("""
          <xsd:complexType name="T">
            <xsd:sequence>
              <xsd:sequence>
                <xsd:element name="X" type="xsd:string"/>
              </xsd:sequence>
            </xsd:sequence>
          </xsd:complexType>
          <xsd:element name="R" type="T"/>"""))
        normalized = normalize_schema(schema)
        (definition,) = normalized.complex_types.values()
        assert definition.group.is_flat

    def test_validation_agrees_after_normalization(self):
        from repro.algebra import InstanceBuilder, check_conformance
        from repro.mapping import document_to_tree, tree_to_document
        from repro.xmlio import parse_document, serialize_document
        schema = parse_schema(wrap_in_schema("""
          <xsd:element name="R"><xsd:complexType>
            <xsd:sequence>
              <xsd:sequence minOccurs="1" maxOccurs="1">
                <xsd:element name="A" type="xsd:string"
                             minOccurs="0" maxOccurs="4"/>
              </xsd:sequence>
              <xsd:element name="B" type="xsd:string"/>
            </xsd:sequence>
          </xsd:complexType></xsd:element>"""))
        normalized = normalize_schema(schema)
        for seed in range(5):
            tree = InstanceBuilder(schema, seed=seed).build()
            text = serialize_document(tree_to_document(tree))
            re_tree = document_to_tree(parse_document(text), normalized)
            assert check_conformance(re_tree, normalized) == []
