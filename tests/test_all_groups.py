"""Tests for xsd:all groups (the footnote-2 'all option definition')."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import InstanceBuilder, check_conformance
from repro.content import (
    AllParticle,
    ContentModel,
    DerivativeMatcher,
    GlushkovAutomaton,
    compile_group,
)
from repro.errors import SchemaError, ValidationError
from repro.mapping import content_equal, document_to_tree, tree_to_document
from repro.schema import (
    AllGroup,
    ElementDeclaration,
    RepetitionFactor,
    TypeName,
    parse_schema,
    write_schema,
)
from repro.xmlio import parse_document, serialize_document, xsd
from repro.workloads.fixtures import wrap_in_schema

ALL_SCHEMA = wrap_in_schema("""
  <xsd:element name="Address"><xsd:complexType>
    <xsd:all>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
      <xsd:element name="zip" type="xsd:string" minOccurs="0"/>
    </xsd:all>
  </xsd:complexType></xsd:element>""")


def _eld(name, minimum=1, maximum=1):
    return ElementDeclaration(name, TypeName(xsd("string")),
                              RepetitionFactor(minimum, maximum))


class TestAstConstraints:
    def test_basic_all_group(self):
        group = AllGroup((_eld("a"), _eld("b", 0, 1)))
        assert not group.empty_content
        assert group.is_flat
        assert [e.name for e in group.element_declarations()] == \
            ["a", "b"]

    def test_repeatable_member_rejected(self):
        with pytest.raises(SchemaError):
            AllGroup((_eld("a", 1, 2),))

    def test_repeatable_group_rejected(self):
        with pytest.raises(SchemaError):
            AllGroup((_eld("a"),), RepetitionFactor(1, 2))

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            AllGroup((_eld("a"), _eld("a")))

    def test_optional_all_group_allowed(self):
        group = AllGroup((_eld("a"),), RepetitionFactor(0, 1))
        assert group.repetition.minimum == 0


class TestMatching:
    def _model(self, *members, minimum=1):
        return ContentModel(AllGroup(tuple(members),
                                     RepetitionFactor(minimum, 1)))

    def test_any_permutation_accepted(self):
        model = self._model(_eld("a"), _eld("b"), _eld("c"))
        for permutation in itertools.permutations("abc"):
            assert model.matches(permutation), permutation

    def test_missing_required_rejected(self):
        model = self._model(_eld("a"), _eld("b"))
        assert not model.matches(["a"])
        assert not model.matches([])

    def test_duplicate_occurrence_rejected(self):
        model = self._model(_eld("a"), _eld("b"))
        assert not model.matches(["a", "a", "b"])

    def test_optional_member(self):
        model = self._model(_eld("a"), _eld("b", 0, 1))
        assert model.matches(["a"])
        assert model.matches(["b", "a"])
        assert not model.matches(["b"])

    def test_optional_whole_group(self):
        model = self._model(_eld("a"), minimum=0)
        assert model.matches([])
        assert model.matches(["a"])

    def test_unknown_name_rejected(self):
        model = self._model(_eld("a"))
        assert not model.matches(["z"])

    def test_particle_shape(self):
        particle = compile_group(AllGroup((_eld("a"), _eld("b", 0, 1))))
        assert isinstance(particle, AllParticle)
        assert particle.items == (("a", True), ("b", False))

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.sampled_from("abc"), max_size=5))
    def test_derivative_agrees_with_glushkov(self, word):
        group = AllGroup((_eld("a"), _eld("b", 0, 1), _eld("c")))
        particle = compile_group(group)
        derivative = DerivativeMatcher(particle).matches(word)
        glushkov = GlushkovAutomaton(particle).matches(word)
        assert derivative == glushkov


class TestParserAndWriter:
    def test_parse_all_group(self):
        schema = parse_schema(ALL_SCHEMA)
        group = schema.root_element.type.group
        assert isinstance(group, AllGroup)
        assert [m.name for m in group.members] == \
            ["street", "city", "zip"]
        assert group.members[2].repetition.minimum == 0

    def test_write_parse_roundtrip(self):
        schema = parse_schema(ALL_SCHEMA)
        again = parse_schema(write_schema(schema))
        group = again.root_element.type.group
        assert isinstance(group, AllGroup)
        assert [m.name for m in group.members] == \
            ["street", "city", "zip"]

    def test_non_element_member_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema(wrap_in_schema("""
              <xsd:element name="R"><xsd:complexType>
                <xsd:all><xsd:sequence/></xsd:all>
              </xsd:complexType></xsd:element>"""))


class TestValidationWithAll:
    @pytest.mark.parametrize("body", [
        "<street>s</street><city>c</city>",
        "<city>c</city><street>s</street>",
        "<zip>z</zip><street>s</street><city>c</city>",
    ])
    def test_valid_orders(self, body):
        schema = parse_schema(ALL_SCHEMA)
        tree = document_to_tree(
            parse_document(f"<Address>{body}</Address>"), schema)
        assert check_conformance(tree, schema) == []

    @pytest.mark.parametrize("body", [
        "<street>s</street>",                       # city missing
        "<street>s</street><city>c</city><city>d</city>",  # repeated
        "<street>s</street><city>c</city><country>x</country>",
    ])
    def test_invalid_contents(self, body):
        schema = parse_schema(ALL_SCHEMA)
        with pytest.raises(ValidationError):
            document_to_tree(
                parse_document(f"<Address>{body}</Address>"), schema)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**9))
    def test_builder_and_roundtrip(self, seed):
        schema = parse_schema(ALL_SCHEMA)
        tree = InstanceBuilder(schema, seed=seed).build()
        assert check_conformance(tree, schema) == []
        document = tree_to_document(tree)
        tree2 = document_to_tree(
            parse_document(serialize_document(document)), schema)
        assert content_equal(document, tree_to_document(tree2))


class TestLintWithAll:
    def test_all_group_lints_clean(self):
        from repro.schema import lint_schema
        assert lint_schema(parse_schema(ALL_SCHEMA)) == []
