"""Crash-matrix tests: fault injection, atomic checkpoints, recovery.

One workload, crashed at every named fault point (and under seeded
probabilistic plans), must always recover to a §9-invariant-clean,
§6.2-conformant engine holding exactly the committed transactions —
with zero relabels (Proposition 1 across the crash).  The matrix runs
against every shipped :class:`StorageBackend` — the crash/recovery
contract is backend-independent.
"""

import shutil

import pytest

from repro import obs
from repro.schema import parse_schema
from repro.storage import (
    CRASH_POINTS,
    SESSION_CRASH_POINTS,
    CrashError,
    FileBackend,
    FaultPlan,
    MemoryBackend,
    SqliteBackend,
    StorageEngine,
    TransactionManager,
    WriteAheadLog,
    checkpoint,
    recover,
)
from repro.storage import faults
from repro.storage.recovery import RecoveryError
from repro.workloads.bookstore import (
    BOOKS_NAMESPACE,
    make_bookstore_document,
)
from repro.workloads.fixtures import EXAMPLE_7_SCHEMA
from repro.xmlio.qname import QName


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    yield
    faults.clear()


@pytest.fixture(scope="module")
def schema():
    return parse_schema(EXAMPLE_7_SCHEMA)


def make_backend(name, tmp_path):
    if name == "file":
        return FileBackend(tmp_path / "store.img",
                           wal_path=tmp_path / "store.wal")
    if name == "sqlite":
        return SqliteBackend(tmp_path / "store.db")
    return MemoryBackend()


@pytest.fixture(params=["file", "sqlite", "memory"])
def backend(request, tmp_path):
    return make_backend(request.param, tmp_path)


def _fresh_engine():
    engine = StorageEngine(block_capacity=4)
    engine.load_document(make_bookstore_document(books=6, seed=1))
    # An unlogged (pre-manager) value index: every scenario then
    # exercises incremental maintenance, and recovery re-installs the
    # definition from the image and reconciles the contents.
    engine.create_index("BookStore/Book/Date", value_type="integer")
    return engine


def _titles(engine):
    store = engine.children(engine.document)[0]
    return [engine.string_value(engine.children(book)[0])
            for book in engine.children(store)]


def _add_book(engine, manager, index, tag):
    """One committed transaction inserting a complete Book."""
    store = engine.children(engine.document)[0]
    with manager.transaction():
        book = engine.insert_child(store, index,
                                   name=QName(BOOKS_NAMESPACE, "Book"))
        fields = (("Title", f"T{tag}"), ("Author", f"A{tag}"),
                  ("Date", "1999"), ("ISBN", f"i-{tag}"),
                  ("Publisher", "P"))
        for i, (name, text) in enumerate(fields):
            leaf = engine.insert_child(
                book, i, name=QName(BOOKS_NAMESPACE, name))
            engine.insert_child(leaf, 0, text=text)


def _run_scenario(backend, plan=None):
    """The workload under test; returns what survived before a crash.

    Steps (each an explicit transaction over a 6-book store carrying
    a Date value index):
    A: insert a full Book mid-order (forces block splits at capacity
       4), B: delete the first Book, then a second checkpoint, C:
       append a Book and CREATE a second (logged) index — its build
       pass is where ``index.rebuild`` fires, D: begin inserting a
       Book and never commit.
    The fault *plan* is installed only after the initial checkpoint.
    The returned ``expected`` title list reflects exactly the
    transactions whose COMMIT made it to the log.
    """
    engine = _fresh_engine()
    initial = _titles(engine)
    wal = backend.open_wal()
    manager = TransactionManager(engine, wal)
    checkpoint(engine, backend, wal=wal)

    expected = list(initial)
    crashed_at = None
    if plan is not None:
        faults.install(plan)
    try:
        _add_book(engine, manager, 2, "A")
        expected.insert(2, "TA")
        store = engine.children(engine.document)[0]
        with manager.transaction():
            engine.delete_subtree(engine.children(store)[0])
        expected.pop(0)
        checkpoint(engine, backend, wal=wal)
        _add_book(engine, manager, len(expected), "C")
        expected.append("TC")
        engine.create_index("BookStore/Book/ISBN")
        manager.begin()
        store = engine.children(engine.document)[0]
        book = engine.insert_child(store, 0,
                                   name=QName(BOOKS_NAMESPACE, "Book"))
        title = engine.insert_child(book, 0,
                                    name=QName(BOOKS_NAMESPACE, "Title"))
        engine.insert_child(title, 0, text="TD")
        # ...and the process dies before txn D ever commits.
    except CrashError as crash:
        crashed_at = crash.point
    finally:
        faults.clear()
    return expected, crashed_at


def _assert_recovered(backend, expected, schema):
    result = recover(backend, schema=schema, strict=True)
    assert result.backend == backend.name
    assert result.snapshot_version is not None
    engine = result.engine
    engine.check_invariants()
    assert result.relabels == 0
    assert _titles(engine) == expected
    assert "TD" not in _titles(engine)  # uncommitted txn D never lands
    # The Date index definition rides in the checkpoint image; its
    # incrementally maintained contents were reconciled against a
    # from-scratch rebuild inside recover().
    assert result.index_definitions >= 1
    assert result.indexes_verified == result.index_definitions
    assert engine.indexes.verify_consistency() >= 1
    return result


class TestCrashMatrix:
    # The storage workload never opens sessions, so the session-layer
    # points cannot fire here; tests/test_server_faults.py runs the
    # session crash matrix over exactly SESSION_CRASH_POINTS.
    @pytest.mark.parametrize(
        "point", sorted(CRASH_POINTS - SESSION_CRASH_POINTS))
    def test_crash_at_every_point_recovers(self, backend, schema,
                                           point):
        plan = FaultPlan()
        plan.crash_at(point)
        expected, crashed_at = _run_scenario(backend, plan)
        assert crashed_at == point, \
            f"scenario never reached fault point {point}"
        _assert_recovered(backend, expected, schema)

    @pytest.mark.parametrize("point,hit", [
        ("wal.append", 5), ("wal.append", 12), ("wal.fsync", 9),
        ("wal.commit", 2), ("block.split", 2), ("descriptor.unlink", 8),
        ("index.update", 7), ("index.update", 20),
    ])
    def test_crash_at_deeper_hits(self, backend, schema, point, hit):
        plan = FaultPlan()
        plan.crash_at(point, hit=hit)
        expected, crashed_at = _run_scenario(backend, plan)
        assert crashed_at == point
        _assert_recovered(backend, expected, schema)

    @pytest.mark.parametrize("seed", range(10))
    def test_probabilistic_crash_sweep(self, backend, schema, seed):
        plan = FaultPlan.probabilistic(seed=seed, rate=0.05)
        expected, _crashed_at = _run_scenario(backend, plan)
        # Whether or not (and wherever) the plan struck, recovery must
        # reproduce exactly the committed prefix.
        _assert_recovered(backend, expected, schema)

    def test_clean_run_recovers_committed_state(self, backend, schema):
        expected, crashed_at = _run_scenario(backend)
        assert crashed_at is None
        result = _assert_recovered(backend, expected, schema)
        assert result.discarded_txns  # txn D was begun, never committed
        # The committed CREATE INDEX (ISBN) sits past the second
        # checkpoint's horizon, so recovery replayed the DDL record.
        assert result.index_definitions == 2

    def test_proposition_1_counters_stay_zero(self, backend, schema):
        obs.reset()
        obs.enable()
        try:
            plan = FaultPlan()
            plan.crash_at("descriptor.unlink")
            expected, _ = _run_scenario(backend, plan)
            _assert_recovered(backend, expected, schema)
            snapshot = obs.snapshot()
            assert snapshot["numbering.relabels.sedna"] == 0
            assert snapshot["storage.relabels"] == 0
            assert snapshot["recovery.replayed"] > 0
        finally:
            obs.disable()
            obs.reset()


class TestIndexFaultPoints:
    """Crashes inside secondary-index maintenance or build passes.

    Index contents are derived state, so the recovery obligation is
    bisimulation: whatever the incremental hooks were doing when the
    process died, the recovered indexes must be indistinguishable from
    a from-scratch rebuild over the recovered block lists."""

    @pytest.mark.parametrize("point", ["index.update", "index.rebuild"])
    def test_recovered_indexes_bisimulate_rebuild(self, backend,
                                                  schema, point):
        plan = FaultPlan()
        plan.crash_at(point)
        expected, crashed_at = _run_scenario(backend, plan)
        assert crashed_at == point
        result = _assert_recovered(backend, expected, schema)
        engine = result.engine
        maintained = engine.indexes.snapshot()
        engine.indexes.rebuild_all()
        assert engine.indexes.snapshot() == maintained
        assert result.relabels == 0

    def test_crash_in_logged_build_discards_the_ddl(self, backend,
                                                    schema):
        """``index.rebuild`` fires inside the logged CREATE INDEX on
        ISBN — its COMMIT never lands, so recovery discards the DDL
        and only the image-carried Date index survives."""
        plan = FaultPlan()
        plan.crash_at("index.rebuild")
        expected, crashed_at = _run_scenario(backend, plan)
        assert crashed_at == "index.rebuild"
        result = _assert_recovered(backend, expected, schema)
        assert result.index_definitions == 1
        assert [d.path for d in result.engine.indexes.definitions()] \
            == ["BookStore/Book/Date"]

    def test_crash_in_maintenance_discards_the_txn(self, backend,
                                                   schema):
        """``index.update`` first fires inside txn A's first insert;
        the whole transaction is discarded and the recovered Date
        index reflects only the checkpointed six books."""
        plan = FaultPlan()
        plan.crash_at("index.update")
        expected, crashed_at = _run_scenario(backend, plan)
        assert crashed_at == "index.update"
        assert "TA" not in expected
        result = _assert_recovered(backend, expected, schema)
        date_index = result.engine.indexes.get("BookStore/Book/Date")
        assert date_index.stats()["entries"] == len(expected)


class TestCheckpointAtomicity:
    def test_torn_write_leaves_old_snapshot_intact(self, backend):
        """Backend-independent torn-write atomicity: after a crash
        mid-snapshot, the backend still serves the previous state."""
        engine = _fresh_engine()
        backend.checkpoint(engine)
        before = _titles(backend.load_engine())
        store = engine.children(engine.document)[0]
        engine.delete_subtree(engine.children(store)[0])
        plan = FaultPlan()
        plan.crash_at("persist.write.torn")
        faults.install(plan)
        with pytest.raises(CrashError):
            backend.checkpoint(engine)
        faults.clear()
        survivor = backend.load_engine()
        survivor.check_invariants()
        assert _titles(survivor) == before

    def test_torn_image_write_leaves_old_image_intact(self, tmp_path):
        image = tmp_path / "store.img"
        engine = _fresh_engine()
        checkpoint(engine, image)
        good = image.read_bytes()
        plan = FaultPlan()
        plan.crash_at("persist.write.torn")
        faults.install(plan)
        with pytest.raises(CrashError):
            checkpoint(engine, image)
        faults.clear()
        assert image.read_bytes() == good  # os.replace never happened
        recover(image).engine.check_invariants()

    def test_crash_before_rename_leaves_old_image(self, tmp_path):
        image = tmp_path / "store.img"
        engine = _fresh_engine()
        checkpoint(engine, image)
        good = image.read_bytes()
        plan = FaultPlan()
        plan.crash_at("persist.rename")
        faults.install(plan)
        with pytest.raises(CrashError):
            checkpoint(engine, image)
        faults.clear()
        assert image.read_bytes() == good

    def test_replay_is_idempotent_past_the_horizon(self, tmp_path,
                                                   schema):
        """A crash between image rename and WAL reset must not
        double-apply: records at or below the horizon are skipped."""
        image = tmp_path / "store.img"
        wal_path = tmp_path / "store.wal"
        engine = _fresh_engine()
        wal = WriteAheadLog(wal_path)
        manager = TransactionManager(engine, wal)
        checkpoint(engine, image, wal=wal)
        _add_book(engine, manager, 2, "A")
        expected = _titles(engine)
        stale_wal = tmp_path / "stale.wal"
        shutil.copy(wal_path, stale_wal)
        checkpoint(engine, image, wal=wal)  # image now covers txn A
        # Simulate the crash window: new image, *old* un-reset log.
        result = recover(image, stale_wal, schema=schema, strict=True)
        assert result.replayed == 0
        assert result.skipped > 0
        assert _titles(result.engine) == expected

    def test_recover_missing_image_raises(self, tmp_path):
        with pytest.raises(RecoveryError):
            recover(tmp_path / "absent.img")

    def test_recover_empty_backend_raises(self, backend):
        with pytest.raises(RecoveryError):
            recover(backend)
