"""The resilient multi-session layer: snapshot-isolated reads,
overload-graceful degradation, per-request timeouts, the threaded
request loop, telemetry, and the CLI surface.

The invariants under test are the PR's acceptance bullets:

* a pinned reader's view is frozen — repeatable reads across
  concurrent commits, and uncommitted state is never observable;
* past the admission caps the server sheds with typed ``Overloaded``
  (retry hint included) — no hang, no corruption;
* an over-budget write aborts through the inverse-op rollback;
* an N-reader/M-writer storm ends with zero torn reads and a final
  recovery that relabels nothing (Proposition 1 across concurrency).
"""

import json
import threading

import pytest

from repro import obs
from repro.cli import main
from repro.server import (
    DatabaseServer,
    Overloaded,
    SessionClosed,
    SessionError,
    SessionExpired,
    server_report,
)
from repro.storage import FileBackend, MemoryBackend, faults, recover
from repro.storage.faults import FaultPlan, derive_seed
from repro.workloads.bookstore import (
    BOOKS_NAMESPACE,
    make_bookstore_document,
)
from repro.xmlio.qname import QName

TITLES = "/BookStore/Book/Title"


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()
    faults.clear()
    faults.clear_local()


def make_server(**kwargs):
    kwargs.setdefault("workers", 2)
    return DatabaseServer(MemoryBackend(),
                          make_bookstore_document(books=5, seed=3),
                          **kwargs)


def add_book(tag):
    def mutate(engine, session):
        store = engine.children(engine.document)[0]
        book = engine.insert_child(
            store, 0, name=QName(BOOKS_NAMESPACE, "Book"))
        title = engine.insert_child(
            book, 0, name=QName(BOOKS_NAMESPACE, "Title"))
        engine.insert_child(title, 0, text=tag)
    return mutate


class TestSnapshotIsolation:
    def test_pinned_reader_is_frozen_across_commits(self):
        with make_server() as server:
            reader = server.open_session("read")
            assert len(reader.query_values(TITLES)) == 5
            with server.open_session("write") as writer:
                writer.execute(add_book("X1"))
                writer.execute(add_book("X2"))
            # The old pin holds its horizon; a fresh pin sees both.
            assert len(reader.query_values(TITLES)) == 5
            with server.open_session("read") as fresh:
                assert len(fresh.query_values(TITLES)) == 7
                assert fresh.snapshot.horizon > reader.snapshot.horizon
            reader.close()

    def test_readers_at_one_horizon_share_a_snapshot(self):
        with make_server() as server:
            a = server.open_session("read")
            b = server.open_session("read")
            assert a.snapshot is b.snapshot
            assert a.snapshot.pins == 2
            assert obs.REGISTRY.value("server.snapshot.cache_hits") >= 1
            a.close()
            b.close()

    def test_uncommitted_state_is_unobservable(self):
        """A reader pinned *inside* an open write transaction sees the
        pre-transaction state: its horizon stops at the last COMMIT."""
        with make_server() as server:
            observed = []

            def mutate_and_peek(engine, session):
                add_book("UNCOMMITTED")(engine, session)
                with server.open_session("read") as peek:
                    observed.append(peek.query_values(TITLES))

            with server.open_session("write") as writer:
                writer.execute(mutate_and_peek)
            assert len(observed[0]) == 5  # not 6: COMMIT hadn't landed
            assert "UNCOMMITTED" not in observed[0]

    def test_snapshot_relabels_zero(self):
        with make_server() as server:
            with server.open_session("write") as writer:
                writer.execute(add_book("Y"))
            with server.open_session("read") as reader:
                assert reader.snapshot.relabels == 0

    def test_write_session_reads_its_own_writes(self):
        with make_server() as server:
            with server.open_session("write") as writer:
                writer.execute(add_book("MINE"))
                values = writer.query_values(TITLES)
            assert "MINE" in values


class TestPinWriterRaces:
    """A pin whose materialization races a commit or checkpoint must
    not publish contents beyond its declared key (nor fail on the
    half-advanced image/log pair a checkpoint leaves mid-flight)."""

    def test_pin_retries_when_a_commit_races_materialization(self):
        with make_server() as server:
            manager = server.snapshots
            real = manager._materialize
            raced = {"commits": 0}

            def racing(key):
                if raced["commits"] == 0:
                    raced["commits"] += 1
                    with server.open_session("write") as writer:
                        writer.execute(add_book("RACER"))
                return real(key)

            manager._materialize = racing
            with server.open_session("read") as reader:
                values = reader.query_values(TITLES)
                # The first key was derived before the racing commit,
                # so the first materialization exceeded it; the pin
                # must have re-derived and published under the
                # post-commit key — key and contents agree.
                assert reader.snapshot.key == manager.current_key()
                assert len(values) == 6 and "RACER" in values
            assert raced["commits"] == 1

    def test_pin_retries_when_a_checkpoint_races_materialization(self):
        with make_server() as server:
            with server.open_session("write") as writer:
                writer.execute(add_book("PRE"))
            manager = server.snapshots
            real = manager._materialize
            raced = {"checkpoints": 0}

            def racing(key):
                if raced["checkpoints"] == 0:
                    raced["checkpoints"] += 1
                    # Publishes a new image and resets the WAL under
                    # the materializing reader's feet.
                    server.checkpoint_now()
                return real(key)

            manager._materialize = racing
            with server.open_session("read") as reader:
                assert len(reader.query_values(TITLES)) == 6
                assert reader.snapshot.key == manager.current_key()
                assert reader.snapshot.relabels == 0


class TestSessionLifecycle:
    def test_unknown_mode_is_rejected_before_any_claim(self):
        with make_server() as server:
            with pytest.raises(SessionError):
                server.open_session("admin")
            assert server.admission.active_sessions == 0

    def test_closed_session_refuses_requests(self):
        with make_server() as server:
            session = server.open_session("read")
            session.close()
            with pytest.raises(SessionClosed):
                session.query(TITLES)
            session.close()  # idempotent

    def test_deadline_expiry_is_a_typed_error(self):
        with make_server() as server:
            session = server.open_session("read", deadline=0.001)
            import time
            time.sleep(0.01)
            with pytest.raises(SessionExpired):
                session.query(TITLES)
            session.close()

    def test_nonpositive_deadline_rejected(self):
        with make_server() as server:
            with pytest.raises(SessionError):
                server.open_session("read", deadline=-1)


class TestOverload:
    def test_session_cap_sheds_with_retry_hint(self):
        with make_server(max_sessions=2) as server:
            held = [server.open_session("read") for _ in range(2)]
            with pytest.raises(Overloaded) as info:
                server.open_session("read")
            assert info.value.retry_after > 0
            assert info.value.kind == "overloaded"
            assert info.value.as_dict() == {
                "retry_after": info.value.retry_after}
            # Shedding left nothing half-open: closing the survivors
            # frees every slot.
            for session in held:
                session.close()
            assert server.admission.active_sessions == 0
            server.open_session("read").close()  # admits again

    def test_queue_cap_sheds_submissions(self):
        with make_server(max_queue_depth=1, workers=1) as server:
            gate = threading.Event()
            first = server.submit(gate.wait)  # occupies the only slot
            with pytest.raises(Overloaded):
                server.submit(lambda: None)
            gate.set()
            first.wait(5.0)

    def test_submit_after_close_raises_instead_of_hanging(self):
        server = make_server()
        server.close()
        with pytest.raises(SessionError):
            server.submit(lambda: None)
        with pytest.raises(SessionError):
            server.loop.submit(lambda: None)  # the loop refuses too
        # The refusal released its admission slot.
        assert server.admission.queue_depth == 0

    def test_queue_depth_gauge_returns_to_idle(self):
        with make_server() as server:
            server.submit(lambda: None).wait(5.0)
            server.submit(lambda: None).wait(5.0)
            # exit_request mirrors enter_request: the gauge tracks the
            # live depth back down, not just the admitted peak.
            assert obs.REGISTRY.value("server.queue.depth") == 0

    def test_shed_is_counted_and_evented(self):
        with make_server(max_sessions=1) as server:
            session = server.open_session("read")
            with pytest.raises(Overloaded):
                server.open_session("read")
            session.close()
            assert obs.REGISTRY.value("server.overloaded") == 1
            assert obs.REGISTRY.value("server.sessions.rejected") == 1
            events = obs.EVENTS.find("server.overloaded")
            assert events and events[0].fields["gate"] == "sessions"


class TestRequestTimeout:
    def test_over_budget_write_rolls_back(self):
        with make_server() as server:
            before = server.engine.node_count()

            def slow(engine, session):
                add_book("SLOW")(engine, session)
                import time
                time.sleep(0.05)

            with server.open_session("write") as writer:
                with pytest.raises(SessionExpired):
                    writer.execute(slow, timeout=0.01)
                # Inverse-op rollback: the engine is untouched and the
                # session survives for the next (in-budget) request.
                assert server.engine.node_count() == before
                writer.execute(add_book("FAST"))
            assert server.engine.node_count() > before

    def test_request_timeout_does_not_clobber_session_deadline(self):
        with make_server() as server:
            with server.open_session("write", deadline=30.0) as writer:
                writer.execute(add_book("A"), timeout=5.0)
                assert writer.remaining() > 10  # restored to ~30s


class TestConcurrentStorm:
    READERS, WRITERS, ROUNDS = 4, 2, 6

    def test_readers_and_writers_converge_clean(self):
        server = make_server(max_sessions=16, acquire_timeout=10.0)
        torn = []
        errors = []

        def reader(index):
            try:
                for _ in range(self.ROUNDS):
                    with server.open_session("read") as session:
                        first = session.query_values(TITLES)
                        again = session.query_values(TITLES)
                        if first != again:
                            torn.append((index, first, again))
            except Exception as exc:  # noqa: BLE001 — report, don't hang
                errors.append(exc)

        def writer(index):
            try:
                for round_no in range(self.ROUNDS):
                    with server.open_session("write") as session:
                        session.execute(add_book(f"w{index}r{round_no}"))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(self.READERS)]
        threads += [threading.Thread(target=writer, args=(i,))
                    for i in range(self.WRITERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        assert not torn  # every session's view was frozen
        server.checkpoint_now()
        final = recover(server.backend)
        assert final.relabels == 0
        titles = set()
        engine = final.engine
        store = engine.children(engine.document)[0]
        for book in engine.children(store):
            titles.add(engine.string_value(engine.children(book)[0]))
        expected = {f"w{i}r{r}" for i in range(self.WRITERS)
                    for r in range(self.ROUNDS)}
        assert expected <= titles  # every commit survived
        server.close()


class TestTelemetry:
    def test_lifecycle_counters_and_events(self):
        with make_server() as server:
            with server.open_session("read") as reader:
                reader.query(TITLES)
            with server.open_session("write") as writer:
                writer.execute(add_book("T"))
            report = server_report()
            assert report["sessions"]["opened"] == 2
            assert report["sessions"]["closed"] == 2
            assert report["lease"]["grants"] == 1
            assert report["lease"]["renewals"] == 1
            assert report["requests"]["reads"] == 1
            assert report["requests"]["writes"] == 1
            assert report["requests"]["read_latency_ns"]["count"] == 1
            assert report["requests"]["session_latency_ns"]["p99"] > 0
            kinds = [e.kind for e in obs.EVENTS]
            assert "session.open" in kinds
            assert "session.close" in kinds
            assert "lease.granted" in kinds

    def test_lease_wait_histogram_records_contention(self):
        with make_server() as server:
            with server.open_session("write"):
                pass
            summary = obs.REGISTRY.histogram(
                "server.lease.wait.ns").summary()
            assert summary["count"] == 1
            assert summary["max"] > 0


class TestSeededFaultPlans:
    """Satellite: explicit-seed fault sweeps are reproducible per
    thread via split() + thread-local installation."""

    def test_derive_seed_is_a_pure_function(self):
        assert derive_seed(7, "a") == derive_seed(7, "a")
        assert derive_seed(7, "a") != derive_seed(7, "b")
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_split_replays_identically(self):
        parent = FaultPlan.probabilistic(seed=11, rate=0.3)
        a = parent.split("thread-1")
        b = FaultPlan.probabilistic(seed=11, rate=0.3).split("thread-1")
        decisions_a = [a.should_crash("wal.append") for _ in range(200)]
        decisions_b = [b.should_crash("wal.append") for _ in range(200)]
        assert decisions_a == decisions_b
        assert any(decisions_a)  # the coin does land

    def test_split_children_are_independent(self):
        parent = FaultPlan.probabilistic(seed=11, rate=0.3)
        a = [parent.split("t1").should_crash("wal.append")
             for _ in range(1)]
        decisions = {
            key: [parent.split(key).should_crash("wal.append")
                  for _ in range(1)]
            for key in ("t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8")}
        assert len({tuple(v) for v in decisions.values()}) > 1

    def test_thread_local_plans_do_not_interfere(self):
        parent = FaultPlan.probabilistic(seed=5, rate=1.0)
        outcomes = {}

        def armed():
            with faults.injected_local(parent.split("armed")):
                outcomes["armed"] = []
                try:
                    faults.fire("wal.append")
                    outcomes["armed"].append("survived")
                except faults.CrashError:
                    outcomes["armed"].append("crashed")

        def unarmed():
            # No local plan, no global plan: fire() is a no-op here
            # even while the other thread's plan is armed.
            faults.fire("wal.append")
            outcomes["unarmed"] = "survived"

        t1 = threading.Thread(target=armed)
        t2 = threading.Thread(target=unarmed)
        t1.start(); t1.join()
        t2.start(); t2.join()
        assert outcomes["armed"] == ["crashed"]  # rate=1.0 always fires
        assert outcomes["unarmed"] == "survived"

    def test_local_plan_overrides_global(self):
        never = FaultPlan()  # nothing armed
        always = FaultPlan.probabilistic(seed=1, rate=1.0)
        with faults.injected(always):
            with faults.injected_local(never):
                faults.fire("wal.append")  # local (inert) plan wins
            with pytest.raises(faults.CrashError):
                faults.fire("wal.append")  # global armed plan again

    def test_concurrent_local_churn_never_disables_injection(self):
        """Session threads installing/clearing local plans must not
        turn fault injection off for anyone else (the former shared
        installation counter could lose updates and do exactly that)."""
        always = FaultPlan.probabilistic(seed=1, rate=1.0)
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                faults.install_local(FaultPlan())
                faults.clear_local()

        threads = [threading.Thread(target=churn) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            with faults.injected(always):
                for _ in range(200):
                    with pytest.raises(faults.CrashError):
                        faults.fire("wal.append")
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)


class TestServeCli:
    @pytest.fixture
    def document(self, tmp_path):
        path = tmp_path / "books.xml"
        path.write_text(
            '<BookStore xmlns="http://www.books.org">'
            + "".join(f"<Book><Title>T{i}</Title><Author>A</Author>"
                      f"<Date>2000</Date><ISBN>i-{i}</ISBN>"
                      f"<Publisher>P</Publisher></Book>"
                      for i in range(3))
            + "</BookStore>", encoding="utf-8")
        return str(path)

    def test_serve_reports_healthy_json(self, document, capsys):
        code = main(["serve", document, "--readers", "2",
                     "--writers", "1", "--requests", "3", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["healthy"] is True
        assert report["results"]["torn_reads"] == 0
        assert report["results"]["errors"] == 0
        assert report["recovery"]["relabels"] == 0
        assert report["results"]["writes"] == 3
        assert report["server"]["lease"]["grants"] == 3

    def test_serve_text_mode(self, document, capsys):
        code = main(["serve", document, "--readers", "1",
                     "--writers", "1", "--requests", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "healthy:      True" in out

    def test_serve_prom_exposes_server_metrics(self, document, capsys):
        code = main(["serve", document, "--readers", "1",
                     "--writers", "1", "--requests", "2", "--prom"])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro_server_lease_grants_total" in out
        assert "repro_server_requests_total" in out

    def test_session_verb_json(self, document, capsys):
        code = main(["session", document, TITLES, "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["count"] == 3
        assert report["snapshot"].startswith("lsn")
        assert report["relabels"] == 0

    def test_session_write_mode_reports_lease(self, document, capsys):
        code = main(["session", document, TITLES, "--mode", "write",
                     "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["lease"]["renewals"] == 0
        assert "snapshot" not in report

    def test_json_errors_carry_stable_kind(self, document, capsys):
        code = main(["session", document, "not-absolute", "--json"])
        assert code == 2
        payload = json.loads(capsys.readouterr().out)["error"]
        assert payload["kind"] == "query"
        assert payload["type"] == "QueryError"
