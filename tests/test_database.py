"""Tests for the database layer: documents evolving through states."""

import pytest

from repro.database import DatabaseError, StoredDocument, XmlDatabase
from repro.schema import parse_schema
from repro.workloads.fixtures import (
    EXAMPLE_7_DOCUMENT,
    EXAMPLE_7_SCHEMA,
    EXAMPLE_8_DOCUMENT,
    LIBRARY_SCHEMA,
)


@pytest.fixture
def database():
    return XmlDatabase()


@pytest.fixture
def library(database):
    return database.store("library", EXAMPLE_8_DOCUMENT,
                          schema=parse_schema(LIBRARY_SCHEMA))


class TestLifecycle:
    def test_store_and_get(self, database):
        stored = database.store("doc", "<a><b>x</b></a>")
        assert database.get("doc") is stored
        assert "doc" in database
        assert len(database) == 1

    def test_duplicate_name_rejected(self, database):
        database.store("doc", "<a/>")
        with pytest.raises(DatabaseError):
            database.store("doc", "<b/>")

    def test_drop(self, database):
        database.store("doc", "<a/>")
        database.drop("doc")
        assert "doc" not in database
        with pytest.raises(DatabaseError):
            database.get("doc")

    def test_drop_unknown_rejected(self, database):
        with pytest.raises(DatabaseError):
            database.drop("ghost")

    def test_names_sorted(self, database):
        for name in ("zebra", "alpha", "mid"):
            database.store(name, "<a/>")
        assert database.names() == ["alpha", "mid", "zebra"]

    def test_typed_store_validates(self, database):
        schema = parse_schema(EXAMPLE_7_SCHEMA)
        stored = database.store("books", EXAMPLE_7_DOCUMENT,
                                schema=schema)
        assert stored.check_conformance() == []

    def test_typed_store_rejects_invalid(self, database):
        from repro.errors import ValidationError
        schema = parse_schema(EXAMPLE_7_SCHEMA)
        with pytest.raises(ValidationError):
            database.store("bad", "<BookStore xmlns='http://www.books.org'>"
                                  "<Junk/></BookStore>", schema=schema)


class TestQueries:
    def test_query_tree(self, library):
        titles = library.query_values("/library/book/title")
        assert titles == ["Foundations of Databases",
                          "An Introduction to Database Systems"]

    def test_query_storage_agrees(self, library):
        from_tree = library.query_values("//author")
        from_storage = [library.engine.string_value(d)
                        for d in library.query_storage("//author")]
        assert from_tree == from_storage

    def test_query_all(self, database):
        database.store("one", "<r><v>1</v></r>")
        database.store("two", "<r><v>2</v><v>3</v></r>")
        assert database.query_all("/r/v") == {
            "one": ["1"], "two": ["2", "3"]}

    def test_serialize(self, library):
        text = library.serialize()
        assert "<library>" in text
        assert "Codd" in text


class TestUpdates:
    def test_insert_element_both_sides(self, library):
        library.insert_element("/library", 2, "book")
        library.insert_element("/library/book[3]", 0, "title")
        library.insert_text("/library/book[3]/title", 0, "New Book")
        library.verify_consistency()
        titles = library.query_values("/library/book/title")
        assert titles[2] == "New Book"
        stored = [library.engine.string_value(d) for d in
                  library.query_storage("/library/book/title")]
        assert stored == titles
        assert library.version == 3

    def test_updates_never_relabel(self, library):
        for index in range(5):
            library.insert_element("/library", index, "book")
        assert library.engine.relabel_count == 0
        library.verify_consistency()

    def test_delete_both_sides(self, library):
        before = library.engine.node_count()
        removed = library.delete("/library/book[1]")
        library.verify_consistency()
        assert library.engine.node_count() == before - removed
        titles = library.query_values("/library/book/title")
        assert titles == ["An Introduction to Database Systems"]

    def test_delete_root_rejected(self, library):
        with pytest.raises(DatabaseError):
            library.delete("/library")

    def test_set_attribute_both_sides(self, library):
        library.set_attribute("/library/book[1]", "lang", "en")
        library.verify_consistency()
        (value,) = library.query_values("/library/book[1]/@lang")
        assert value == "en"

    def test_ambiguous_target_rejected(self, library):
        with pytest.raises(DatabaseError):
            library.insert_element("/library/book", 0, "x")

    def test_missing_target_rejected(self, library):
        with pytest.raises(DatabaseError):
            library.insert_element("/library/shelf", 0, "x")

    def test_conformance_after_valid_update(self, library):
        # Adding a complete new book keeps the document conforming.
        library.insert_element("/library", 0, "book")
        library.insert_element("/library/book[1]", 0, "title")
        library.insert_text("/library/book[1]/title", 0, "T")
        assert library.check_conformance() == []

    def test_conformance_detects_broken_update(self, library):
        # An empty book (no title) violates the content model.
        library.insert_element("/library", 0, "book")
        violations = library.check_conformance()
        assert any(v.item == "5.4.2.3" for v in violations)

    def test_version_counts_states(self, library):
        assert library.version == 0
        library.insert_element("/library", 0, "book")
        library.insert_element("/library/book[1]", 0, "title")
        library.delete("/library/book[1]")
        assert library.version == 3


class TestConsistency:
    def test_fresh_document_is_consistent(self, library):
        library.verify_consistency()

    def test_mixed_content_document(self, database):
        stored = database.store(
            "mixed", "<r>alpha<b>beta</b>gamma<b>delta</b></r>")
        stored.verify_consistency()
        stored.insert_text("/r", 4, "omega")
        stored.verify_consistency()
        assert stored.query("/r")[0].string_value() == \
            "alphabetagammadeltaomega"

    def test_update_storm_stays_consistent(self, database):
        import random
        stored = database.store("doc", "<root><a>1</a><b>2</b></root>")
        rng = random.Random(5)
        for step in range(40):
            choice = rng.random()
            if choice < 0.5:
                stored.insert_element("/root", rng.randint(
                    0, len(stored.query("/root")[0].children())),
                    f"e{step}")
            elif choice < 0.8:
                target = stored.query("/root")
                stored.insert_text(
                    "/root", 0, f"t{step}")
            else:
                elements = stored.query("/root/*")
                if len(elements) > 1:
                    name = elements[-1].node_name().head().local
                    stored.delete(f"/root/{name}[last()]")
            stored.verify_consistency()
