"""Tests for the fixtures and the scalable workload generators."""

import pytest

from repro.xmlio import parse_document, serialize_document
from repro.schema import parse_schema
from repro.mapping import content_equal, document_to_tree, tree_to_document
from repro.algebra import check_conformance
from repro.storage import StorageEngine
from repro.workloads import (
    document_element_count,
    make_bookstore_document,
    make_irregular_document,
    make_library_document,
)
from repro.workloads.fixtures import (
    EXAMPLE_1_SCHEMA,
    EXAMPLE_5_SCHEMA,
    EXAMPLE_6_SCHEMA,
    EXAMPLE_7_DOCUMENT,
    EXAMPLE_7_SCHEMA,
    EXAMPLE_8_DESCRIPTIVE_SCHEMA,
    EXAMPLE_8_DOCUMENT,
    LIBRARY_SCHEMA,
)


class TestFixtures:
    @pytest.mark.parametrize("source", [
        EXAMPLE_1_SCHEMA, EXAMPLE_5_SCHEMA, EXAMPLE_6_SCHEMA,
        EXAMPLE_7_SCHEMA, LIBRARY_SCHEMA,
    ])
    def test_schema_fixtures_parse(self, source):
        assert parse_schema(source) is not None

    def test_example_7_document_validates(self):
        schema = parse_schema(EXAMPLE_7_SCHEMA)
        tree = document_to_tree(parse_document(EXAMPLE_7_DOCUMENT), schema)
        assert check_conformance(tree, schema) == []

    def test_example_8_document_parses(self):
        document = parse_document(EXAMPLE_8_DOCUMENT)
        assert document.root.name.local == "library"
        books = document.root.find_all("book")
        papers = document.root.find_all("paper")
        assert len(books) == 2 and len(papers) == 2

    def test_example_8_descriptive_schema_is_a_tree(self):
        paths = [path for path, _type in EXAMPLE_8_DESCRIPTIVE_SCHEMA]
        assert len(set(paths)) == len(paths)
        for path in paths:
            if "/" in path:
                parent = path.rsplit("/", 1)[0]
                assert parent in paths


class TestBookstoreGenerator:
    def test_sizes(self):
        doc = make_bookstore_document(books=25, seed=0)
        assert len(doc.root.element_children()) == 25

    def test_valid_against_example_7(self):
        schema = parse_schema(EXAMPLE_7_SCHEMA)
        doc = make_bookstore_document(books=15, seed=4)
        reparsed = parse_document(serialize_document(doc))
        tree = document_to_tree(reparsed, schema)
        assert check_conformance(tree, schema) == []

    def test_reproducible(self):
        a = serialize_document(make_bookstore_document(10, seed=5))
        b = serialize_document(make_bookstore_document(10, seed=5))
        assert a == b

    def test_different_seeds_differ(self):
        a = serialize_document(make_bookstore_document(10, seed=1))
        b = serialize_document(make_bookstore_document(10, seed=2))
        assert a != b


class TestLibraryGenerator:
    def test_shape_matches_example_8(self):
        doc = make_library_document(books=30, papers=20, seed=0)
        engine = StorageEngine()
        engine.load_document(doc)
        generated = {path for path, _t in engine.schema.paths()}
        reference = {path for path, _t in EXAMPLE_8_DESCRIPTIVE_SCHEMA}
        assert generated == reference

    def test_valid_against_library_schema(self):
        schema = parse_schema(LIBRARY_SCHEMA)
        doc = make_library_document(books=12, papers=7, seed=3)
        reparsed = parse_document(serialize_document(doc))
        tree = document_to_tree(reparsed, schema)
        assert check_conformance(tree, schema) == []

    def test_roundtrip_through_model(self):
        schema = parse_schema(LIBRARY_SCHEMA)
        doc = make_library_document(books=6, papers=6, seed=8)
        reparsed = parse_document(serialize_document(doc))
        tree = document_to_tree(reparsed, schema)
        assert content_equal(tree_to_document(tree), reparsed)

    def test_scaling(self):
        small = make_library_document(books=5, papers=5, seed=0)
        large = make_library_document(books=50, papers=50, seed=0)
        assert (document_element_count(large)
                > 5 * document_element_count(small))


class TestIrregularGenerator:
    def test_all_names_distinct(self):
        doc = make_irregular_document(node_count=120, seed=0)
        names = [e.name.local for e in doc.root.iter()]
        assert len(set(names)) == len(names)

    def test_requested_node_count(self):
        doc = make_irregular_document(node_count=75, seed=1)
        assert document_element_count(doc) == 75

    def test_degenerate_dataguide(self):
        doc = make_irregular_document(node_count=90, seed=2)
        engine = StorageEngine()
        engine.load_document(doc)
        # one schema node per element, plus the document schema node
        assert engine.schema.node_count() == 91
