"""A tour of the Section 9 physical representation.

Loads the paper's Example 8 library into the simulated Sedna storage
and walks through every §9 structure: the descriptive schema (the
figure of Example 8), the per-schema-node block lists (Example 9), a
node descriptor's fields (Example 10), numbering labels, and an
update that relabels nothing (Proposition 1).

Run:  python examples/sedna_storage_tour.py
"""

from repro.query import StorageQueryEngine
from repro.storage import StorageEngine
from repro.xmlio import QName, parse_document
from repro.workloads.fixtures import EXAMPLE_8_DOCUMENT


def main() -> None:
    engine = StorageEngine(block_capacity=4)
    engine.load_document(parse_document(EXAMPLE_8_DOCUMENT))

    # --- Section 9.1: the descriptive schema (Example 8's figure).
    print("descriptive schema:")
    for path, node_type in engine.schema.paths():
        print(f"  {path:40s} {node_type}")
    print(f"{engine.schema.node_count()} schema nodes summarize "
          f"{engine.node_count()} document nodes")

    # --- Section 9.2: blocks hang off schema nodes (Example 9).
    print("\nblocks per schema node:")
    for path, count in engine.blocks_per_schema_node().items():
        print(f"  {path:40s} {count} block(s)")

    # --- Example 10: one node descriptor, field by field.
    library = engine.children(engine.document)[0]
    first_book = engine.children(library)[0]
    print("\nnode descriptor of the first <book>:")
    print(f"  schema node:    {first_book.schema_node.path}")
    print(f"  nid:            {first_book.nid}")
    print(f"  parent:         {first_book.parent.schema_node.step}")
    print(f"  left sibling:   {first_book.left_sibling}")
    print(f"  right sibling:  "
          f"{first_book.right_sibling.schema_node.step}")
    print(f"  next/prev in block: {first_book.next_in_block}/"
          f"{first_book.prev_in_block}")
    print(f"  children-by-schema pointers: "
          f"{len(first_book.children_by_schema)} "
          "(first child per schema child only)")
    print(f"  modelled size:  {first_book.size_bytes()} bytes")

    # --- Section 9.2 claim: every accessor from descriptor + schema.
    print("\naccessors evaluated from storage:")
    print(f"  node-kind:    {engine.node_kind(first_book)}")
    print(f"  node-name:    {engine.node_name(first_book)}")
    print(f"  string-value: {engine.string_value(first_book)[:40]!r}...")

    # --- Section 9.3: structural relations from labels alone.
    title = engine.children(first_book)[0]
    from repro.storage import before, is_ancestor, is_parent
    print("\nlabel relations:")
    print(f"  book << title:        {before(first_book.nid, title.nid)}")
    print(f"  book parent-of title: "
          f"{is_parent(first_book.nid, title.nid)}")
    print(f"  library anc-of title: "
          f"{is_ancestor(library.nid, title.nid)}")

    # --- Proposition 1: insert without relabeling.
    print("\ninserting a book between the two existing ones...")
    new_book = engine.insert_child(library, 1, name=QName("", "book"))
    new_title = engine.insert_child(new_book, 0, name=QName("", "title"))
    engine.insert_child(new_title, 0, text="A Formal Model of XML Schema")
    engine.check_invariants()
    print(f"  relabels performed: {engine.relabel_count}")
    print(f"  block splits:       {engine.split_count}")

    # --- Descriptive-schema-driven queries (the XPath speedup).
    queries = StorageQueryEngine(engine)
    titles = queries.evaluate_schema_driven("//title")
    print("\nall titles (schema-driven scan, document order):")
    for descriptor in titles:
        print(f"  {engine.string_value(descriptor)}")


if __name__ == "__main__":
    main()
