"""Quickstart: schema in, typed document tree out.

Parses the paper's Example 7 BookStore schema, validates a document
against it (the mapping ``f`` of Section 8), inspects the resulting
node tree through the Section 5 accessors, and serializes it back
(the mapping ``g``), checking content equality.

Run:  python examples/quickstart.py
"""

from repro.algebra import check_conformance
from repro.mapping import content_equal, document_to_tree, tree_to_document
from repro.schema import parse_schema
from repro.xmlio import parse_document, serialize_document
from repro.workloads.fixtures import EXAMPLE_7_DOCUMENT, EXAMPLE_7_SCHEMA


def main() -> None:
    # 1. Parse the XSD into the paper's abstract syntax (Sections 2-3).
    schema = parse_schema(EXAMPLE_7_SCHEMA)
    print("schema:", schema)
    print("root element declaration:", schema.root_element.name)

    # 2. Apply f: S-document -> S-tree (Section 8), validating as it goes.
    document = parse_document(EXAMPLE_7_DOCUMENT)
    tree = document_to_tree(document, schema)
    print("\nconformance violations:", check_conformance(tree, schema))

    # 3. Walk the tree through the Section 5 accessors.
    bookstore = tree.document_element()
    print("\nnode-kind:", bookstore.node_kind())
    print("node-name:", bookstore.node_name().head())
    print("type:     ", bookstore.type().head())
    for book in bookstore.element_children():
        title = book.element_children()[0]
        print(f"  {book.type().head().local}: "
              f"{title.string_value()!r}")

    # 4. Typed values come from the simple type system (Section 4).
    first_title = bookstore.element_children()[0].element_children()[0]
    (atomic,) = first_title.typed_value()
    print("\ntyped value:", atomic)

    # 5. Apply g and check the round-trip theorem g(f(X)) =_c X.
    back = tree_to_document(tree)
    print("\ng(f(X)) =_c X:", content_equal(back, document))
    print("\nserialized head:")
    print(serialize_document(back, indent="  ")[:300])


if __name__ == "__main__":
    main()
