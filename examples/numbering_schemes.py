"""Numbering schemes under update pressure (Proposition 1, §9.3).

Runs the same randomized insert/delete workload against three label
families — the paper's gap-based Sedna scheme, naive Dewey ordinals,
and tight pre/post intervals — and prints the relabeling cost and
label growth of each.  This is the interactive version of the NID
benchmark.

Run:  python examples/numbering_schemes.py
"""

from repro.numbering import (
    DeweyBaseline,
    IntervalBaseline,
    SednaAdapter,
    UpdateWorkload,
)


def main() -> None:
    header = (f"{'scheme':10s} {'ops':>5s} {'relabels':>9s} "
              f"{'relab/op':>9s} {'mean lbl':>9s} {'max lbl':>8s}")
    for operations in (100, 400, 1600):
        workload = UpdateWorkload(operations=operations, seed=11,
                                  insert_bias=0.75)
        print(f"\n=== {operations} random updates "
              f"(70/30 insert/delete) ===")
        print(header)
        for make in (SednaAdapter, DeweyBaseline, IntervalBaseline):
            stats = workload.run(make)
            print(f"{stats.scheme:10s} {stats.operations:5d} "
                  f"{stats.relabels:9d} {stats.relabels_per_op:9.2f} "
                  f"{stats.mean_label_bytes:8.1f}B "
                  f"{stats.max_label_bytes:7d}B")

    print(
        "\nreading: the Sedna scheme never relabels (Proposition 1) at\n"
        "the cost of slowly growing labels; Dewey relabels entire\n"
        "shifted sibling subtrees; tight intervals renumber O(n) per\n"
        "insertion but answer relations from 8 fixed bytes.")


if __name__ == "__main__":
    main()
