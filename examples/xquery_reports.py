"""XQuery-lite over the formal model — the paper's announced next step.

The paper concludes: "the presented semantics may help in defining a
simple semantics of a data manipulation language like XQuery. We
intend to proceed with this work."  This example runs FLWOR queries
over the paper's own documents, entirely on top of the Section 5
accessors.

Run:  python examples/xquery_reports.py
"""

from repro.mapping import document_to_tree, serialize_tree, \
    untyped_document_to_tree
from repro.schema import parse_schema
from repro.xmlio import parse_document
from repro.xquery import execute, execute_values
from repro.workloads.fixtures import (
    EXAMPLE_7_DOCUMENT,
    EXAMPLE_7_SCHEMA,
    EXAMPLE_8_DOCUMENT,
)


def main() -> None:
    bookstore = document_to_tree(parse_document(EXAMPLE_7_DOCUMENT),
                                 parse_schema(EXAMPLE_7_SCHEMA))
    library = untyped_document_to_tree(parse_document(EXAMPLE_8_DOCUMENT))

    print("books published in 1998:")
    for title in execute_values(bookstore, """
            for $b in /BookStore/Book
            where $b/Date = '1998'
            return $b/Title"""):
        print(f"  {title}")

    print("\nall titles, descending:")
    for title in execute_values(bookstore, """
            for $b in /BookStore/Book
            order by $b/Title descending
            return $b/Title"""):
        print(f"  {title}")

    print("\npublications with author Codd (library, Example 8):")
    for title in execute_values(library, """
            for $p in /library/paper
            where $p/author = 'Codd'
            return $p/title"""):
        print(f"  {title}")

    print("\nbooks with a post-2000 issue:")
    for title in execute_values(library, """
            for $b in /library/book
            where $b/issue/year > 2000
            return $b/title"""):
        print(f"  {title}")

    print("\naggregates:")
    (authors,) = execute(library, "count(//author)")
    (distinct,) = execute(library,
                          "count(distinct-values(//author))")
    print(f"  author elements: {authors}, distinct authors: {distinct}")

    print("\na constructed report (new nodes, XQuery copy semantics):")
    (report,) = execute(library, """
            let $books := /library/book
            return <report>
                     <bookCount>{count($books)}</bookCount>
                     <first>{/library/book[1]/title}</first>
                   </report>""")
    print(serialize_tree(report, indent="  "))


if __name__ == "__main__":
    main()
