"""A walkthrough of the formal model itself (Sections 4-7).

Builds a document tree *by hand* inside a state algebra — the way the
paper defines database states — then exercises each formal ingredient:
the carrier sets and their disjointness, the ten accessors, the typed
values from the Section 4 type system, the Section 6.2 requirements,
and the document order of Section 7.

Run:  python examples/formal_model_walkthrough.py
"""

from repro.algebra import (
    StateAlgebra,
    Tree,
    check_conformance,
    pretty,
)
from repro.order import before, document_order, is_total_order
from repro.schema import (
    AttributeDeclarations,
    ComplexContentType,
    DocumentSchema,
    ElementDeclaration,
    GroupDefinition,
    RepetitionFactor,
    TypeName,
    UNBOUNDED,
)
from repro.xmlio import QName, xsd
from repro.xsdtypes import builtin


def build_schema() -> DocumentSchema:
    """score := element scores { element run {xs:decimal}+, @unit }"""
    run = ElementDeclaration("run", TypeName(xsd("decimal")),
                             RepetitionFactor(1, UNBOUNDED))
    scores_type = ComplexContentType(
        group=GroupDefinition((run,)),
        attributes=AttributeDeclarations(
            (("unit", TypeName(xsd("string"))),)))
    return DocumentSchema(
        root_element=ElementDeclaration("scores", scores_type))


def main() -> None:
    schema = build_schema()

    # --- Section 6.1: a state algebra with disjoint carriers.
    algebra = StateAlgebra()
    document = algebra.create_document(base_uri="urn:example:scores")
    scores = algebra.create_element(QName("", "scores"))
    algebra.append_child(document, scores)
    unit = algebra.create_attribute(QName("", "unit"), "seconds")
    algebra.annotate_attribute(unit, xsd("string"),
                               simple_type=builtin("string"))
    algebra.attach_attribute(scores, unit)
    for value in ("9.58", "9.63", "9.69"):
        run = algebra.create_element(QName("", "run"))
        algebra.annotate_element(run, xsd("decimal"),
                                 simple_type=builtin("decimal"))
        algebra.append_child(scores, run)
        algebra.append_child(run, algebra.create_text(value))

    print("state algebra:", algebra)
    for kind in ("document", "element", "attribute", "text"):
        print(f"  A_{kind:9s} = {algebra.carrier(kind)}")
    algebra.check_sort_disjointness()
    print("carriers are pairwise disjoint")

    # --- The tree and its accessors.
    tree = Tree(document)
    print("\ndocument tree:")
    print(pretty(tree))

    first_run = scores.element_children()[0]
    print("\naccessors of the first <run>:")
    print(f"  node-kind:    {first_run.node_kind()}")
    print(f"  node-name:    {first_run.node_name().head()}")
    print(f"  type:         {first_run.type().head()}")
    print(f"  string-value: {first_run.string_value()!r}")
    print(f"  typed-value:  {first_run.typed_value()}")
    print(f"  nilled:       {first_run.nilled().head()}")
    print(f"  base-uri:     {first_run.base_uri().head()} (inherited)")

    # --- Section 6.2: the tree conforms, and breaking it is detected.
    print("\nconformance:", check_conformance(document, schema) or "OK")
    algebra.append_child(scores, algebra.create_text("stray text"))
    violations = check_conformance(document, schema)
    print("after adding stray text to element-only content:")
    for violation in violations:
        print(f"  {violation}")
    stray = list(scores.children())[-1]
    algebra.remove_child(scores, stray)

    # --- Section 7: document order is a strict total order.
    nodes = document_order(document)
    print(f"\ndocument order over {len(nodes)} nodes:")
    labels = []
    for node in nodes:
        name = node.node_name()
        labels.append(name.head().local if name else node.node_kind())
    print("  " + " << ".join(labels))
    print("  strict total order:", is_total_order(document))
    print("  scores << unit attribute:", before(scores, unit))
    print("  unit attribute << first run:", before(unit, first_run))


if __name__ == "__main__":
    main()
