"""A bookstore catalogue pipeline: generate, validate, diagnose, query.

Shows the validator as a user would actually run it: valid documents
flow through, invalid ones produce item-numbered diagnostics pointing
at the Section 6.2 requirement they break, and path queries retrieve
data from the typed tree.

Run:  python examples/bookstore_catalog.py
"""

from repro.algebra import ConformanceChecker, StateAlgebra
from repro.errors import ValidationError
from repro.mapping import document_to_tree
from repro.query import evaluate_tree
from repro.schema import parse_schema
from repro.xmlio import QName, parse_document, serialize_document
from repro.workloads import make_bookstore_document
from repro.workloads.fixtures import EXAMPLE_7_SCHEMA

BROKEN_DOCUMENTS = {
    "wrong root": "<Shop xmlns='http://www.books.org'/>",
    "book out of order": """
        <BookStore xmlns="http://www.books.org"><Book>
          <Author>first</Author><Title>swapped</Title>
          <Date>1999</Date><ISBN>1</ISBN><Publisher>P</Publisher>
        </Book></BookStore>""",
    "missing fields": """
        <BookStore xmlns="http://www.books.org"><Book>
          <Title>only a title</Title>
        </Book></BookStore>""",
    "undeclared child": """
        <BookStore xmlns="http://www.books.org"><Book>
          <Title>T</Title><Author>A</Author><Date>D</Date>
          <ISBN>I</ISBN><Publisher>P</Publisher><Price>9.99</Price>
        </Book></BookStore>""",
}


def main() -> None:
    schema = parse_schema(EXAMPLE_7_SCHEMA)

    # Generate a 50-book catalogue and validate it.
    catalogue = make_bookstore_document(books=50, seed=2024)
    text = serialize_document(catalogue)
    tree = document_to_tree(parse_document(text), schema)
    print(f"catalogue of {len(tree.document_element().children())} "
          "books validates")

    # Query it.
    titles = evaluate_tree(tree, "/BookStore/Book/Title")
    print(f"first three titles: "
          f"{[t.string_value() for t in titles[:3]]}")
    years = {n.string_value()
             for n in evaluate_tree(tree, "/BookStore/Book/Date")}
    print(f"{len(years)} distinct publication years")

    # Diagnose broken documents: each failure names the Section 6.2
    # requirement it violates.
    print("\nbroken documents:")
    for label, source in BROKEN_DOCUMENTS.items():
        try:
            document_to_tree(parse_document(source), schema)
        except ValidationError as error:
            print(f"  {label:18s} -> {error}")

    # The checker can also audit trees built by hand in a state algebra.
    algebra = StateAlgebra()
    document = algebra.create_document()
    rogue = algebra.create_element(
        QName("http://www.books.org", "BookStore"))
    algebra.append_child(document, rogue)
    violations = ConformanceChecker(schema).check(document)
    print("\nhand-built empty BookStore:")
    for violation in violations:
        print(f"  {violation}")


if __name__ == "__main__":
    main()
