"""A database of documents evolving through states (Section 6.1).

The paper motivates the state algebra with a *database*: documents are
inserted, updated and deleted, and each change is a transition to a
new database state.  This example runs such a lifecycle with both
representations (formal tree + Sedna storage) kept in lockstep and
re-verified after every transition.

Run:  python examples/document_database.py
"""

from repro.database import XmlDatabase
from repro.schema import parse_schema
from repro.workloads.fixtures import EXAMPLE_8_DOCUMENT, LIBRARY_SCHEMA


def main() -> None:
    database = XmlDatabase()

    # State 0: insert documents (one typed, one schema-less).
    library = database.store("library", EXAMPLE_8_DOCUMENT,
                             schema=parse_schema(LIBRARY_SCHEMA))
    notes = database.store("notes", "<notes><note>check Codd refs</note>"
                                    "</notes>")
    print(f"{database!r}: {database.names()}")
    print(f"initial conformance violations: "
          f"{library.check_conformance()}")

    # Query across the database.
    print("\nall titles per document:")
    for name, titles in database.query_all("//title").items():
        print(f"  {name}: {titles}")

    # State transitions: grow the library.
    print("\ninserting a new book between the existing two...")
    library.insert_element("/library", 1, "book")
    library.insert_element("/library/book[2]", 0, "title")
    library.insert_text("/library/book[2]/title", 0,
                        "A Formal Model of XML Schema")
    library.insert_element("/library/book[2]", 1, "author")
    library.insert_text("/library/book[2]/author", 0, "Novak")
    library.verify_consistency()
    print(f"  version: {library.version}, conformance: "
          f"{library.check_conformance() or 'OK'}")
    print(f"  relabels in storage: {library.engine.relabel_count} "
          "(Proposition 1)")

    print("\ntitles now (tree vs storage):")
    from_tree = library.query_values("/library/book/title")
    from_storage = [library.engine.string_value(d)
                    for d in library.query_storage(
                        "/library/book/title")]
    for tree_title, stored_title in zip(from_tree, from_storage):
        marker = "==" if tree_title == stored_title else "!!"
        print(f"  {tree_title!r} {marker} {stored_title!r}")

    # A broken transition is caught by the Section 6.2 checker.
    print("\ninserting an empty (title-less) book...")
    library.insert_element("/library", 0, "book")
    for violation in library.check_conformance():
        print(f"  {violation}")
    print("rolling back by deleting it...")
    library.delete("/library/book[1]")
    print(f"conformance: {library.check_conformance() or 'OK'}")

    # Delete an obsolete document.
    database.drop("notes")
    print(f"\nafter drop: {database!r}, documents: {database.names()}")


if __name__ == "__main__":
    main()
