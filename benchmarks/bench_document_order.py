"""ORD — document-order comparison: labels vs structural walking.

Section 9.3's purpose statement: numbering labels exist "to quickly
determine the structural relations between a pair of nodes".  This
experiment compares three ways of answering ``x << y`` and
ancestor/descendant over the same random node pairs:

* Sedna numbering labels (symbol comparison, no tree access),
* the structural parent-chain walk over the formal model,
* a precomputed document-order index (fast but invalidated by updates).

Expected shape: labels beat the structural walk by a growing factor as
documents deepen/grow; the index is fastest but must be rebuilt on
every update, which the NID experiment prices.
"""

import random

import pytest

from repro.order import DocumentOrderIndex, before as structural_before
from repro.order import iter_document_order
from repro.storage import before as label_before, is_ancestor
from benchmarks.conftest import SCALES

_PAIRS = 300


def _descriptor_pairs(engine, seed):
    descriptors = list(engine.iter_document_order())
    rng = random.Random(seed)
    return [(rng.choice(descriptors), rng.choice(descriptors))
            for _ in range(_PAIRS)]


def _node_pairs(tree, seed):
    nodes = list(iter_document_order(tree))
    rng = random.Random(seed)
    return [(rng.choice(nodes), rng.choice(nodes))
            for _ in range(_PAIRS)]


@pytest.mark.parametrize("scale", SCALES)
def test_order_via_labels(benchmark, storage_engines, scale):
    engine = storage_engines[scale]
    pairs = _descriptor_pairs(engine, seed=scale)

    def compare_all():
        return sum(1 for a, b in pairs if label_before(a.nid, b.nid))

    result = benchmark(compare_all)
    assert 0 <= result <= _PAIRS
    benchmark.extra_info["pairs"] = _PAIRS


@pytest.mark.parametrize("scale", SCALES)
def test_order_via_structural_walk(benchmark, untyped_library_trees,
                                   scale):
    tree = untyped_library_trees[scale]
    pairs = _node_pairs(tree, seed=scale)

    def compare_all():
        return sum(1 for a, b in pairs
                   if a is not b and structural_before(a, b))

    result = benchmark(compare_all)
    assert 0 <= result <= _PAIRS


@pytest.mark.parametrize("scale", SCALES)
def test_order_via_precomputed_index(benchmark, untyped_library_trees,
                                     scale):
    tree = untyped_library_trees[scale]
    pairs = _node_pairs(tree, seed=scale)
    index = DocumentOrderIndex(tree)

    def compare_all():
        return sum(1 for a, b in pairs if index.before(a, b))

    result = benchmark(compare_all)
    assert 0 <= result <= _PAIRS


@pytest.mark.parametrize("scale", SCALES)
def test_index_rebuild_cost(benchmark, untyped_library_trees, scale):
    """What the index costs after every update — the price labels avoid."""
    tree = untyped_library_trees[scale]

    def rebuild():
        return DocumentOrderIndex(tree)

    index = benchmark(rebuild)
    assert len(index) > 0


@pytest.mark.parametrize("scale", SCALES)
def test_sort_by_symbol_tuples(benchmark, storage_engines, scale):
    """Document-order sort keyed by the flattened symbol tuple — the
    pre-memoization baseline for bulk sorts of probe result sets."""
    engine = storage_engines[scale]
    descriptors = list(engine.iter_document_order())
    shuffled = list(descriptors)
    random.Random(scale).shuffle(shuffled)

    def sort_all():
        return sorted(shuffled, key=lambda d: d.nid.symbols())

    result = benchmark(sort_all)
    assert result == descriptors
    benchmark.extra_info["nodes"] = len(descriptors)


@pytest.mark.parametrize("scale", SCALES)
def test_sort_by_memoized_sort_key(benchmark, storage_engines, scale):
    """The same sort keyed by the memoized big-endian u16 bytes key
    (``NidLabel.sort_key``) the value/path indexes order postings by.
    Bytewise comparison replaces per-comparison tuple walks; the key is
    packed once per label and cached (labels are immutable, and by
    Proposition 1 never relabelled in place)."""
    engine = storage_engines[scale]
    descriptors = list(engine.iter_document_order())
    shuffled = list(descriptors)
    random.Random(scale).shuffle(shuffled)
    for descriptor in shuffled:
        descriptor.nid.sort_key()  # warm the cache: steady-state cost

    def sort_all():
        return sorted(shuffled, key=lambda d: d.nid.sort_key())

    result = benchmark(sort_all)
    assert result == descriptors
    benchmark.extra_info["nodes"] = len(descriptors)


@pytest.mark.parametrize("scale", SCALES)
def test_ancestry_via_labels(benchmark, storage_engines, scale):
    engine = storage_engines[scale]
    pairs = _descriptor_pairs(engine, seed=scale + 1)

    def check_all():
        return sum(1 for a, b in pairs if is_ancestor(a.nid, b.nid))

    benchmark(check_all)


@pytest.mark.parametrize("scale", SCALES)
def test_ancestry_via_parent_chain(benchmark, storage_engines, scale):
    engine = storage_engines[scale]
    pairs = _descriptor_pairs(engine, seed=scale + 1)

    def check_all():
        count = 0
        for a, b in pairs:
            node = b.parent
            while node is not None:
                if node is a:
                    count += 1
                    break
                node = node.parent
        return count

    result = benchmark(check_all)
    # Cross-check the two implementations agree.
    by_labels = sum(1 for a, b in pairs if is_ancestor(a.nid, b.nid))
    assert result == by_labels


@pytest.mark.parametrize("scale", SCALES)
def test_following_axis_first_result(benchmark, storage_engines, scale):
    """Label-decided following:: — time to the *first* hit from an
    early context node.  The pre-rewrite implementation materialized
    an identifier set over the whole document before yielding, so this
    number grew linearly with scale; now it tracks the block-scan
    merge's start-up cost only."""
    from repro.query import storage_following_axis

    engine = storage_engines[scale]
    library = engine.children(engine.document)[0]
    context = engine.children(library)[0]

    def first_following():
        return next(storage_following_axis(engine, context))

    result = benchmark(first_following)
    assert result is not None
    benchmark.extra_info["document_nodes"] = engine.node_count()


@pytest.mark.parametrize("scale", [10, 100])
def test_following_axis_full_drain(benchmark, storage_engines, scale):
    """Full following:: result via label comparison over the merged
    block scans."""
    from repro.query import storage_following_axis

    engine = storage_engines[scale]
    library = engine.children(engine.document)[0]
    context = engine.children(library)[0]

    def drain():
        return sum(1 for _ in storage_following_axis(engine, context))

    count = benchmark(drain)
    assert count > 0
    benchmark.extra_info["following_nodes"] = count
