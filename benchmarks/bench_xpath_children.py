"""XP — "this decision has been made to speed up the XPath execution".

Section 9.2 stores, per element, only pointers to the *first* child of
each schema child.  This experiment measures the child step and full
path queries three ways over the same stored document:

* jump via the first-child-by-schema pointer, then follow siblings,
* scan the full child list and filter by name (no schema pointers),
* descriptive-schema-driven evaluation (match the schema, scan blocks)
  versus naive per-descriptor navigation for multi-step paths.

Expected shape: the schema pointer wins on elements with many
heterogeneous children; schema-driven path evaluation wins by a
growing factor on large documents because it touches only the blocks
of the matching schema nodes.
"""

import pytest

from repro.query import StorageQueryEngine
from benchmarks.conftest import SCALES


@pytest.mark.parametrize("scale", SCALES)
def test_child_step_via_schema_pointer(benchmark, storage_engines, scale):
    engine = storage_engines[scale]
    library = engine.children(engine.document)[0]
    schema_book = engine.schema.find_path("library/book")

    def step():
        return engine.children_via_schema_pointer(library, schema_book)

    books = benchmark(step)
    assert books
    benchmark.extra_info["fanout"] = len(engine.children(library))
    benchmark.extra_info["selected"] = len(books)


@pytest.mark.parametrize("scale", SCALES)
def test_child_step_via_full_scan(benchmark, storage_engines, scale):
    engine = storage_engines[scale]
    library = engine.children(engine.document)[0]

    def step():
        return [child for child in engine.children(library)
                if child.schema_node.name is not None
                and child.schema_node.name.local == "book"]

    books = benchmark(step)
    assert books


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("path", ["/library/book/title", "//author"])
def test_path_schema_driven(benchmark, storage_engines, scale, path):
    engine = storage_engines[scale]
    queries = StorageQueryEngine(engine)

    def evaluate():
        return queries.evaluate_schema_driven(path)

    result = benchmark(evaluate)
    assert result
    benchmark.extra_info["results"] = len(result)


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("path", ["/library/book/title", "//author"])
def test_path_naive_navigation(benchmark, storage_engines, scale, path):
    engine = storage_engines[scale]
    queries = StorageQueryEngine(engine)

    def evaluate():
        return queries.evaluate_naive(path)

    result = benchmark(evaluate)
    assert result


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("path", ["/library/book/title", "//author"])
def test_path_cached_plan(benchmark, storage_engines, scale, path):
    """The same queries through the plan cache: after the first call,
    parsing and schema matching are both amortized away, leaving only
    the block scans."""
    engine = storage_engines[scale]
    queries = StorageQueryEngine(engine)
    queries.evaluate(path)  # warm the caches; the timed runs hit

    def evaluate():
        return queries.evaluate(path)

    result = benchmark(evaluate)
    assert result
    stats = queries.cache_stats()
    benchmark.extra_info["results"] = len(result)
    benchmark.extra_info["plan_hit_rate"] = round(
        stats["plan_hit_rate"], 4)
    benchmark.extra_info["parse_hit_rate"] = round(
        stats["parse_hit_rate"], 4)


@pytest.mark.parametrize("scale", [10, 100])
def test_results_agree(storage_engines, scale):
    """Correctness gate for the comparison above (not timed)."""
    engine = storage_engines[scale]
    queries = StorageQueryEngine(engine)
    for path in ("/library/book/title", "//author",
                 "/library/paper/title/text()"):
        naive = [d.nid for d in queries.evaluate_naive(path)]
        driven = [d.nid for d in queries.evaluate_schema_driven(path)]
        cached = [d.nid for d in queries.evaluate(path)]
        assert naive == driven == cached
