"""EX1-7 — the schema fragments of Examples 1-7.

Regenerates the paper's schema artifacts: each example parses into the
abstract syntax of Sections 2-3, survives a write→parse round trip,
and parsing stays linear in schema size.
"""

import pytest

from repro.schema import parse_schema, write_schema
from repro.workloads.fixtures import (
    EXAMPLE_1_SCHEMA,
    EXAMPLE_5_SCHEMA,
    EXAMPLE_6_SCHEMA,
    EXAMPLE_7_SCHEMA,
    LIBRARY_SCHEMA,
    wrap_in_schema,
)

_EXAMPLES = {
    "example1": EXAMPLE_1_SCHEMA,
    "example5": EXAMPLE_5_SCHEMA,
    "example6": EXAMPLE_6_SCHEMA,
    "example7": EXAMPLE_7_SCHEMA,
    "library": LIBRARY_SCHEMA,
}


@pytest.mark.parametrize("label", sorted(_EXAMPLES))
def test_parse_paper_example(benchmark, label):
    source = _EXAMPLES[label]
    schema = benchmark(parse_schema, source)
    assert schema.root_element is not None
    benchmark.extra_info["complex_types"] = len(schema.complex_types)


@pytest.mark.parametrize("label", ["example7", "library"])
def test_write_parse_roundtrip(benchmark, label):
    schema = parse_schema(_EXAMPLES[label])

    def roundtrip():
        return parse_schema(write_schema(schema))

    again = benchmark(roundtrip)
    assert again.root_element.name == schema.root_element.name


def _wide_schema(width: int) -> str:
    elements = "".join(
        f'<xsd:element name="f{i}" type="xsd:string"/>'
        for i in range(width))
    return wrap_in_schema(
        f'<xsd:element name="R"><xsd:complexType>'
        f'<xsd:sequence>{elements}</xsd:sequence>'
        f"</xsd:complexType></xsd:element>")


@pytest.mark.parametrize("width", [10, 100, 500])
def test_parse_scales_with_width(benchmark, width):
    source = _wide_schema(width)
    schema = benchmark(parse_schema, source)
    group = schema.root_element.type.group
    assert len(group.members) == width
    benchmark.extra_info["declarations"] = width
