"""Perf-regression comparator over ``run_all.py --json`` reports.

Diffs a fresh benchmark report against a committed baseline with
per-metric tolerances — the CI gate that keeps the numbers honest::

    PYTHONPATH=src python -m benchmarks.compare BASELINE.json FRESH.json

Exit status: ``0`` within tolerance, ``1`` regression detected, ``2``
refused (the reports are not comparable).

What gets compared depends on how comparable the two runs are, judged
from each report's ``meta`` stamp (git SHA, timestamp, interpreter,
host, scales — written by :func:`benchmarks.run_all.run_metadata`):

* **refused** outright when either report has no ``meta`` stamp or the
  ``format`` numbers differ — a diff across report layouts proves
  nothing;
* **machine-independent ratios** are compared always, over the
  (path, scale) / (case, scale) records both reports contain at
  scale >= 100 (smaller workloads are noise-floor territory): the
  cached-vs-uncached speedup and the index-vs-scan speedup must not
  drop by more than the ratio tolerance (default 25%), and the summary
  gate booleans must not flip from met to unmet (booleans are only
  compared between runs of the same kind — smoke vs full runs gate
  different scales);
* **raw numbers** — cached-route ops/sec (>20% drop fails) and the
  ``query.latency.ns`` p99 (>2x blowup fails) — are compared only when
  the interpreter and host match, since ops/sec on different hardware
  is weather, not signal.

In CI the baseline is a committed full run from another host and the
fresh report is a smoke run, so only the machine-independent ratios at
scale >= 100 actually gate there (the scale-100 index speedups); the
obs-overhead budget gates separately in CI off a fresh scale-1000
measurement.  The full scope — raw ops, p99, summary booleans — engages
when comparing same-host, same-kind runs during development.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Records below this scale are never compared: sub-100 workloads run
#: in microseconds, where fixed overheads and the timing methodology
#: (smoke runs use fewer best-of rounds) dominate the signal.
MIN_COMPARE_SCALE = 100

#: Raw ops/sec may drop by at most this fraction on the same machine.
OPS_TOLERANCE = 0.20
#: Machine-independent speedup ratios may drop by at most this much.
#: The tolerance is calibrated to the *measurement*, not the code: the
#: gated ratios (``index_vs_scan``, ``cost_vs_structural``) are medians
#: of interleaved repeats (:func:`benchmarks.run_all._median_ratio`),
#: which on an idle machine vary by a few percent run to run and by
#: ~10-15% on loaded CI hosts.  25% therefore means "a real
#: regression", with enough headroom that scheduler weather does not
#: page anyone; tighten it only together with more repeats in the
#: runner.
RATIO_TOLERANCE = 0.25
#: The query-latency p99 may grow by at most this factor.
P99_BLOWUP = 2.0

#: Summary booleans that must never flip from met to unmet between
#: two runs of the same kind (both smoke or both full).
SUMMARY_GATES = (
    "obs_overhead_under_5pct",
    "index_speedup_3x_met",
    "cost_beats_fixed",
    "ddl_invalidation_exact",
    "bulk_load_faster",
    "checkpoint_incremental_10x_met",
    "min_cached_vs_uncached_1_5x_met",
    "speedup_2x_met",
    "concurrency_zero_relabels",
    "concurrency_no_torn_reads",
    "concurrency_overload_typed",
)

#: The reader-retention ratio (solo p50 over contended p50) is noisy —
#: it measures scheduler interference, not code — so it gets a wide
#: tolerance of its own rather than :data:`RATIO_TOLERANCE`.
RETENTION_TOLERANCE = 0.5

#: ``meta`` keys that must all match before raw numbers are compared.
MACHINE_KEYS = ("python", "implementation", "machine", "system", "host")


class Refusal(Exception):
    """The two reports cannot be meaningfully compared."""


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise Refusal(f"{path}: no such report")
    except json.JSONDecodeError as error:
        raise Refusal(f"{path}: not a JSON report ({error})")


def _meta(report: dict, label: str) -> dict:
    meta = report.get("meta")
    if not isinstance(meta, dict):
        raise Refusal(
            f"{label} report carries no 'meta' stamp — regenerate it "
            "with a current benchmarks/run_all.py before comparing")
    return meta


def check_comparable(baseline: dict, fresh: dict) -> dict:
    """Raise :class:`Refusal` unless the reports can be diffed; return
    ``{"same_machine": bool, "same_kind": bool}`` describing how far
    the comparison may go."""
    base_meta = _meta(baseline, "baseline")
    fresh_meta = _meta(fresh, "fresh")
    if base_meta.get("format") != fresh_meta.get("format"):
        raise Refusal(
            f"report format mismatch: baseline is format "
            f"{base_meta.get('format')!r}, fresh is format "
            f"{fresh_meta.get('format')!r} — cross-version comparisons "
            "are refused")
    return {
        "same_machine": all(base_meta.get(key) == fresh_meta.get(key)
                            for key in MACHINE_KEYS),
        "same_kind": base_meta.get("smoke") == fresh_meta.get("smoke"),
    }


def _by_key(records, *keys):
    return {tuple(r[k] for k in keys): r for r in records}


def compare(baseline: dict, fresh: dict,
            ops_tolerance: float = OPS_TOLERANCE,
            ratio_tolerance: float = RATIO_TOLERANCE,
            p99_blowup: float = P99_BLOWUP) -> list:
    """All regressions as ``(metric, baseline, fresh, message)`` rows."""
    scope = check_comparable(baseline, fresh)
    failures = []

    def ratio_drop(name, base_value, fresh_value, tolerance):
        if base_value <= 0:
            return
        drop = 1.0 - fresh_value / base_value
        if drop > tolerance:
            failures.append((name, base_value, fresh_value,
                             f"dropped {drop:.1%} "
                             f"(tolerance {tolerance:.0%})"))

    base_records = _by_key(baseline.get("records", ()), "path", "scale")
    fresh_records = _by_key(fresh.get("records", ()), "path", "scale")
    for key in sorted(base_records.keys() & fresh_records.keys()):
        if key[1] < MIN_COMPARE_SCALE:
            continue
        base, new = base_records[key], fresh_records[key]
        label = f"{key[0]}@{key[1]}"
        ratio_drop(f"cached_vs_uncached[{label}]",
                   base["cached_vs_uncached"],
                   new["cached_vs_uncached"], ratio_tolerance)
        if scope["same_machine"]:
            ratio_drop(f"ops_cached_plan[{label}]",
                       base["ops_cached_plan"],
                       new["ops_cached_plan"], ops_tolerance)

    base_indexes = _by_key(
        baseline.get("indexes", {}).get("records", ()), "case", "scale")
    fresh_indexes = _by_key(
        fresh.get("indexes", {}).get("records", ()), "case", "scale")
    for key in sorted(base_indexes.keys() & fresh_indexes.keys()):
        if key[1] < MIN_COMPARE_SCALE:
            continue
        base, new = base_indexes[key], fresh_indexes[key]
        ratio_drop(f"index_vs_scan[{key[0]}@{key[1]}]",
                   base["index_vs_scan"], new["index_vs_scan"],
                   ratio_tolerance)

    base_cost = _by_key(
        baseline.get("cost_model", {}).get("records", ()),
        "path", "scale")
    fresh_cost = _by_key(
        fresh.get("cost_model", {}).get("records", ()),
        "path", "scale")
    for key in sorted(base_cost.keys() & fresh_cost.keys()):
        if key[1] < MIN_COMPARE_SCALE:
            continue
        base, new = base_cost[key], fresh_cost[key]
        ratio_drop(f"cost_vs_structural[{key[0]}@{key[1]}]",
                   base["cost_vs_structural"],
                   new["cost_vs_structural"], ratio_tolerance)

    base_conc = baseline.get("concurrency")
    fresh_conc = fresh.get("concurrency")
    if (isinstance(base_conc, dict) and isinstance(fresh_conc, dict)
            and all(base_conc.get(key) == fresh_conc.get(key)
                    for key in ("readers", "writers", "rounds",
                                "scale"))):
        # Same workload shape: snapshot readers must keep (most of)
        # their solo latency under writer load, machine-independently.
        ratio_drop("concurrency.reader_p50_retention",
                   base_conc.get("reader_p50_retention", 0),
                   fresh_conc.get("reader_p50_retention", 0),
                   RETENTION_TOLERANCE)

    if scope["same_machine"]:
        base_metrics = baseline.get("metrics", {})
        fresh_metrics = fresh.get("metrics", {})
        if base_metrics.get("scale") == fresh_metrics.get("scale"):
            base_p99 = base_metrics.get("registry", {}).get(
                "query.latency.ns", {})
            fresh_p99 = fresh_metrics.get("registry", {}).get(
                "query.latency.ns", {})
            if isinstance(base_p99, dict) and isinstance(fresh_p99, dict) \
                    and base_p99.get("p99", 0) > 0:
                blowup = fresh_p99.get("p99", 0) / base_p99["p99"]
                if blowup > p99_blowup:
                    failures.append((
                        "query.latency.ns.p99", base_p99["p99"],
                        fresh_p99["p99"],
                        f"blew up {blowup:.1f}x "
                        f"(tolerance {p99_blowup:.1f}x)"))

    if scope["same_kind"]:
        base_summary = baseline.get("summary", {})
        fresh_summary = fresh.get("summary", {})
        for gate in SUMMARY_GATES:
            if base_summary.get(gate) is True \
                    and fresh_summary.get(gate) is False:
                failures.append((f"summary.{gate}", True, False,
                                 "gate flipped from met to unmet"))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path,
                        help="committed BENCH_query.json")
    parser.add_argument("fresh", type=Path,
                        help="freshly generated report")
    parser.add_argument("--ops-tolerance", type=float,
                        default=OPS_TOLERANCE,
                        help="max fractional ops/sec drop (same host)")
    parser.add_argument("--ratio-tolerance", type=float,
                        default=RATIO_TOLERANCE,
                        help="max fractional speedup-ratio drop")
    parser.add_argument("--p99-blowup", type=float, default=P99_BLOWUP,
                        help="max p99 latency growth factor (same host)")
    args = parser.parse_args(argv)

    try:
        baseline = _load(args.baseline)
        fresh = _load(args.fresh)
        scope = check_comparable(baseline, fresh)
        failures = compare(baseline, fresh,
                           ops_tolerance=args.ops_tolerance,
                           ratio_tolerance=args.ratio_tolerance,
                           p99_blowup=args.p99_blowup)
    except Refusal as refusal:
        print(f"refused: {refusal}", file=sys.stderr)
        return 2

    base_meta, fresh_meta = baseline["meta"], fresh["meta"]
    print(f"baseline: {base_meta['git_sha'][:12]} "
          f"({base_meta['timestamp']}, "
          f"python {base_meta['python']} on {base_meta['host']})")
    print(f"fresh:    {fresh_meta['git_sha'][:12]} "
          f"({fresh_meta['timestamp']}, "
          f"python {fresh_meta['python']} on {fresh_meta['host']})")
    print(f"scope:    ratios"
          + (", raw ops + p99" if scope["same_machine"]
             else " only (different machine/interpreter)")
          + ("" if scope["same_kind"]
             else "; summary gates skipped (smoke vs full)"))
    if not failures:
        print("OK: no perf regression beyond tolerance")
        return 0
    print(f"FAIL: {len(failures)} regression(s):")
    for name, base_value, fresh_value, message in failures:
        print(f"  {name}: {base_value} -> {fresh_value} — {message}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
