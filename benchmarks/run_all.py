"""Standalone query-benchmark runner: naive vs schema-driven vs cached.

Times the three evaluation routes over the scaled library workload
with ``time.perf_counter`` (no pytest-benchmark dependency in the
timed loop, so the numbers are comparable across runs and machines)
and reports plan/parse cache hit rates.

Usage::

    PYTHONPATH=src python -m benchmarks.run_all            # print table
    PYTHONPATH=src python -m benchmarks.run_all --json     # + BENCH_query.json
    PYTHONPATH=src python -m benchmarks.run_all --smoke    # tiny, for tests

The ``--json`` report lands in ``BENCH_query.json`` at the repository
root (or ``--output PATH``): one record per (path, scale) with ops/sec
for each route, the cached/uncached speedup, and the cache counters;
plus one conformance-checking record per scale comparing the §6.2
checker over the two NodeStore backends (tree vs. storage).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.algebra import ConformanceChecker
from repro.mapping import document_to_tree
from repro.numbering import SednaAdapter, UpdateWorkload
from repro.query import StorageQueryEngine, clear_parse_cache
from repro.schema import parse_schema
from repro.storage import (
    StorageEngine,
    StorageNodeStore,
    TransactionManager,
    WriteAheadLog,
    checkpoint,
    recover,
)
from repro.workloads import make_library_document
from repro.workloads.fixtures import LIBRARY_SCHEMA
from repro.xdm import TreeNodeStore
from repro.xmlio.qname import QName

#: Paths covering the planner's strategies: plain scans, a multi-node
#: merge, a hybrid inner predicate, and a structurally pruned query.
QUERY_PATHS = (
    "/library/book/title",
    "//author",
    "/library/book[@year]/title",
    "//title/text()",
)

DEFAULT_SCALES = (10, 100, 1000)
SMOKE_SCALES = (10,)


def _build_engines(scales):
    engines = {}
    for scale in scales:
        engine = StorageEngine()
        engine.load_document(
            make_library_document(books=scale, papers=scale, seed=scale))
        engines[scale] = engine
    return engines


def _time_route(call, repeats, min_rounds):
    """Best-of-*repeats* timing of *min_rounds* calls → ops/sec."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(min_rounds):
            call()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / min_rounds)
    return 1.0 / best if best > 0 else float("inf")


def run(scales=DEFAULT_SCALES, repeats=5, rounds=20):
    """All (path, scale) measurements as a list of plain dicts."""
    engines = _build_engines(scales)
    records = []
    for scale in scales:
        engine = engines[scale]
        for path in QUERY_PATHS:
            clear_parse_cache()
            queries = StorageQueryEngine(engine)
            expected = [d.nid for d in queries.evaluate_naive(path)]
            assert [d.nid for d in queries.evaluate(path)] == expected
            naive_ops = _time_route(
                lambda: queries.evaluate_naive(path), repeats, rounds)
            uncached_ops = _time_route(
                lambda: queries.evaluate_schema_driven(path),
                repeats, rounds)
            cached_ops = _time_route(
                lambda: queries.evaluate(path), repeats, rounds)
            stats = queries.cache_stats()
            records.append({
                "path": path,
                "scale": scale,
                "results": len(expected),
                "ops_naive": round(naive_ops, 1),
                "ops_schema_driven": round(uncached_ops, 1),
                "ops_cached_plan": round(cached_ops, 1),
                "cached_vs_uncached": round(cached_ops / uncached_ops, 2),
                "cached_vs_naive": round(cached_ops / naive_ops, 2),
                "plan_hit_rate": round(stats["plan_hit_rate"], 4),
                "parse_hit_rate": round(stats["parse_hit_rate"], 4),
                "plan_invalidations": stats["plan_invalidations"],
            })
    return records


def run_conformance(scales=DEFAULT_SCALES, repeats=3, rounds=3):
    """§6.2 conformance checking through the NodeStore protocol, over
    both backends: the state-algebra tree vs. the Sedna storage (with
    per-schema-node type annotations).  One record per scale."""
    schema = parse_schema(LIBRARY_SCHEMA)
    records = []
    for scale in scales:
        document = make_library_document(books=scale, papers=scale,
                                         seed=scale)
        tree = document_to_tree(document, schema)
        engine = StorageEngine()
        engine.load_tree(tree)
        tree_store = TreeNodeStore(tree)
        storage_store = StorageNodeStore.typed(engine, schema)
        checker = ConformanceChecker(schema)
        assert checker.check_store(tree_store) == []
        assert checker.check_store(storage_store) == []
        ops_tree = _time_route(
            lambda: checker.check_store(tree_store), repeats, rounds)
        ops_storage = _time_route(
            lambda: checker.check_store(storage_store), repeats, rounds)
        records.append({
            "scale": scale,
            "nodes": engine.node_count(),
            "ops_tree_store": round(ops_tree, 1),
            "ops_storage_store": round(ops_storage, 1),
            "tree_vs_storage": round(ops_tree / ops_storage, 2),
        })
    return records


def run_metrics(scale=10, workload_operations=100):
    """One instrumented (untimed) pass with observability on: the
    benchmark queries evaluated cold + warm for their EXPLAIN records,
    plus a Sedna-scheme update workload whose relabel counter the
    report asserts is zero (Proposition 1)."""
    obs.reset()
    obs.enable()
    try:
        clear_parse_cache()
        engine = StorageEngine()
        engine.load_document(
            make_library_document(books=scale, papers=scale, seed=scale))
        queries = StorageQueryEngine(engine)
        explains = []
        for path in QUERY_PATHS:
            queries.evaluate(path)   # cold: plan-cache miss
            queries.evaluate(path)   # warm: plan-cache hit
            explains.append(obs.EXPLAINS.last().as_dict())
        stats = UpdateWorkload(operations=workload_operations,
                               seed=0).run(SednaAdapter, verify=False)
        snapshot = obs.snapshot()
        return {
            "scale": scale,
            "registry": snapshot,
            "query_explains": explains,
            "numbering_workload": {
                "scheme": stats.scheme,
                "operations": stats.operations,
                "inserts": stats.inserts,
                "deletes": stats.deletes,
                "relabels": stats.relabels,
                "relabels_per_op": stats.relabels_per_op,
            },
        }
    finally:
        obs.disable()
        obs.reset()


def _durability_workload(engine, operations):
    """Insert *operations* text-bearing ``author`` elements across the
    library's books — every insert is a logged engine mutation."""
    root = engine.children(engine.document)[0]
    books = [child for child in engine.children(root)
             if engine.node_name(child) is not None
             and engine.node_name(child).local == "book"]
    for op in range(operations):
        book = books[op % len(books)]
        author = engine.insert_child(book, 1, name=QName("", "author"))
        engine.insert_child(author, 0, text=f"Writer {op}")


def run_durability(scale=100, operations=200):
    """WAL overhead and recovery time over the library workload.

    The same autocommitted insert workload runs three ways — no log,
    WAL without per-record fsync, WAL with fsync — then a checkpoint +
    post-checkpoint mutations + :func:`recover` measure the restart
    path.  One record."""

    def fresh():
        engine = StorageEngine()
        engine.load_document(make_library_document(
            books=scale, papers=scale, seed=scale))
        return engine

    def timed(call):
        start = time.perf_counter()
        call()
        return time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)

        plain_engine = fresh()
        plain_s = timed(lambda: _durability_workload(plain_engine,
                                                     operations))

        wal_engine = fresh()
        wal = WriteAheadLog(tmp / "nosync.wal", sync=False)
        TransactionManager(wal_engine, wal)
        wal_s = timed(lambda: _durability_workload(wal_engine,
                                                   operations))
        wal_records, wal_bytes = wal.appends, wal.bytes_written
        wal.close()

        fsync_engine = fresh()
        fsync_wal = WriteAheadLog(tmp / "sync.wal", sync=True)
        TransactionManager(fsync_engine, fsync_wal)
        fsync_s = timed(lambda: _durability_workload(fsync_engine,
                                                     operations))
        fsync_wal.close()

        rec_engine = fresh()
        rec_wal = WriteAheadLog(tmp / "rec.wal", sync=False)
        TransactionManager(rec_engine, rec_wal)
        image = tmp / "rec.img"
        checkpoint_s = timed(lambda: checkpoint(rec_engine, image,
                                                wal=rec_wal))
        image_bytes = image.stat().st_size
        _durability_workload(rec_engine, operations)
        rec_wal.close()
        start = time.perf_counter()
        result = recover(image, tmp / "rec.wal")
        recovery_s = time.perf_counter() - start
        assert result.relabels == 0
        assert result.engine.node_count() == rec_engine.node_count()

    return {
        "scale": scale,
        "operations": operations,
        "ops_plain": round(operations / plain_s, 1),
        "ops_wal": round(operations / wal_s, 1),
        "ops_wal_fsync": round(operations / fsync_s, 1),
        "wal_overhead": round(wal_s / plain_s, 2),
        "wal_fsync_overhead": round(fsync_s / plain_s, 2),
        "wal_records": wal_records,
        "wal_bytes": wal_bytes,
        "checkpoint_seconds": round(checkpoint_s, 6),
        "image_bytes": image_bytes,
        "recovery_seconds": round(recovery_s, 6),
        "recovery_replayed": result.replayed,
        "recovery_relabels": result.relabels,
    }


def _print_durability(record):
    print(f"\ndurability (WAL + recovery, scale {record['scale']}, "
          f"{record['operations']} ops):")
    print(f"  inserts/sec plain      {record['ops_plain']:>12.0f}")
    print(f"  inserts/sec wal        {record['ops_wal']:>12.0f} "
          f"({record['wal_overhead']:.2f}x of plain)")
    print(f"  inserts/sec wal+fsync  {record['ops_wal_fsync']:>12.0f} "
          f"({record['wal_fsync_overhead']:.2f}x of plain)")
    print(f"  wal: {record['wal_records']} records, "
          f"{record['wal_bytes']} bytes")
    print(f"  checkpoint: {record['checkpoint_seconds']*1000:.1f} ms "
          f"({record['image_bytes']} bytes)")
    print(f"  recovery:   {record['recovery_seconds']*1000:.1f} ms "
          f"({record['recovery_replayed']} records replayed, "
          f"{record['recovery_relabels']} relabels)")


def _print_metrics(metrics):
    registry = metrics["registry"]
    workload = metrics["numbering_workload"]
    print(f"\nmetrics (observability pass, scale {metrics['scale']}):")
    for name in sorted(registry):
        print(f"  {name:44s} {registry[name]}")
    print(f"  numbering workload: {workload['operations']} ops on "
          f"{workload['scheme']} -> {workload['relabels']} relabels")


def _print_table(records):
    header = (f"{'path':32} {'scale':>5} {'naive':>10} "
              f"{'schema':>10} {'cached':>10} {'speedup':>8}")
    print(header)
    print("-" * len(header))
    for r in records:
        print(f"{r['path']:32} {r['scale']:>5} "
              f"{r['ops_naive']:>10.0f} {r['ops_schema_driven']:>10.0f} "
              f"{r['ops_cached_plan']:>10.0f} "
              f"{r['cached_vs_uncached']:>7.2f}x")


def _print_conformance_table(records):
    header = (f"\n{'conformance (VAL, §6.2)':24} {'scale':>6} "
              f"{'nodes':>7} {'tree':>10} {'storage':>10} {'ratio':>7}")
    print(header)
    print("-" * len(header))
    for r in records:
        print(f"{'check_store ops/sec':24} {r['scale']:>6} "
              f"{r['nodes']:>7} {r['ops_tree_store']:>10.0f} "
              f"{r['ops_storage_store']:>10.0f} "
              f"{r['tree_vs_storage']:>6.2f}x")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_query.json")
    parser.add_argument("--output", type=Path, default=None,
                        help="where to write the JSON report")
    parser.add_argument("--smoke", action="store_true",
                        help="single tiny scale, few rounds (for CI)")
    args = parser.parse_args(argv)

    if args.smoke:
        records = run(scales=SMOKE_SCALES, repeats=2, rounds=5)
        conformance = run_conformance(scales=SMOKE_SCALES,
                                      repeats=2, rounds=2)
        metrics = run_metrics(scale=SMOKE_SCALES[0],
                              workload_operations=50)
        durability = run_durability(scale=SMOKE_SCALES[0],
                                    operations=40)
    else:
        records = run()
        conformance = run_conformance()
        metrics = run_metrics(scale=100)
        durability = run_durability(scale=100, operations=400)
    _print_table(records)
    _print_conformance_table(conformance)
    _print_durability(durability)
    _print_metrics(metrics)

    if args.json or args.output is not None:
        output = args.output or \
            Path(__file__).resolve().parent.parent / "BENCH_query.json"
        speedups = [r["cached_vs_uncached"] for r in records]
        report = {
            "experiment": "query plan compilation + caching (XP/§9.2)",
            "query_paths": list(QUERY_PATHS),
            "records": records,
            "conformance_records": conformance,
            "durability": durability,
            "metrics": metrics,
            "summary": {
                "max_cached_vs_uncached": max(speedups),
                "min_cached_vs_uncached": min(speedups),
                # The caching layer removes parse + planning cost; on
                # queries where that cost is a visible fraction of the
                # work (small or structurally filtered results), the
                # cached plan must be at least twice as fast.  Large
                # full-scan results converge to 1x by construction —
                # both routes do the identical block scan.
                "speedup_2x_met": max(speedups) >= 2.0,
                "speedup_2x_per_scale": {
                    str(scale): max(r["cached_vs_uncached"]
                                    for r in records
                                    if r["scale"] == scale) >= 2.0
                    for scale in sorted({r["scale"] for r in records})
                },
            },
        }
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {output}")
    return records


if __name__ == "__main__":
    main()
