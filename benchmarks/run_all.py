"""Standalone query-benchmark runner: naive vs schema-driven vs cached.

Times the three evaluation routes over the scaled library workload
with ``time.perf_counter`` (no pytest-benchmark dependency in the
timed loop, so the numbers are comparable across runs and machines)
and reports plan/parse cache hit rates.

Usage::

    PYTHONPATH=src python -m benchmarks.run_all            # print table
    PYTHONPATH=src python -m benchmarks.run_all --json     # + BENCH_query.json
    PYTHONPATH=src python -m benchmarks.run_all --smoke    # tiny, for tests

The ``--json`` report lands in ``BENCH_query.json`` at the repository
root (or ``--output PATH``): one record per (path, scale) with ops/sec
for each route, the cached/uncached speedup, and the cache counters;
plus one conformance-checking record per scale comparing the §6.2
checker over the two NodeStore backends (tree vs. storage).
"""

from __future__ import annotations

import argparse
import cProfile
import datetime
import io
import json
import platform
import pstats
import subprocess
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.algebra import ConformanceChecker
from repro.mapping import document_to_tree
from repro.numbering import SednaAdapter, UpdateWorkload
from repro.query import StorageQueryEngine, clear_parse_cache
from repro.schema import parse_schema
from repro.storage import (
    FileBackend,
    SqliteBackend,
    StorageEngine,
    StorageNodeStore,
    TransactionManager,
    WriteAheadLog,
    bulk_load,
    checkpoint,
    recover,
)
from repro.workloads import make_library_document
from repro.workloads.fixtures import LIBRARY_SCHEMA
from repro.xdm import TreeNodeStore
from repro.xmlio.nodes import XmlDocument, XmlElement, XmlText
from repro.xmlio.qname import QName

#: Paths covering the planner's strategies: plain scans, a multi-node
#: merge, a hybrid inner predicate, and a structurally pruned query.
QUERY_PATHS = (
    "/library/book/title",
    "//author",
    "/library/book[@year]/title",
    "//title/text()",
)

#: Bumped when the report layout changes shape; ``benchmarks.compare``
#: refuses to diff reports with different format numbers.
BENCH_FORMAT = 2

DEFAULT_SCALES = (10, 100, 1000)
SMOKE_SCALES = (10,)
#: The indexes section must include a scale >= 100 even in smoke mode
#: (CI gates on the value-probe speedup at that scale).
INDEX_SCALES = (10, 100, 1000)
INDEX_SMOKE_SCALES = (10, 100)


def _build_engines(scales):
    engines = {}
    for scale in scales:
        engine = StorageEngine()
        engine.load_document(
            make_library_document(books=scale, papers=scale, seed=scale,
                                  year_attrs=True))
        engines[scale] = engine
    return engines


def _elapsed(call, rounds):
    """Seconds per call over one batch of *rounds* calls."""
    start = time.perf_counter()
    for _ in range(rounds):
        call()
    return (time.perf_counter() - start) / rounds


def _time_route(call, repeats, min_rounds):
    """Best-of-*repeats* timing of *min_rounds* calls → ops/sec."""
    best = float("inf")
    for _ in range(repeats):
        best = min(best, _elapsed(call, min_rounds))
    return 1.0 / best if best > 0 else float("inf")


def _median_ratio(fast_call, slow_call, repeats, rounds):
    """Median-of-*repeats* *interleaved* speedup of *fast_call* over
    *slow_call* (``> 1`` means *fast_call* wins).

    Two best-of measurements taken back to back see different machine
    states (CPU frequency, cache pressure from the other route), so a
    ratio of two best-of numbers is noisy exactly when the gate on it
    is tight.  Each repeat therefore samples in an **ABBA pattern**
    (fast, slow, slow, fast) and takes the per-route minimum: the
    first batch of a pair doubles as frequency/cache warmup for the
    second, so a plain AB interleave systematically penalizes
    whichever route runs first — measured at up to 24% on two
    *identical* compiled plans.  ABBA gives each route one
    already-warm slot per repeat, and the median across repeats throws
    away the outlier repeats (GC pauses, scheduler preemption) that
    best-of would keep.
    """
    ratios = []
    for _ in range(repeats):
        fast = _elapsed(fast_call, rounds)
        slow = min(_elapsed(slow_call, rounds),
                   _elapsed(slow_call, rounds))
        fast = min(fast, _elapsed(fast_call, rounds))
        ratios.append(slow / fast if fast > 0 else float("inf"))
    ratios.sort()
    return ratios[len(ratios) // 2]


def run(scales=DEFAULT_SCALES, repeats=5, rounds=20):
    """All (path, scale) measurements as a list of plain dicts."""
    engines = _build_engines(scales)
    records = []
    for scale in scales:
        engine = engines[scale]
        for path in QUERY_PATHS:
            clear_parse_cache()
            queries = StorageQueryEngine(engine)
            expected = [d.nid for d in queries.evaluate_naive(path)]
            if not expected:
                raise SystemExit(
                    f"benchmark query {path!r} returned 0 results at "
                    f"scale {scale}: the workload no longer exercises "
                    "it — fix the fixture instead of timing a no-op")
            assert [d.nid for d in queries.evaluate(path)] == expected
            naive_ops = _time_route(
                lambda: queries.evaluate_naive(path), repeats, rounds)
            uncached_ops = _time_route(
                lambda: queries.evaluate_schema_driven(path),
                repeats, rounds)
            cached_ops = _time_route(
                lambda: queries.evaluate(path), repeats, rounds)
            # Split accounting: the cached route is (plan-cache lookup)
            # + (closure-chain execution).  Timing each part alone
            # keeps the headline cached_vs_uncached honest — earlier
            # revisions folded the lookup into the execution number,
            # which at large scales hid where the time actually went.
            plan = queries.compile(path)
            lookup_ops = _time_route(
                lambda: queries.compile(path), repeats, rounds)
            exec_ops = _time_route(
                lambda: plan.execute_compiled(queries), repeats, rounds)
            stats = queries.cache_stats()
            records.append({
                "path": path,
                "scale": scale,
                "results": len(expected),
                "ops_naive": round(naive_ops, 1),
                "ops_schema_driven": round(uncached_ops, 1),
                "ops_cached_plan": round(cached_ops, 1),
                "ops_plan_lookup": round(lookup_ops, 1),
                "ops_compiled_exec": round(exec_ops, 1),
                "lookup_share": round(
                    (1.0 / lookup_ops) / (1.0 / cached_ops), 4),
                "cached_vs_uncached": round(cached_ops / uncached_ops, 2),
                "cached_vs_naive": round(cached_ops / naive_ops, 2),
                "plan_hit_rate": round(stats["plan_hit_rate"], 4),
                "parse_hit_rate": round(stats["parse_hit_rate"], 4),
                "plan_invalidations": stats["plan_invalidations"],
            })
    return records


def run_profile(scale=1000, rounds=50, top=20):
    """cProfile the warm cached route, one dump per query group.

    Each benchmark path gets its own profile (the executor is warmed
    first, so the dump shows the steady-state closure chain, not the
    one-time lowering) with the top-*top* functions by cumulative time
    — the tool that found the per-step dispatch this layer removed.
    """
    engine = _build_engines((scale,))[scale]
    queries = StorageQueryEngine(engine)
    for path in QUERY_PATHS:
        queries.evaluate(path)  # warm: lower the closure chain
        profiler = cProfile.Profile()
        profiler.enable()
        for _ in range(rounds):
            queries.evaluate(path)
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(top)
        print(f"\nprofile [{path}] scale {scale}, {rounds} warm "
              f"evaluations, top {top} by cumulative time:")
        for line in stream.getvalue().splitlines():
            if line.strip():
                print(f"  {line}")


def run_indexes(scales=INDEX_SCALES, repeats=5, rounds=20):
    """Secondary-index speedups: typed-value probes and the path-index
    merge against the same queries on an index-free engine.

    Each scale loads the identical document twice — once plain, once
    with a ``@year`` integer value index and an ``//author`` path
    index — and times the cached ``evaluate`` route on both.  Parity
    with the naive evaluator is asserted per case, and each record
    captures the EXPLAIN strategy (``index``) and the index it used.

    The gated ``index_vs_scan`` ratio is a **median of interleaved
    repeats** (:func:`_median_ratio`), not a quotient of the two
    best-of ops numbers: the ``index_speedup_3x_met`` gate sits right
    at 3x on the smallest gated scale, and back-to-back best-of
    quotients flapped it on noisy CI machines.  The best-of ops/sec
    columns are kept for display.
    """
    records = []
    for scale in scales:
        document = make_library_document(books=scale, papers=scale,
                                         seed=scale, year_attrs=True)
        scan_engine = StorageEngine()
        scan_engine.load_document(document)
        indexed_engine = StorageEngine()
        indexed_engine.load_document(document)
        indexed_engine.create_index("library/book/@year",
                                    value_type="integer")
        indexed_engine.create_index("//author", kind="path")
        # The generator's deterministic year of book 0 at this scale.
        year = 1970 + scale % 36
        cases = (
            ("value-eq", f"/library/book[@year='{year}']/title"),
            ("value-exists", "/library/book[@year]"),
            ("path-merge", "//author"),
        )
        scan_queries = StorageQueryEngine(scan_engine)
        indexed_queries = StorageQueryEngine(indexed_engine)
        for case, path in cases:
            clear_parse_cache()
            expected = [d.nid.symbols()
                        for d in indexed_queries.evaluate_naive(path)]
            if not expected:
                raise SystemExit(
                    f"index benchmark case {case!r} ({path!r}) returned "
                    f"0 results at scale {scale} — fix the fixture")
            assert [d.nid.symbols()
                    for d in indexed_queries.evaluate(path)] == expected
            assert [d.nid.symbols()
                    for d in scan_queries.evaluate(path)] == expected
            ops_scan = _time_route(
                lambda: scan_queries.evaluate(path), repeats, rounds)
            ops_index = _time_route(
                lambda: indexed_queries.evaluate(path), repeats, rounds)
            ratio = _median_ratio(
                lambda: indexed_queries.evaluate(path),
                lambda: scan_queries.evaluate(path),
                max(repeats, 5), max(rounds, 20))
            obs.reset()
            obs.enable()
            try:
                indexed_queries.evaluate(path)
                explain = obs.EXPLAINS.last().as_dict()
            finally:
                obs.disable()
                obs.reset()
            records.append({
                "case": case,
                "path": path,
                "scale": scale,
                "results": len(expected),
                "ops_scan": round(ops_scan, 1),
                "ops_index": round(ops_index, 1),
                "index_vs_scan": round(ratio, 2),
                "strategy": explain["strategy"],
                "index_used": explain["index_used"],
            })
    return records


#: The cost section's corpus: the fixed structural precedence and the
#: cost-based choice agree on most of these (the "never slower" side
#: of the gate) and disagree on the two-predicate showcase, where the
#: structural planner probes the unselective ``[@year]`` exists-
#: predicate while the cost model prices the second predicate's
#: eq-probe far cheaper (the "beats every fixed policy" side).
COST_QUERY_PATHS = (
    "/library/book/title",
    "//author",
    "/library/book[@year]/title",
    "/library/book[@year='{year}']/title",
    "/library/book[@year][@year='{year}']/title",
)

#: Every fixed planning policy the cost-based planner races against.
COST_FIXED_POLICIES = ("structural", "scan", "naive")


def run_cost(scales=INDEX_SCALES, repeats=5, rounds=20):
    """Cost-based planning vs every fixed policy, on one store.

    Per (path, scale): four engines share one indexed
    :class:`StorageEngine`, differing only in ``planner_policy`` —
    ``cost`` (the default) against each of
    :data:`COST_FIXED_POLICIES`.  Parity is asserted, then the cached
    route is timed per policy, and the per-policy speedups of the
    cost route are taken as medians of interleaved repeats
    (:func:`_median_ratio`) because the ``cost_beats_fixed`` gate
    reads them directly.
    """
    records = []
    for scale in scales:
        document = make_library_document(books=scale, papers=scale,
                                         seed=scale, year_attrs=True)
        engine = StorageEngine()
        engine.load_document(document)
        engine.create_index("library/book/@year", value_type="integer")
        engine.create_index("//author", kind="path")
        # The generator's deterministic year of book 0 at this scale.
        year = 1970 + scale % 36
        cost_queries = StorageQueryEngine(engine)
        fixed_queries = {
            policy: StorageQueryEngine(engine, planner_policy=policy)
            for policy in COST_FIXED_POLICIES}
        for template in COST_QUERY_PATHS:
            path = template.format(year=year)
            clear_parse_cache()
            expected = [d.nid.symbols()
                        for d in cost_queries.evaluate_naive(path)]
            if not expected:
                raise SystemExit(
                    f"cost benchmark query {path!r} returned 0 results "
                    f"at scale {scale} — fix the fixture")
            assert [d.nid.symbols()
                    for d in cost_queries.evaluate(path)] == expected
            for queries in fixed_queries.values():
                assert [d.nid.symbols()
                        for d in queries.evaluate(path)] == expected
            ops = {"cost": _time_route(
                lambda: cost_queries.evaluate(path), repeats, rounds)}
            ratios = {}
            for policy, queries in fixed_queries.items():
                ops[policy] = _time_route(
                    lambda: queries.evaluate(path), repeats, rounds)
                # The structural ratio feeds the tight (>= 0.9) side
                # of the gate, so its samples get a floor of 20
                # rounds; the scan/naive ratios sit far from any
                # threshold and keep the cheap sampling.
                ratios[policy] = _median_ratio(
                    lambda: cost_queries.evaluate(path),
                    lambda: queries.evaluate(path),
                    max(repeats, 5),
                    max(rounds, 20) if policy == "structural"
                    else rounds)
            plan = cost_queries.compile(path)
            records.append({
                "path": path,
                "scale": scale,
                "results": len(expected),
                "ops_cost": round(ops["cost"], 1),
                "ops_structural": round(ops["structural"], 1),
                "ops_scan_policy": round(ops["scan"], 1),
                "ops_naive_policy": round(ops["naive"], 1),
                "cost_vs_structural": round(ratios["structural"], 2),
                "cost_vs_scan_policy": round(ratios["scan"], 2),
                "cost_vs_naive_policy": round(ratios["naive"], 2),
                "beats_every_fixed": all(
                    ratio > 1.0 for ratio in ratios.values()),
                "strategy": plan.strategy,
                "index_used": plan.index_used,
                "cost_total": (round(plan.cost.total, 1)
                               if plan.cost is not None else None),
                "candidates_priced": len(plan.cost_table),
            })
    return records


def cost_gate(records):
    """The two-sided ``cost_beats_fixed`` contract over the cost
    section's records: the cost-based planner must win outright
    somewhere, and it must never be materially (>10%) slower than the
    fixed structural precedence it replaced — anywhere.

    Both sides read only records at scale >= 100, mirroring
    ``benchmarks.compare.MIN_COMPARE_SCALE``: sub-100 workloads run in
    microseconds, where a 10% margin on two *identical* compiled
    plans is pure scheduler weather."""
    gated = [r for r in records if r["scale"] >= 100]
    any_win = any(r["beats_every_fixed"] for r in gated)
    never_slower = all(r["cost_vs_structural"] >= 0.9 for r in gated)
    return {
        "any_query_beats_every_fixed": any_win,
        "never_slower_than_structural_10pct": never_slower,
        "cost_beats_fixed": any_win and never_slower,
    }


def ddl_invalidation_check(scale=50):
    """CREATE INDEX must invalidate exactly the cached plans whose
    decision it changes and restamp (keep) every other plan."""
    clear_parse_cache()
    engine = StorageEngine()
    engine.load_document(make_library_document(
        books=scale, papers=0, seed=7, year_attrs=True))
    queries = StorageQueryEngine(engine)
    affected = "/library/book[@year]/title"
    unaffected = "/library/book/title"
    queries.evaluate(affected)
    queries.evaluate(unaffected)
    before = queries.cache_stats()
    engine.create_index("library/book/@year", value_type="integer")
    affected_plan = queries.compile(affected)
    unaffected_plan = queries.compile(unaffected)
    after = queries.cache_stats()
    invalidations = (after["plan_invalidations"]
                     - before["plan_invalidations"])
    hits = after["plan_hits"] - before["plan_hits"]
    return {
        "affected_path": affected,
        "unaffected_path": unaffected,
        "affected_strategy": affected_plan.strategy,
        "unaffected_strategy": unaffected_plan.strategy,
        "invalidations_delta": invalidations,
        "hits_delta": hits,
        # Exactness, both directions: the one affected plan was
        # invalidated, the one unaffected plan survived as a hit.
        "exactly_affected_invalidated": (
            invalidations == 1 and affected_plan.strategy == "index"),
        "unaffected_restamped": (
            hits == 1 and unaffected_plan.strategy == "scan"),
    }


def run_conformance(scales=DEFAULT_SCALES, repeats=3, rounds=3):
    """§6.2 conformance checking through the NodeStore protocol, over
    both backends: the state-algebra tree vs. the Sedna storage (with
    per-schema-node type annotations).  One record per scale."""
    schema = parse_schema(LIBRARY_SCHEMA)
    records = []
    for scale in scales:
        document = make_library_document(books=scale, papers=scale,
                                         seed=scale)
        tree = document_to_tree(document, schema)
        engine = StorageEngine()
        engine.load_tree(tree)
        tree_store = TreeNodeStore(tree)
        storage_store = StorageNodeStore.typed(engine, schema)
        checker = ConformanceChecker(schema)
        assert checker.check_store(tree_store) == []
        assert checker.check_store(storage_store) == []
        ops_tree = _time_route(
            lambda: checker.check_store(tree_store), repeats, rounds)
        ops_storage = _time_route(
            lambda: checker.check_store(storage_store), repeats, rounds)
        records.append({
            "scale": scale,
            "nodes": engine.node_count(),
            "ops_tree_store": round(ops_tree, 1),
            "ops_storage_store": round(ops_storage, 1),
            "tree_vs_storage": round(ops_tree / ops_storage, 2),
        })
    return records


def run_metrics(scale=10, workload_operations=100):
    """One instrumented (untimed) pass with observability on: the
    benchmark queries evaluated cold + warm for their EXPLAIN records,
    plus a Sedna-scheme update workload whose relabel counter the
    report asserts is zero (Proposition 1)."""
    obs.reset()
    obs.enable()
    try:
        clear_parse_cache()
        engine = StorageEngine()
        engine.load_document(
            make_library_document(books=scale, papers=scale, seed=scale,
                                  year_attrs=True))
        queries = StorageQueryEngine(engine)
        explains = []
        for path in QUERY_PATHS:
            queries.evaluate(path)   # cold: plan-cache miss
            queries.evaluate(path)   # warm: plan-cache hit
            explains.append(obs.EXPLAINS.last().as_dict())
        stats = UpdateWorkload(operations=workload_operations,
                               seed=0).run(SednaAdapter, verify=False)
        snapshot = obs.snapshot()
        return {
            "scale": scale,
            "registry": snapshot,
            "query_explains": explains,
            "numbering_workload": {
                "scheme": stats.scheme,
                "operations": stats.operations,
                "inserts": stats.inserts,
                "deletes": stats.deletes,
                "relabels": stats.relabels,
                "relabels_per_op": stats.relabels_per_op,
            },
        }
    finally:
        obs.disable()
        obs.reset()


def run_metadata(scales, smoke):
    """Provenance stamp for the JSON report: ``benchmarks.compare``
    refuses to diff raw numbers across interpreters or machines, and
    refuses entirely across report formats."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True,
            text=True, timeout=10,
            cwd=Path(__file__).resolve().parent).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = ""
    return {
        "format": BENCH_FORMAT,
        "git_sha": sha or "unknown",
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "host": platform.node(),
        "scales": list(scales),
        "smoke": bool(smoke),
    }


def run_obs_overhead(scale=1000, repeats=5, rounds=20):
    """Measured cost of the always-on telemetry tier.

    The cached (plan-cache hit) route is timed twice per benchmark
    path — with ``repro.obs.TELEMETRY`` forced off, then restored on —
    and the report gates on the aggregate slowdown staying under 5%.
    This is the number that justifies shipping telemetry enabled by
    default."""
    engine = _build_engines((scale,))[scale]
    clear_parse_cache()
    queries = StorageQueryEngine(engine)
    records = []
    total_off = 0.0
    total_on = 0.0
    for path in QUERY_PATHS:
        queries.evaluate(path)  # warm the plan cache
        # Interleave the off/on passes so machine drift (frequency
        # scaling, background load) hits both sides, not one.
        best_off = float("inf")
        best_on = float("inf")
        try:
            for _ in range(repeats):
                obs.set_telemetry(False)
                start = time.perf_counter()
                for _ in range(rounds):
                    queries.evaluate(path)
                best_off = min(best_off,
                               (time.perf_counter() - start) / rounds)
                obs.set_telemetry(True)
                start = time.perf_counter()
                for _ in range(rounds):
                    queries.evaluate(path)
                best_on = min(best_on,
                              (time.perf_counter() - start) / rounds)
        finally:
            obs.set_telemetry(True)
        ops_off = 1.0 / best_off
        ops_on = 1.0 / best_on
        total_off += best_off
        total_on += best_on
        records.append({
            "path": path,
            "ops_telemetry_off": round(ops_off, 1),
            "ops_telemetry_on": round(ops_on, 1),
            "overhead_pct": round((ops_off / ops_on - 1.0) * 100, 2),
        })
    overhead = total_on / total_off - 1.0
    obs.reset()  # drop the samples this untracked pass accumulated
    return {
        "scale": scale,
        "records": records,
        "overhead_pct": round(overhead * 100, 2),
        "under_5pct": overhead < 0.05,
    }


def _durability_workload(engine, operations):
    """Insert *operations* text-bearing ``author`` elements across the
    library's books — every insert is a logged engine mutation."""
    root = engine.children(engine.document)[0]
    books = [child for child in engine.children(root)
             if engine.node_name(child) is not None
             and engine.node_name(child).local == "book"]
    for op in range(operations):
        book = books[op % len(books)]
        author = engine.insert_child(book, 1, name=QName("", "author"))
        engine.insert_child(author, 0, text=f"Writer {op}")


def _insert_subtree(engine, parent_descriptor, element):
    """Reproduce *element*'s content through the logged per-node
    mutation paths (the incremental contrast to ``bulk_load``)."""
    for name, value in element.attributes.items():
        engine.set_attribute(parent_descriptor, name, value)
    for index, child in enumerate(element.children):
        if isinstance(child, XmlText):
            engine.insert_child(parent_descriptor, index,
                                text=child.text)
        else:
            descriptor = engine.insert_child(parent_descriptor, index,
                                             name=child.name)
            _insert_subtree(engine, descriptor, child)


def _bulk_load_comparison(tmp, scale):
    """The bulk-load fast path (one logical LOAD record + implicit
    checkpoint, deferred index build) vs building the same document
    through per-node autocommitted WAL records + a checkpoint."""
    document = make_library_document(books=scale, papers=scale,
                                     seed=scale)

    incremental_engine = StorageEngine()
    incremental_engine.load_document(
        XmlDocument(XmlElement(QName("", "library"))))
    incremental_wal = WriteAheadLog(tmp / "incr.wal", sync=False)
    TransactionManager(incremental_engine, incremental_wal)

    def incremental():
        root = incremental_engine.children(
            incremental_engine.document)[0]
        for index, child in enumerate(document.root.children):
            descriptor = incremental_engine.insert_child(
                root, index, name=child.name)
            _insert_subtree(incremental_engine, descriptor, child)
        checkpoint(incremental_engine, tmp / "incr.img",
                   wal=incremental_wal)

    start = time.perf_counter()
    incremental()
    incremental_seconds = time.perf_counter() - start
    incremental_records = incremental_wal.appends
    incremental_wal.close()

    bulk_engine = StorageEngine()
    bulk_wal = WriteAheadLog(tmp / "bulk.wal", sync=False)
    TransactionManager(bulk_engine, bulk_wal)
    start = time.perf_counter()
    stats = bulk_load(bulk_engine, document, tmp / "bulk.img", bulk_wal)
    bulk_seconds = time.perf_counter() - start
    bulk_wal.close()

    assert bulk_engine.node_count() == incremental_engine.node_count()
    result = recover(tmp / "bulk.img", tmp / "bulk.wal")
    assert result.engine.node_count() == bulk_engine.node_count()
    assert result.relabels == 0
    return {
        "nodes": stats["nodes"],
        "incremental_seconds": round(incremental_seconds, 6),
        "bulk_seconds": round(bulk_seconds, 6),
        "bulk_vs_incremental": round(
            incremental_seconds / bulk_seconds, 2),
        "incremental_wal_records": incremental_records,
        "bulk_wal_records": stats["wal_records"],
    }


def _checkpoint_mode_comparison(tmp, scale, batches=5, operations=10):
    """Incremental checkpoints (dirty-block upsert into SQLite) vs
    monolithic ones (full-image rewrite) over the same mutation stream.

    Both backends seed a full snapshot of the scale-*scale* library,
    then each small mutation batch is checkpointed both ways.  The
    incremental path rewrites only the touched blocks, so its cost
    tracks the batch size while the monolithic path re-serializes
    every descriptor; the ratio is the point of the SQLite backend."""
    engine = StorageEngine()
    engine.load_document(make_library_document(books=scale,
                                               papers=scale,
                                               seed=scale))
    sqlite_backend = SqliteBackend(tmp / "ckpt.db")
    monolithic_backend = FileBackend(tmp / "ckpt.img")
    sqlite_backend.checkpoint(engine)
    monolithic_backend.checkpoint(engine)

    incremental_s = 0.0
    monolithic_s = 0.0
    dirty_blocks = 0
    for _ in range(batches):
        _durability_workload(engine, operations)
        dirty_blocks += engine.checkpoints.dirty_count
        start = time.perf_counter()
        sqlite_backend.checkpoint(engine)
        incremental_s += time.perf_counter() - start
        start = time.perf_counter()
        monolithic_backend.checkpoint(engine)
        monolithic_s += time.perf_counter() - start

    # The incremental snapshots must restore to the same state the
    # monolithic image holds — the speedup is worthless otherwise.
    restored = sqlite_backend.restore(
        sqlite_backend.list_snapshots()[-1].version)
    assert restored.node_count() == engine.node_count()
    restored.check_invariants()
    sqlite_backend.close()
    return {
        "scale": scale,
        "batches": batches,
        "operations_per_batch": operations,
        "blocks_total": engine.block_count(),
        "dirty_blocks_per_batch": round(dirty_blocks / batches, 1),
        "checkpoint_incremental_seconds": round(incremental_s, 6),
        "checkpoint_monolithic_seconds": round(monolithic_s, 6),
        "checkpoint_incremental_vs_monolithic": round(
            monolithic_s / incremental_s, 2),
    }


def run_durability(scale=100, operations=200, checkpoint_scale=None):
    """WAL overhead and recovery time over the library workload.

    The same autocommitted insert workload runs three ways — no log,
    WAL without per-record fsync, WAL with fsync — then a checkpoint +
    post-checkpoint mutations + :func:`recover` measure the restart
    path, and the bulk-load fast path is compared against the
    equivalent per-node logged build.  One record."""

    def fresh():
        engine = StorageEngine()
        engine.load_document(make_library_document(
            books=scale, papers=scale, seed=scale))
        return engine

    def timed(call):
        start = time.perf_counter()
        call()
        return time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)

        plain_engine = fresh()
        plain_s = timed(lambda: _durability_workload(plain_engine,
                                                     operations))

        wal_engine = fresh()
        wal = WriteAheadLog(tmp / "nosync.wal", sync=False)
        TransactionManager(wal_engine, wal)
        wal_s = timed(lambda: _durability_workload(wal_engine,
                                                   operations))
        wal_records, wal_bytes = wal.appends, wal.bytes_written
        wal.close()

        fsync_engine = fresh()
        fsync_wal = WriteAheadLog(tmp / "sync.wal", sync=True)
        TransactionManager(fsync_engine, fsync_wal)
        fsync_s = timed(lambda: _durability_workload(fsync_engine,
                                                     operations))
        fsync_wal.close()

        rec_engine = fresh()
        rec_wal = WriteAheadLog(tmp / "rec.wal", sync=False)
        TransactionManager(rec_engine, rec_wal)
        image = tmp / "rec.img"
        checkpoint_s = timed(lambda: checkpoint(rec_engine, image,
                                                wal=rec_wal))
        image_bytes = image.stat().st_size
        _durability_workload(rec_engine, operations)
        rec_wal.close()
        start = time.perf_counter()
        result = recover(image, tmp / "rec.wal")
        recovery_s = time.perf_counter() - start
        assert result.relabels == 0
        assert result.engine.node_count() == rec_engine.node_count()

        bulk = _bulk_load_comparison(tmp, scale)
        modes = _checkpoint_mode_comparison(tmp,
                                            checkpoint_scale or scale)

    return {
        "bulk_load": bulk,
        "checkpoint_modes": modes,
        "scale": scale,
        "operations": operations,
        "ops_plain": round(operations / plain_s, 1),
        "ops_wal": round(operations / wal_s, 1),
        "ops_wal_fsync": round(operations / fsync_s, 1),
        "wal_overhead": round(wal_s / plain_s, 2),
        "wal_fsync_overhead": round(fsync_s / plain_s, 2),
        "wal_records": wal_records,
        "wal_bytes": wal_bytes,
        "checkpoint_seconds": round(checkpoint_s, 6),
        "image_bytes": image_bytes,
        "recovery_seconds": round(recovery_s, 6),
        "recovery_replayed": result.replayed,
        "recovery_relabels": result.relabels,
    }


def _concurrency_mutation(engine, session):
    """One logged insert per write transaction (the serve workload)."""
    root = engine.children(engine.document)[0]
    book = next(child for child in engine.children(root)
                if engine.node_name(child) is not None
                and engine.node_name(child).local == "book")
    author = engine.insert_child(book, 1, name=QName("", "author"))
    engine.insert_child(author, 0,
                        text=f"session {session.session_id}")


def run_concurrency(readers=4, writers=2, rounds=20, scale=30):
    """N snapshot readers + M lease-handoff writers over a served
    MemoryBackend (the resilient multi-session layer, DESIGN §14).

    Reports per-mode latency percentiles from the windowed histograms,
    a solo-reader baseline for the contention-retention ratio (the
    machine-independent number ``benchmarks.compare`` tracks), the
    typed ``Overloaded`` shed at the session cap, and a final recovery
    that must relabel nothing.  One record."""
    import threading

    from repro.server import DatabaseServer, Overloaded
    from repro.storage import MemoryBackend

    path = "/library/book/title"
    errors = []

    def build_server(**kwargs):
        kwargs.setdefault("acquire_timeout", 30.0)
        return DatabaseServer(
            MemoryBackend(),
            make_library_document(books=scale, papers=scale,
                                  seed=scale),
            **kwargs)

    def reader_pass(server, torn_counts, index):
        torn = 0
        try:
            for _ in range(rounds):
                with server.open_session(
                        "read", owner=f"bench-r{index}") as session:
                    first = session.query_values(path)
                    if session.query_values(path) != first:
                        torn += 1
        except Exception as exc:  # noqa: BLE001 — a bench must not hang
            errors.append(repr(exc))
        torn_counts[index] = torn

    def writer_pass(server, index):
        try:
            for _ in range(rounds):
                with server.open_session(
                        "write", owner=f"bench-w{index}") as session:
                    session.execute(_concurrency_mutation)
        except Exception as exc:  # noqa: BLE001
            errors.append(repr(exc))

    def summary(name):
        instrument = obs.REGISTRY.get(name)
        return instrument.summary() if instrument is not None else {
            "count": 0, "p50": 0, "p99": 0}

    # Solo baseline: one reader, nobody else on the box.
    obs.reset()
    solo_server = build_server()
    solo_torn = {}
    reader_pass(solo_server, solo_torn, 0)
    solo_read = summary("server.read.latency.ns")
    solo_server.close()

    # The contended run.
    obs.reset()
    cap = readers + writers + 2
    server = build_server(max_sessions=cap)
    torn_counts = {}
    threads = [threading.Thread(target=reader_pass,
                                args=(server, torn_counts, i))
               for i in range(readers)]
    threads += [threading.Thread(target=writer_pass, args=(server, i))
                for i in range(writers)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    read_latency = summary("server.read.latency.ns")
    write_latency = summary("server.write.latency.ns")
    lease_wait = summary("server.lease.wait.ns")

    # Overload: fill every admission slot, then the N+1-th must shed
    # with the typed refusal (bounded degradation, not a hang).
    held = [server.open_session("read") for _ in range(cap)]
    overload_typed, retry_after = False, 0.0
    try:
        server.open_session("read")
    except Overloaded as exc:
        overload_typed, retry_after = True, exc.retry_after
    for session in held:
        session.close()

    server.checkpoint_now()
    result = recover(server.backend)
    dead_letters = len(server.leases.drain_dead_letters())
    registry = obs.REGISTRY
    record = {
        "readers": readers,
        "writers": writers,
        "rounds": rounds,
        "scale": scale,
        "elapsed_seconds": round(elapsed, 4),
        "read_latency_ns": read_latency,
        "write_latency_ns": write_latency,
        "lease_wait_ns": lease_wait,
        "solo_read_latency_ns": solo_read,
        # Solo p50 over contended p50: 1.0 means snapshot readers kept
        # their solo latency under writer load.  Machine-independent.
        "reader_p50_retention": round(
            solo_read["p50"] / max(read_latency["p50"], 1), 3),
        "lease_grants": registry.value("server.lease.grants"),
        "lease_contended": registry.value("server.lease.contended"),
        "lease_expirations":
            registry.value("server.lease.expirations"),
        "dead_letters": dead_letters,
        "snapshot_materializations":
            registry.value("server.snapshot.materializations"),
        "snapshot_cache_hits":
            registry.value("server.snapshot.cache_hits"),
        "torn_reads": sum(torn_counts.values()) +
            sum(solo_torn.values()),
        "errors": len(errors),
        "error_samples": errors[:3],
        "overload_typed": overload_typed,
        "overload_retry_after": retry_after,
        "committed_writes": writers * rounds,
        "recovery_relabels": result.relabels,
        "recovery_nodes": result.engine.node_count(),
    }
    server.close()
    obs.reset()
    return record


def _print_concurrency(record):
    print(f"\nconcurrency (sessions: {record['readers']} readers + "
          f"{record['writers']} writers x {record['rounds']}, "
          f"scale {record['scale']}):")
    read, write = record["read_latency_ns"], record["write_latency_ns"]
    print(f"  read latency:  p50 {read['p50']/1000:.1f} us, "
          f"p99 {read['p99']/1000:.1f} us ({read['count']} requests)")
    print(f"  write latency: p50 {write['p50']/1000:.1f} us, "
          f"p99 {write['p99']/1000:.1f} us ({write['count']} commits)")
    print(f"  reader p50 retention vs solo: "
          f"{record['reader_p50_retention']:.2f}x")
    print(f"  lease: {record['lease_grants']} grants "
          f"({record['lease_contended']} contended, "
          f"{record['lease_expirations']} expirations, "
          f"{record['dead_letters']} dead letters)")
    print(f"  snapshots: {record['snapshot_materializations']} "
          f"materialized, {record['snapshot_cache_hits']} cache hits")
    print(f"  isolation: {record['torn_reads']} torn reads, "
          f"{record['recovery_relabels']} relabels on recovery, "
          f"{record['errors']} errors")
    print(f"  overload: typed shed "
          f"{'yes' if record['overload_typed'] else 'NO'} "
          f"(retry_after {record['overload_retry_after']:.3f}s)")


def _print_durability(record):
    print(f"\ndurability (WAL + recovery, scale {record['scale']}, "
          f"{record['operations']} ops):")
    print(f"  inserts/sec plain      {record['ops_plain']:>12.0f}")
    print(f"  inserts/sec wal        {record['ops_wal']:>12.0f} "
          f"({record['wal_overhead']:.2f}x of plain)")
    print(f"  inserts/sec wal+fsync  {record['ops_wal_fsync']:>12.0f} "
          f"({record['wal_fsync_overhead']:.2f}x of plain)")
    print(f"  wal: {record['wal_records']} records, "
          f"{record['wal_bytes']} bytes")
    print(f"  checkpoint: {record['checkpoint_seconds']*1000:.1f} ms "
          f"({record['image_bytes']} bytes)")
    print(f"  recovery:   {record['recovery_seconds']*1000:.1f} ms "
          f"({record['recovery_replayed']} records replayed, "
          f"{record['recovery_relabels']} relabels)")
    bulk = record["bulk_load"]
    print(f"  bulk load ({bulk['nodes']} nodes): "
          f"{bulk['bulk_seconds']*1000:.1f} ms with "
          f"{bulk['bulk_wal_records']} wal records vs "
          f"{bulk['incremental_seconds']*1000:.1f} ms / "
          f"{bulk['incremental_wal_records']} records incremental "
          f"({bulk['bulk_vs_incremental']:.2f}x)")
    modes = record["checkpoint_modes"]
    print(f"  checkpoint modes (scale {modes['scale']}, "
          f"{modes['batches']}x{modes['operations_per_batch']} ops, "
          f"~{modes['dirty_blocks_per_batch']}/"
          f"{modes['blocks_total']} blocks dirty): "
          f"incremental {modes['checkpoint_incremental_seconds']*1000:.1f} "
          f"ms vs monolithic "
          f"{modes['checkpoint_monolithic_seconds']*1000:.1f} ms "
          f"({modes['checkpoint_incremental_vs_monolithic']:.1f}x)")


def _print_indexes(records, ddl):
    header = (f"\n{'indexes (case)':14} {'path':34} {'scale':>5} "
              f"{'scan':>10} {'index':>10} {'speedup':>8}")
    print(header)
    print("-" * len(header))
    for r in records:
        print(f"{r['case']:14} {r['path']:34} {r['scale']:>5} "
              f"{r['ops_scan']:>10.0f} {r['ops_index']:>10.0f} "
              f"{r['index_vs_scan']:>7.2f}x")
    print(f"  ddl invalidation: affected plan "
          f"{'invalidated' if ddl['exactly_affected_invalidated'] else 'NOT invalidated'}, "
          f"unaffected plan "
          f"{'restamped' if ddl['unaffected_restamped'] else 'NOT restamped'}")


def _print_cost(records, gate):
    header = (f"\n{'cost model (path)':40} {'scale':>5} "
              f"{'strategy':>9} {'vs struct':>9} {'vs scan':>8} "
              f"{'vs naive':>9} {'wins':>5}")
    print(header)
    print("-" * len(header))
    for r in records:
        print(f"{r['path']:40} {r['scale']:>5} "
              f"{r['strategy']:>9} {r['cost_vs_structural']:>8.2f}x "
              f"{r['cost_vs_scan_policy']:>7.2f}x "
              f"{r['cost_vs_naive_policy']:>8.2f}x "
              f"{'yes' if r['beats_every_fixed'] else '-':>5}")
    print(f"  cost_beats_fixed: "
          f"{'MET' if gate['cost_beats_fixed'] else 'NOT MET'} "
          f"(outright win somewhere: "
          f"{gate['any_query_beats_every_fixed']}, never >10% slower "
          f"than structural: "
          f"{gate['never_slower_than_structural_10pct']})")


def _print_metrics(metrics):
    registry = metrics["registry"]
    workload = metrics["numbering_workload"]
    print(f"\nmetrics (observability pass, scale {metrics['scale']}):")
    for name in sorted(registry):
        print(f"  {name:44s} {registry[name]}")
    print(f"  numbering workload: {workload['operations']} ops on "
          f"{workload['scheme']} -> {workload['relabels']} relabels")


def _print_obs_overhead(overhead):
    print(f"\nobs overhead (telemetry on vs off, cached route, "
          f"scale {overhead['scale']}):")
    for r in overhead["records"]:
        print(f"  {r['path']:32} {r['ops_telemetry_off']:>10.0f} -> "
              f"{r['ops_telemetry_on']:>10.0f} ops/sec "
              f"({r['overhead_pct']:+.2f}%)")
    print(f"  aggregate: {overhead['overhead_pct']:+.2f}% "
          f"({'under' if overhead['under_5pct'] else 'OVER'} "
          f"the 5% budget)")


def _print_table(records):
    header = (f"{'path':32} {'scale':>5} {'naive':>10} "
              f"{'schema':>10} {'cached':>10} {'exec':>10} "
              f"{'lookup%':>8} {'speedup':>8}")
    print(header)
    print("-" * len(header))
    for r in records:
        print(f"{r['path']:32} {r['scale']:>5} "
              f"{r['ops_naive']:>10.0f} {r['ops_schema_driven']:>10.0f} "
              f"{r['ops_cached_plan']:>10.0f} "
              f"{r['ops_compiled_exec']:>10.0f} "
              f"{r['lookup_share'] * 100:>7.1f}% "
              f"{r['cached_vs_uncached']:>7.2f}x")


def _print_conformance_table(records):
    header = (f"\n{'conformance (VAL, §6.2)':24} {'scale':>6} "
              f"{'nodes':>7} {'tree':>10} {'storage':>10} {'ratio':>7}")
    print(header)
    print("-" * len(header))
    for r in records:
        print(f"{'check_store ops/sec':24} {r['scale']:>6} "
              f"{r['nodes']:>7} {r['ops_tree_store']:>10.0f} "
              f"{r['ops_storage_store']:>10.0f} "
              f"{r['tree_vs_storage']:>6.2f}x")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_query.json")
    parser.add_argument("--output", type=Path, default=None,
                        help="where to write the JSON report")
    parser.add_argument("--smoke", action="store_true",
                        help="single tiny scale, few rounds (for CI)")
    parser.add_argument("--profile", action="store_true",
                        help="dump cProfile top-20 per query group")
    args = parser.parse_args(argv)

    if args.smoke:
        records = run(scales=SMOKE_SCALES, repeats=2, rounds=5)
        indexes = run_indexes(scales=INDEX_SMOKE_SCALES,
                              repeats=2, rounds=5)
        cost = run_cost(scales=INDEX_SMOKE_SCALES, repeats=2, rounds=5)
        conformance = run_conformance(scales=SMOKE_SCALES,
                                      repeats=2, rounds=2)
        metrics = run_metrics(scale=SMOKE_SCALES[0],
                              workload_operations=50)
        durability = run_durability(scale=SMOKE_SCALES[0],
                                    operations=40,
                                    checkpoint_scale=100)
        overhead = run_obs_overhead(scale=100, repeats=2, rounds=5)
        concurrency = run_concurrency(readers=2, writers=1,
                                      rounds=5, scale=10)
        scales = SMOKE_SCALES
    else:
        records = run()
        indexes = run_indexes()
        cost = run_cost()
        conformance = run_conformance()
        metrics = run_metrics(scale=100)
        durability = run_durability(scale=100, operations=400,
                                    checkpoint_scale=1000)
        overhead = run_obs_overhead(scale=1000)
        concurrency = run_concurrency(readers=4, writers=2,
                                      rounds=25, scale=50)
        scales = DEFAULT_SCALES
    ddl = ddl_invalidation_check()
    cost_summary = cost_gate(cost)
    _print_table(records)
    _print_indexes(indexes, ddl)
    _print_cost(cost, cost_summary)
    _print_conformance_table(conformance)
    _print_durability(durability)
    _print_concurrency(concurrency)
    _print_metrics(metrics)
    _print_obs_overhead(overhead)
    if args.profile:
        run_profile(scale=SMOKE_SCALES[0] if args.smoke else 1000,
                    rounds=10 if args.smoke else 50)

    if args.json or args.output is not None:
        output = args.output or \
            Path(__file__).resolve().parent.parent / "BENCH_query.json"
        speedups = [r["cached_vs_uncached"] for r in records]
        value_speedups = [r["index_vs_scan"] for r in indexes
                          if r["case"].startswith("value")
                          and r["scale"] >= 100]
        report = {
            "experiment": "query plan compilation + caching (XP/§9.2)",
            "meta": run_metadata(scales, args.smoke),
            "query_paths": list(QUERY_PATHS),
            "records": records,
            "indexes": {
                "records": indexes,
                "ddl_invalidation": ddl,
            },
            "cost_model": {
                "records": cost,
                "gate": cost_summary,
            },
            "conformance_records": conformance,
            "durability": durability,
            "concurrency": concurrency,
            "metrics": metrics,
            "obs_overhead": overhead,
            "summary": {
                # The always-on telemetry tier must stay invisible on
                # the hot path: <5% slowdown on the cached route.
                "obs_overhead_under_5pct": overhead["under_5pct"],
                # Typed-value probes must beat the schema-driven scan
                # by >= 3x on the value-predicate cases at scale >= 100
                # (the path-merge case is gated separately: it only has
                # to win, since the scan baseline is already block-
                # local).
                "index_speedup_3x_met": bool(value_speedups) and
                    min(value_speedups) >= 3.0,
                # The cost-based planner must pay for itself: at least
                # one corpus query where it outruns every fixed policy
                # (structural / scan / naive), and no corpus query
                # where it is more than 10% slower than the structural
                # precedence it replaced.  Both sides read median-of-k
                # interleaved ratios, not best-of quotients.
                "cost_beats_fixed": cost_summary["cost_beats_fixed"],
                "ddl_invalidation_exact": (
                    ddl["exactly_affected_invalidated"]
                    and ddl["unaffected_restamped"]),
                "bulk_load_faster": (
                    durability["bulk_load"]["bulk_vs_incremental"]
                    > 1.0),
                # Incremental (dirty-block) checkpoints into SQLite
                # must leave monolithic full-image rewrites far
                # behind; the 10x floor applies to the full run's
                # scale-1000 comparison (smoke runs a smaller scale
                # and merely has to win).
                "checkpoint_incremental_vs_monolithic": (
                    durability["checkpoint_modes"]
                    ["checkpoint_incremental_vs_monolithic"]),
                "checkpoint_incremental_10x_met": (
                    durability["checkpoint_modes"]
                    ["checkpoint_incremental_vs_monolithic"] >= 10.0),
                # The session layer's isolation contract under an
                # N-reader/M-writer storm: every pinned view frozen,
                # recovery relabel-free, and load past the admission
                # caps shed with the typed refusal.
                "concurrency_zero_relabels": (
                    concurrency["recovery_relabels"] == 0),
                "concurrency_no_torn_reads": (
                    concurrency["torn_reads"] == 0
                    and concurrency["errors"] == 0),
                "concurrency_overload_typed": (
                    concurrency["overload_typed"]),
                "max_cached_vs_uncached": max(speedups),
                "min_cached_vs_uncached": min(speedups),
                # The cached route skips parse + planning AND runs the
                # lowered closure chain over batched block sweeps, so
                # it must beat the interpreted schema-driven evaluator
                # on every query — including large full scans, where
                # the old per-descriptor generator hops converged to
                # 1x.  The floor is 1.5x everywhere; somewhere the
                # campaign must show at least 2x.
                "min_cached_vs_uncached_1_5x_met": (
                    min(speedups) >= 1.5),
                "speedup_2x_met": max(speedups) >= 2.0,
                "speedup_2x_per_scale": {
                    str(scale): max(r["cached_vs_uncached"]
                                    for r in records
                                    if r["scale"] == scale) >= 2.0
                    for scale in sorted({r["scale"] for r in records})
                },
            },
        }
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {output}")
    return records


if __name__ == "__main__":
    main()
