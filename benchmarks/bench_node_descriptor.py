"""EX10 — node descriptors answer every accessor.

Regenerates the Example 10 claim: "the data stored in the node
descriptor together with the data stored in the corresponding schema
node are sufficient to produce the result of any accessor".  The
benchmark evaluates each accessor over every node, from storage and —
as the reference — from the formal in-memory model, and reports the
modelled storage footprint.
"""

import pytest

from repro.order import iter_document_order
from benchmarks.conftest import SCALES


@pytest.mark.parametrize("scale", [10, 100])
def test_accessors_from_descriptors(benchmark, storage_engines, scale):
    engine = storage_engines[scale]
    descriptors = list(engine.iter_document_order())

    def evaluate_all():
        total = 0
        for descriptor in descriptors:
            engine.node_kind(descriptor)
            engine.node_name(descriptor)
            engine.parent(descriptor)
            total += len(engine.children(descriptor))
            total += len(engine.attributes(descriptor))
        return total

    benchmark(evaluate_all)
    benchmark.extra_info["nodes"] = len(descriptors)


@pytest.mark.parametrize("scale", [10, 100])
def test_accessors_from_model(benchmark, untyped_library_trees, scale):
    tree = untyped_library_trees[scale]
    nodes = list(iter_document_order(tree))

    def evaluate_all():
        total = 0
        for node in nodes:
            node.node_kind()
            node.node_name()
            node.parent()
            total += len(node.children())
            total += len(node.attributes())
        return total

    benchmark(evaluate_all)


@pytest.mark.parametrize("scale", [10, 100])
def test_string_value_from_storage(benchmark, storage_engines, scale):
    engine = storage_engines[scale]
    library = engine.children(engine.document)[0]

    def whole_document_text():
        return engine.string_value(library)

    text = benchmark(whole_document_text)
    assert text


@pytest.mark.parametrize("scale", SCALES)
def test_descriptor_footprint(benchmark, storage_engines, scale):
    """Bytes per node of the modelled physical layout."""
    engine = storage_engines[scale]

    def measure():
        return engine.size_bytes()

    total = benchmark(measure)
    nodes = engine.node_count()
    benchmark.extra_info["bytes_total"] = total
    benchmark.extra_info["bytes_per_node"] = round(total / nodes, 1)
    # The modelled footprint is honest only if the Python objects are
    # actually slotted: a stray __dict__ per descriptor would dwarf
    # the modelled bytes and regress every benchmark above.
    descriptor = engine.children(engine.document)[0]
    assert not hasattr(descriptor, "__dict__")
    assert not hasattr(descriptor.schema_node, "__dict__")
    benchmark.extra_info["slotted"] = True
