"""NID — Proposition 1: updates under three numbering schemes.

Regenerates the Section 9.3 claim: the Sedna scheme "keep[s] its
properties after the updates (insertion or removal of the nodes)"
without relabeling.  The same randomized update workload is applied to
the paper's scheme and the two classic baselines; the extra info
carries the table rows (relabels per operation, label growth).

Expected shape: sedna = 0 relabels/op always; dewey grows with sibling
counts; interval grows with document size.  Sedna pays with slowly
growing labels; interval labels stay at 8 fixed bytes.
"""

import pytest

from repro.numbering import (
    DeweyBaseline,
    IntervalBaseline,
    SednaAdapter,
    UpdateWorkload,
)

_SCHEMES = {
    "sedna": SednaAdapter,
    "dewey": DeweyBaseline,
    "interval": IntervalBaseline,
}

_OPS = (100, 400)


@pytest.mark.parametrize("ops", _OPS)
@pytest.mark.parametrize("scheme", sorted(_SCHEMES))
def test_update_workload(benchmark, scheme, ops):
    workload = UpdateWorkload(operations=ops, seed=13, insert_bias=0.75)
    make = _SCHEMES[scheme]

    def run():
        return workload.run(make, verify=False)

    stats = benchmark(run)
    benchmark.extra_info["relabels_per_op"] = round(
        stats.relabels_per_op, 2)
    benchmark.extra_info["mean_label_bytes"] = round(
        stats.mean_label_bytes, 1)
    benchmark.extra_info["max_label_bytes"] = stats.max_label_bytes
    if scheme == "sedna":
        assert stats.relabels == 0  # Proposition 1
    else:
        assert stats.relabels > 0


@pytest.mark.parametrize("scheme", sorted(_SCHEMES))
def test_front_insertion_worst_case(benchmark, scheme):
    """Repeated insertion at the very front of one node's child list —
    the adversarial case for ordinal schemes."""
    from repro.numbering import SimTree

    make = _SCHEMES[scheme]

    def run():
        tree = SimTree()
        labelled = make(tree)
        labelled.load()
        for _ in range(60):
            node = tree.insert(tree.root, 0)
            labelled.on_insert(node)
        return labelled

    labelled = benchmark(run)
    benchmark.extra_info["relabels"] = labelled.relabel_count
    benchmark.extra_info["max_label_bytes"] = labelled.max_label_bytes()
    if scheme == "sedna":
        assert labelled.relabel_count == 0


def test_label_growth_over_long_run(benchmark):
    """Label-length growth of the Sedna scheme over a long insertion
    run — the cost side of Proposition 1 the paper's enhancements
    target ("prevent the growing of numbering labels")."""
    workload = UpdateWorkload(operations=1500, seed=29, insert_bias=1.0)

    def run():
        return workload.run(SednaAdapter, verify=False)

    stats = benchmark(run)
    benchmark.extra_info["nodes"] = stats.node_count
    benchmark.extra_info["mean_label_bytes"] = round(
        stats.mean_label_bytes, 1)
    benchmark.extra_info["max_label_bytes"] = stats.max_label_bytes
    assert stats.relabels == 0
