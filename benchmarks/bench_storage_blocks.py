"""EX9 — data blocks: per-schema-node scans and the order chain.

Regenerates the Example 9 structure at scale and measures what the
block design buys: scanning all instances of one schema node walks
only that node's block list (independent of the rest of the document),
while the same scan over the plain node tree must traverse everything.
"""

import pytest

from repro.order import iter_document_order
from repro.storage import before
from benchmarks.conftest import SCALES


@pytest.mark.parametrize("scale", SCALES)
def test_scan_one_schema_node_via_blocks(benchmark, storage_engines,
                                         scale):
    engine = storage_engines[scale]
    titles = engine.schema.find_path("library/book/title")

    def scan():
        return list(engine.scan_schema_node(titles))

    result = benchmark(scan)
    assert len(result) == titles.descriptor_count
    for a, b in zip(result, result[1:]):
        assert before(a.nid, b.nid)
    benchmark.extra_info["instances"] = len(result)
    benchmark.extra_info["blocks"] = titles.block_count()


@pytest.mark.parametrize("scale", SCALES)
def test_scan_same_nodes_via_tree_walk(benchmark, untyped_library_trees,
                                       scale):
    """The baseline the block list is compared against: filter a full
    document-order traversal of the formal tree."""
    tree = untyped_library_trees[scale]

    def scan():
        out = []
        for node in iter_document_order(tree):
            names = node.node_name()
            if (names and names.head().local == "title"
                    and node.parent().head().node_name().head().local
                    == "book"):
                out.append(node)
        return out

    result = benchmark(scan)
    assert result


@pytest.mark.parametrize("scale", SCALES)
def test_full_document_order_scan(benchmark, storage_engines, scale):
    """Whole-document scan through descriptors (children pointers +
    sibling chains), the storage counterpart of Section 7."""
    engine = storage_engines[scale]

    def scan():
        return sum(1 for _ in engine.iter_document_order())

    count = benchmark(scan)
    assert count == engine.node_count()


@pytest.mark.parametrize("capacity", [8, 64, 512])
def test_block_capacity_tradeoff(benchmark, library_documents, capacity):
    """Smaller blocks mean more blocks (and headers) for the same data;
    the extra info reports the footprint per capacity."""
    document = library_documents[100]
    from repro.storage import StorageEngine

    def load():
        engine = StorageEngine(block_capacity=capacity)
        engine.load_document(document)
        return engine

    engine = benchmark(load)
    benchmark.extra_info["blocks"] = engine.block_count()
    benchmark.extra_info["bytes"] = engine.size_bytes()
