"""XQ — throughput of the XQuery-lite evaluator (future-work extension).

Not a paper artifact: the paper only *announces* an XQuery semantics as
future work.  This module establishes the cost of FLWOR evaluation over
the formal model so the extension has a measured baseline.
"""

import pytest

from repro.xquery import XQueryEvaluator, parse_query
from benchmarks.conftest import SCALES

_FILTER = """
for $b in /library/book
where $b/issue/year > 1985
return $b/title
"""

_JOINISH = """
for $b in /library/book
let $authors := $b/author
where count($authors) > 1
order by $b/title
return $b/title
"""

_CONSTRUCT = """
for $b in /library/book
return <entry><t>{$b/title}</t><n>{count($b/author)}</n></entry>
"""


@pytest.mark.parametrize("scale", SCALES)
def test_filter_query(benchmark, untyped_library_trees, scale):
    evaluator = XQueryEvaluator(untyped_library_trees[scale])
    expression = parse_query(_FILTER)

    def run():
        return evaluator.evaluate(expression)

    result = benchmark(run)
    benchmark.extra_info["results"] = len(result)


@pytest.mark.parametrize("scale", [10, 100])
def test_order_by_query(benchmark, untyped_library_trees, scale):
    evaluator = XQueryEvaluator(untyped_library_trees[scale])
    expression = parse_query(_JOINISH)

    def run():
        return evaluator.evaluate(expression)

    result = benchmark(run)
    assert result == sorted(result, key=lambda n: n.string_value())


@pytest.mark.parametrize("scale", [10, 100])
def test_constructor_query(benchmark, untyped_library_trees, scale):
    evaluator = XQueryEvaluator(untyped_library_trees[scale])
    expression = parse_query(_CONSTRUCT)

    def run():
        return evaluator.evaluate(expression)

    result = benchmark(run)
    assert all(node.name.local == "entry" for node in result)


def test_parse_cost(benchmark):
    def parse():
        return parse_query(_JOINISH)

    assert benchmark(parse) is not None
