"""Ablations of the design choices DESIGN.md calls out.

* content-model matching: Brzozowski derivatives with counters (the
  default) vs the Glushkov position automaton (which must expand
  bounded repetition) — construction and matching cost as maxOccurs
  grows;
* the numbering alphabet: label growth under the same workload for
  bases 4 / 16 / 256 (the paper leaves Ω abstract; this shows why a
  byte-sized alphabet is the right call);
* first-child-by-schema pointers: child-step cost with the pointer
  versus reconstructing via the sibling chain only.
"""

import pytest

from repro.content import (
    DerivativeMatcher,
    GlushkovAutomaton,
    compile_group,
)
from repro.numbering import SednaAdapter, UpdateWorkload
from repro.schema import (
    CombinationFactor,
    ElementDeclaration,
    GroupDefinition,
    RepetitionFactor,
    TypeName,
)
from repro.xmlio import xsd


def _counted_group(max_occurs: int) -> GroupDefinition:
    return GroupDefinition(
        (ElementDeclaration("a", TypeName(xsd("string")),
                            RepetitionFactor(0, max_occurs)),
         ElementDeclaration("b", TypeName(xsd("string"))),),
        CombinationFactor.SEQUENCE, RepetitionFactor(1, 1))


class TestMatcherAblation:
    @pytest.mark.parametrize("max_occurs", [10, 100, 1000])
    def test_derivative_matching(self, benchmark, max_occurs):
        """Counter-based: cost independent of the bound's magnitude."""
        particle = compile_group(_counted_group(max_occurs))
        matcher = DerivativeMatcher(particle)
        word = ["a"] * min(max_occurs, 50) + ["b"]

        def match():
            return matcher.matches(word)

        assert benchmark(match)

    @pytest.mark.parametrize("max_occurs", [10, 100, 1000])
    def test_glushkov_construction(self, benchmark, max_occurs):
        """Expansion-based: construction cost grows with maxOccurs."""
        particle = compile_group(_counted_group(max_occurs))

        def build():
            return GlushkovAutomaton(particle)

        automaton = benchmark(build)
        benchmark.extra_info["positions"] = automaton.position_count

    @pytest.mark.parametrize("max_occurs", [10, 100])
    def test_glushkov_matching(self, benchmark, max_occurs):
        particle = compile_group(_counted_group(max_occurs))
        automaton = GlushkovAutomaton(particle)
        word = ["a"] * min(max_occurs, 50) + ["b"]

        def match():
            return automaton.matches(word)

        assert benchmark(match)


class TestAlphabetAblation:
    @pytest.mark.parametrize("base", [4, 16, 256])
    def test_label_growth_by_base(self, benchmark, base):
        """Smaller alphabets exhaust gaps sooner, so labels grow
        faster; a byte-sized alphabet keeps them short."""
        workload = UpdateWorkload(operations=300, seed=17,
                                  insert_bias=1.0)

        def run():
            return workload.run(lambda tree: SednaAdapter(tree, base=base),
                                verify=False)

        stats = benchmark(run)
        benchmark.extra_info["base"] = base
        benchmark.extra_info["mean_label_bytes"] = round(
            stats.mean_label_bytes, 1)
        benchmark.extra_info["max_label_bytes"] = stats.max_label_bytes
        assert stats.relabels == 0  # Proposition 1 holds at every base


class TestBlockOrderAblation:
    @pytest.mark.parametrize("capacity", [4, 64])
    def test_in_block_chain_reconstruction(self, benchmark,
                                           library_documents, capacity):
        """Reconstructing document order inside blocks via the 2-byte
        short-pointer chains (the paper's design) across capacities —
        smaller blocks mean more chain segments for the same scan."""
        from repro.storage import StorageEngine
        engine = StorageEngine(block_capacity=capacity)
        engine.load_document(library_documents[100])
        titles = engine.schema.find_path("library/book/title")

        def scan():
            return sum(1 for _ in engine.scan_schema_node(titles))

        count = benchmark(scan)
        assert count == titles.descriptor_count
        benchmark.extra_info["blocks"] = titles.block_count()
