"""THM — the Section 8 round-trip theorem, g(f(X)) =_c X, at scale.

Times the two mappings and their composition on growing documents and
asserts content equality on every run — the theorem is *checked*, not
assumed, at every scale.
"""

import pytest

from repro.mapping import content_equal, document_to_tree, tree_to_document
from repro.xmlio import parse_document, serialize_document
from benchmarks.conftest import SCALES


@pytest.mark.parametrize("scale", SCALES)
def test_mapping_f(benchmark, library_texts, library_schema, scale):
    document = parse_document(library_texts[scale])

    def apply_f():
        return document_to_tree(document, library_schema)

    tree = benchmark(apply_f)
    assert tree.document_element() is not None


@pytest.mark.parametrize("scale", SCALES)
def test_mapping_g(benchmark, library_trees, scale):
    tree = library_trees[scale]

    def apply_g():
        return tree_to_document(tree)

    document = benchmark(apply_g)
    assert document.root.name.local == "library"


@pytest.mark.parametrize("scale", SCALES)
def test_theorem_roundtrip(benchmark, library_texts, library_schema,
                           scale):
    document = parse_document(library_texts[scale])

    def roundtrip():
        tree = document_to_tree(document, library_schema)
        return tree_to_document(tree)

    result = benchmark(roundtrip)
    assert content_equal(result, document)
    benchmark.extra_info["theorem_holds"] = True


@pytest.mark.parametrize("scale", SCALES)
def test_parse_serialize_substrate(benchmark, library_texts, scale):
    """The raw XML substrate below f and g, for reference."""
    text = library_texts[scale]

    def parse_and_serialize():
        return serialize_document(parse_document(text))

    out = benchmark(parse_and_serialize)
    assert out
    benchmark.extra_info["bytes"] = len(text)
