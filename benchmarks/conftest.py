"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one experiment from DESIGN.md's
per-experiment index.  Fixtures here build the documents, trees and
engines once per session so the timed sections measure only the
operation under study.
"""

from __future__ import annotations

import pytest

from repro.mapping import document_to_tree, untyped_document_to_tree
from repro.schema import parse_schema
from repro.storage import StorageEngine
from repro.xmlio import parse_document, serialize_document
from repro.workloads import (
    make_bookstore_document,
    make_library_document,
)
from repro.workloads.fixtures import EXAMPLE_7_SCHEMA, LIBRARY_SCHEMA

#: Scales used across the experiments (books+papers per scale).
SCALES = (10, 100, 1000)


@pytest.fixture(scope="session")
def bookstore_schema():
    return parse_schema(EXAMPLE_7_SCHEMA)


@pytest.fixture(scope="session")
def library_schema():
    return parse_schema(LIBRARY_SCHEMA)


@pytest.fixture(scope="session")
def library_documents():
    """Scaled library documents keyed by scale."""
    return {scale: make_library_document(books=scale, papers=scale,
                                         seed=scale)
            for scale in SCALES}


@pytest.fixture(scope="session")
def library_texts(library_documents):
    return {scale: serialize_document(document)
            for scale, document in library_documents.items()}


@pytest.fixture(scope="session")
def bookstore_texts():
    return {scale: serialize_document(
        make_bookstore_document(books=scale, seed=scale))
        for scale in SCALES}


@pytest.fixture(scope="session")
def library_trees(library_texts, library_schema):
    return {scale: document_to_tree(parse_document(text), library_schema)
            for scale, text in library_texts.items()}


@pytest.fixture(scope="session")
def untyped_library_trees(library_texts):
    return {scale: untyped_document_to_tree(parse_document(text))
            for scale, text in library_texts.items()}


@pytest.fixture(scope="session")
def storage_engines(library_documents):
    engines = {}
    for scale, document in library_documents.items():
        engine = StorageEngine()
        engine.load_document(document)
        engines[scale] = engine
    return engines
