"""EX8 — descriptive schema construction and DataGuide compression.

Regenerates the Example 8 figure at scale: building the descriptive
schema of a regular library document costs one pass, and its size
stays *constant* (the 16 schema nodes of the figure) while the
document grows — whereas an irregular document degenerates to one
schema node per element.  ``compression`` in the extra info is the
document-nodes : schema-nodes ratio the paper's design relies on.
"""

import pytest

from repro.storage import StorageEngine
from repro.workloads import make_irregular_document
from repro.workloads.fixtures import EXAMPLE_8_DESCRIPTIVE_SCHEMA
from benchmarks.conftest import SCALES


@pytest.mark.parametrize("scale", SCALES)
def test_build_descriptive_schema_regular(benchmark, library_documents,
                                          scale):
    document = library_documents[scale]

    def load():
        engine = StorageEngine()
        engine.load_document(document)
        return engine

    engine = benchmark(load)
    # The schema stays exactly the Example 8 figure, at every scale.
    assert sorted(path for path, _t in engine.schema.paths()) == \
        sorted(path for path, _t in EXAMPLE_8_DESCRIPTIVE_SCHEMA)
    benchmark.extra_info["document_nodes"] = engine.node_count()
    benchmark.extra_info["schema_nodes"] = engine.schema.node_count()
    benchmark.extra_info["compression"] = round(
        engine.node_count() / engine.schema.node_count(), 1)


@pytest.mark.parametrize("nodes", [100, 1000])
def test_build_descriptive_schema_irregular(benchmark, nodes):
    document = make_irregular_document(node_count=nodes, seed=7)

    def load():
        engine = StorageEngine()
        engine.load_document(document)
        return engine

    engine = benchmark(load)
    # Worst case: no compression (one schema node per element + doc).
    assert engine.schema.node_count() == nodes + 1
    benchmark.extra_info["compression"] = 1.0


@pytest.mark.parametrize("scale", SCALES)
def test_schema_path_lookup(benchmark, storage_engines, scale):
    """Path lookup in the descriptive schema is independent of the
    document size — it is the entry point of every query."""
    engine = storage_engines[scale]

    def lookup():
        return engine.schema.find_path("library/book/issue/year")

    node = benchmark(lookup)
    assert node is not None
