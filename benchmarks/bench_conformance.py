"""VAL — Section 6.2 conformance checking throughput.

Checks trees of growing size against their schema (the requirements
1-7 checker) and against schemas of growing structural complexity
(wider choices, deeper groups).  Expected shape: linear in document
size; modest growth with content-model width thanks to the
counter-based derivative matcher.
"""

import pytest

from repro.algebra import ConformanceChecker, InstanceBuilder, \
    check_conformance
from repro.mapping import document_to_tree
from repro.schema import parse_schema
from repro.storage import StorageEngine, StorageNodeStore
from repro.xdm import TreeNodeStore
from repro.xmlio import parse_document
from repro.workloads.fixtures import wrap_in_schema
from benchmarks.conftest import SCALES


@pytest.mark.parametrize("scale", SCALES)
def test_conformance_check_scaling(benchmark, library_trees,
                                   library_schema, scale):
    tree = library_trees[scale]
    checker = ConformanceChecker(library_schema)

    def check():
        return checker.check(tree)

    violations = benchmark(check)
    assert violations == []


@pytest.mark.parametrize("scale", SCALES)
def test_validation_while_mapping(benchmark, library_texts,
                                  library_schema, scale):
    """f = parse + validate + build, the end-to-end validator path."""
    document = parse_document(library_texts[scale])

    def validate():
        return document_to_tree(document, library_schema)

    tree = benchmark(validate)
    assert tree is not None


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("backend", ["tree", "storage"])
def test_conformance_store_backends(benchmark, library_trees,
                                    library_schema, scale, backend):
    """The same §6.2 checker through the NodeStore protocol, over the
    state-algebra tree vs. the Sedna storage (typed via the
    per-schema-node annotation map)."""
    tree = library_trees[scale]
    if backend == "tree":
        store = TreeNodeStore(tree)
    else:
        engine = StorageEngine()
        engine.load_tree(tree)
        store = StorageNodeStore.typed(engine, library_schema)
    checker = ConformanceChecker(library_schema)

    def check():
        return checker.check_store(store)

    violations = benchmark(check)
    assert violations == []
    benchmark.extra_info["backend"] = backend


def _choice_schema(width: int) -> str:
    alternatives = "".join(
        f'<xsd:element name="alt{i}" type="xsd:string"/>'
        for i in range(width))
    return wrap_in_schema(
        '<xsd:element name="R"><xsd:complexType>'
        f'<xsd:choice minOccurs="0" maxOccurs="unbounded">{alternatives}'
        "</xsd:choice></xsd:complexType></xsd:element>")


@pytest.mark.parametrize("width", [2, 16, 64])
def test_conformance_vs_choice_width(benchmark, width):
    schema = parse_schema(_choice_schema(width))
    builder = InstanceBuilder(schema, seed=width, max_occurs_cap=50)
    tree = builder.build()
    checker = ConformanceChecker(schema)

    def check():
        return checker.check(tree)

    violations = benchmark(check)
    assert violations == []
    benchmark.extra_info["alternatives"] = width


@pytest.mark.parametrize("depth", [1, 3, 6])
def test_conformance_vs_nesting_depth(benchmark, depth):
    inner = '<xsd:element name="leaf" type="xsd:string"/>'
    for level in range(depth):
        inner = (f'<xsd:element name="level{level}"><xsd:complexType>'
                 f"<xsd:sequence>{inner}</xsd:sequence>"
                 "</xsd:complexType></xsd:element>")
    schema = parse_schema(wrap_in_schema(inner))
    tree = InstanceBuilder(schema, seed=depth).build()
    checker = ConformanceChecker(schema)

    def check():
        return checker.check(tree)

    violations = benchmark(check)
    assert violations == []
    benchmark.extra_info["depth"] = depth


def test_detecting_a_violation_is_not_slower(benchmark, library_schema):
    """Broken trees are diagnosed in one pass too."""
    tree = InstanceBuilder(library_schema, seed=1).build()
    # Sabotage: retype the first book's title.
    from repro.xmlio import xsd
    from repro.xsdtypes import builtin
    book = tree.document_element().element_children()[0]
    title = book.element_children()[0]
    title.algebra.annotate_element(title, xsd("integer"),
                                   simple_type=builtin("integer"))
    checker = ConformanceChecker(library_schema)

    def check():
        return checker.check(tree)

    violations = benchmark(check)
    assert violations
