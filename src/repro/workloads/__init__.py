"""Workloads: the paper's Examples 1-10 plus scalable generators."""

from repro.workloads.bookstore import BOOKS_NAMESPACE, make_bookstore_document
from repro.workloads.library import (
    document_element_count,
    make_irregular_document,
    make_library_document,
)
from repro.workloads import fixtures

__all__ = [
    "BOOKS_NAMESPACE",
    "document_element_count",
    "fixtures",
    "make_bookstore_document",
    "make_irregular_document",
    "make_library_document",
]
