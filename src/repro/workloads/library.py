"""Scalable generators for the Example 8 library document.

``make_library_document`` scales the paper's library to any number of
books and papers while keeping its exact shape (so the descriptive
schema stays the 16 schema nodes of the figure no matter the size —
the DataGuide compression the EX8 benchmark measures).
``make_irregular_document`` is the contrast workload: every element
name is unique, so the descriptive schema degenerates to the document
itself.
"""

from __future__ import annotations

import random

from repro.xmlio.nodes import XmlDocument, XmlElement, XmlText
from repro.xmlio.qname import QName

_TITLES = ("Foundations of Databases", "Principles of Systems",
           "Transaction Processing", "Query Evaluation Techniques",
           "The Art of Indexing", "Semistructured Data")
_AUTHORS = ("Abiteboul", "Hull", "Vianu", "Date", "Codd", "Gray",
            "Stonebraker", "Ullman", "Widom")
_PUBLISHERS = ("Addison-Wesley", "Morgan Kaufmann", "Springer",
               "ACM Press")


def _element(name: str, *children: "XmlElement | str") -> XmlElement:
    element = XmlElement(QName("", name))
    for child in children:
        if isinstance(child, str):
            element.append(XmlText(child))
        else:
            element.append(child)
    return element


def make_library_document(books: int = 10, papers: int = 10,
                          seed: int = 0,
                          max_authors: int = 3,
                          issue_every: int = 2,
                          year_attrs: bool = False) -> XmlDocument:
    """A library document shaped exactly like Example 8, scaled.

    *year_attrs* additionally stamps every book with a ``year``
    attribute (deterministic in *index* and *seed*, off the shared RNG
    stream so existing fixtures keep their exact shape).  The value
    benchmarks and ``[@year...]`` queries need it; the default
    preserves the attribute-free Example 8 figure.
    """
    rng = random.Random(seed)
    root = _element("library")
    for index in range(books):
        book = _element(
            "book",
            _element("title", rng.choice(_TITLES)))
        if year_attrs:
            book.attributes[QName("", "year")] = \
                str(1970 + (index * 7 + seed) % 36)
        for _ in range(rng.randint(1, max_authors)):
            book.append(_element("author", rng.choice(_AUTHORS)))
        if issue_every and index % issue_every == 0:
            book.append(_element(
                "issue",
                _element("publisher", rng.choice(_PUBLISHERS)),
                _element("year", str(rng.randint(1970, 2005)))))
        root.append(book)
    for _ in range(papers):
        paper = _element(
            "paper",
            _element("title", rng.choice(_TITLES)),
            _element("author", rng.choice(_AUTHORS)))
        root.append(paper)
    return XmlDocument(root)


def make_irregular_document(node_count: int, seed: int = 0,
                            fanout: int = 4) -> XmlDocument:
    """A document with *pairwise distinct* element names.

    Every root-to-node path is unique, so the descriptive schema has as
    many schema nodes as the document has elements — the worst case for
    DataGuide compression, used as the EX8 contrast series.
    """
    rng = random.Random(seed)
    counter = 0

    def next_name() -> str:
        nonlocal counter
        counter += 1
        return f"n{counter}"

    root = _element(next_name())
    frontier = [root]
    while counter < node_count:
        parent = rng.choice(frontier)
        child = _element(next_name())
        parent.append(child)
        frontier.append(child)
        if len(frontier) > max(2, node_count // fanout):
            frontier.pop(0)
    return XmlDocument(root)


def document_element_count(document: XmlDocument) -> int:
    """Number of element nodes (the EX8 denominator)."""
    return sum(1 for _ in document.root.iter())
