"""The paper's Examples 1-10 as reusable fixtures.

Examples 1-7 are XML Schema fragments, Example 8 is the library
document (and its descriptive schema, reproduced programmatically by
the storage tests), Examples 9-10 are storage-layout figures exercised
by :mod:`repro.storage`.  Fragment examples (1-6) are wrapped into
minimal valid schemas where needed so that each is parseable on its
own.
"""

from __future__ import annotations

_SCHEMA_HEADER = (
    '<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">')
_SCHEMA_FOOTER = "</xsd:schema>"


def wrap_in_schema(fragment: str) -> str:
    """Wrap a schema fragment into a standalone ``xsd:schema`` document."""
    return f"{_SCHEMA_HEADER}\n{fragment}\n{_SCHEMA_FOOTER}"


#: Example 1 — three element declarations (nillable, repetition, inline
#: anonymous complex type).  The paper shows them as siblings; they are
#: wrapped in a sequence group so the fragment forms one schema.
EXAMPLE_1_FRAGMENT = """
<xsd:element name="Catalogue">
 <xsd:complexType>
  <xsd:sequence>
   <xsd:element name="Remark" type="xsd:string" nillable="true"/>
   <xsd:element name="Book" type="xsd:string"
                minOccurs="0" maxOccurs="1000"/>
   <xsd:element name="Note">
    <xsd:complexType>
     <xsd:sequence>
      <xsd:element name="Text" type="xsd:string"/>
     </xsd:sequence>
    </xsd:complexType>
   </xsd:element>
  </xsd:sequence>
 </xsd:complexType>
</xsd:element>
"""

EXAMPLE_1_SCHEMA = wrap_in_schema(EXAMPLE_1_FRAGMENT)

#: Example 2 — a group as a sequence of elements.
EXAMPLE_2_GROUP = """
<xsd:sequence>
 <xsd:element name="B" type="xsd:string"/>
 <xsd:element name="C" type="xsd:string"/>
</xsd:sequence>
"""

#: Example 3 — a group as a choice of elements.
EXAMPLE_3_GROUP = """
<xsd:choice minOccurs="0" maxOccurs="unbounded">
 <xsd:element name="zero" type="xsd:string"/>
 <xsd:element name="one" type="xsd:string"/>
</xsd:choice>
"""

#: Example 4 — two attribute declarations.
EXAMPLE_4_ATTRIBUTES = """
<xsd:attribute name="InStock" type="xsd:boolean"/>
<xsd:attribute name="Reviewer" type="xsd:string"/>
"""

#: Example 5 — a complex type with simple content (decimal + attribute).
EXAMPLE_5_SCHEMA = wrap_in_schema("""
<xsd:element name="Price">
 <xsd:complexType>
  <xsd:simpleContent>
   <xsd:extension base="xsd:decimal">
    <xsd:attribute name="currency" type="xsd:string"/>
   </xsd:extension>
  </xsd:simpleContent>
 </xsd:complexType>
</xsd:element>
""")

#: Example 6 — mixed complex type with nested Book elements and the two
#: attributes of Example 4.
EXAMPLE_6_SCHEMA = wrap_in_schema("""
<xsd:element name="Review">
 <xsd:complexType mixed="true">
  <xsd:sequence>
   <xsd:element name="Book" minOccurs="0" maxOccurs="1000">
    <xsd:complexType>
     <xsd:sequence>
      <xsd:element name="Title" type="xsd:string"/>
      <xsd:element name="Author" type="xsd:string"/>
      <xsd:element name="Date" type="xsd:string"/>
      <xsd:element name="ISBN" type="xsd:string"/>
      <xsd:element name="Publisher" type="xsd:string"/>
     </xsd:sequence>
    </xsd:complexType>
   </xsd:element>
  </xsd:sequence>
  <xsd:attribute name="InStock" type="xsd:boolean"/>
  <xsd:attribute name="Reviewer" type="xsd:string"/>
 </xsd:complexType>
</xsd:element>
""")

#: Example 7 — the BookStore schema with one named and one anonymous
#: complex type (quoted verbatim from the paper).
EXAMPLE_7_SCHEMA = """
<xsd:schema
  xmlns:xsd="http://www.w3.org/2001/XMLSchema"
  targetNamespace="http://www.books.org"
  xmlns="http://www.books.org"
  elementFormDefault="qualified">
  <xsd:complexType name="BookPublication">
   <xsd:sequence>
    <xsd:element name="Title" type="xsd:string"/>
    <xsd:element name="Author" type="xsd:string"/>
    <xsd:element name="Date" type="xsd:string"/>
    <xsd:element name="ISBN" type="xsd:string"/>
    <xsd:element name="Publisher" type="xsd:string"/>
   </xsd:sequence>
  </xsd:complexType>
  <xsd:element name="BookStore">
   <xsd:complexType>
    <xsd:sequence>
     <xsd:element name="Book"
                  type="BookPublication"
                  maxOccurs="unbounded"/>
    </xsd:sequence>
   </xsd:complexType>
  </xsd:element>
</xsd:schema>
"""

#: A BookStore instance document valid against Example 7.
EXAMPLE_7_DOCUMENT = """
<BookStore xmlns="http://www.books.org">
 <Book>
  <Title>My Life and Times</Title>
  <Author>Paul McCartney</Author>
  <Date>1998</Date>
  <ISBN>94303-12021-43892</ISBN>
  <Publisher>McMillin Publishing</Publisher>
 </Book>
 <Book>
  <Title>Illusions</Title>
  <Author>Richard Bach</Author>
  <Date>1977</Date>
  <ISBN>0-440-34319-4</ISBN>
  <Publisher>Dell Publishing Co.</Publisher>
 </Book>
</BookStore>
"""

#: Example 8 — the library document of Section 9.1 (verbatim content).
EXAMPLE_8_DOCUMENT = """\
<library>
  <book>
    <title>Foundations of Databases</title>
    <author>Abiteboul</author>
    <author>Hull</author>
    <author>Vianu</author>
  </book>
  <book>
    <title>An Introduction to Database Systems</title>
    <author>Date</author>
    <issue>
      <publisher>Addison-Wesley</publisher>
      <year>2004</year>
    </issue>
  </book>
  <paper>
    <title>A Relational Model for Large Shared Data Banks</title>
    <author>Codd</author>
  </paper>
  <paper>
    <title>The Complexity of Relational Query Languages</title>
    <author>Codd</author>
  </paper>
</library>
"""

#: The descriptive schema of Example 8 as (path, node-type) pairs — the
#: schema-node tree drawn in the paper's figure.  Used as the expected
#: value in storage tests.
EXAMPLE_8_DESCRIPTIVE_SCHEMA = (
    ("library", "element"),
    ("library/book", "element"),
    ("library/book/title", "element"),
    ("library/book/title/#text", "text"),
    ("library/book/author", "element"),
    ("library/book/author/#text", "text"),
    ("library/book/issue", "element"),
    ("library/book/issue/publisher", "element"),
    ("library/book/issue/publisher/#text", "text"),
    ("library/book/issue/year", "element"),
    ("library/book/issue/year/#text", "text"),
    ("library/paper", "element"),
    ("library/paper/title", "element"),
    ("library/paper/title/#text", "text"),
    ("library/paper/author", "element"),
    ("library/paper/author/#text", "text"),
)

#: A schema the library document validates against (not given in the
#: paper, which treats Example 8 schema-lessly; used by integration
#: tests that need typed trees).
LIBRARY_SCHEMA = """
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
 <xsd:complexType name="PublicationType">
  <xsd:sequence>
   <xsd:element name="title" type="xsd:string"/>
   <xsd:element name="author" type="xsd:string"
                minOccurs="0" maxOccurs="unbounded"/>
   <xsd:element name="issue" minOccurs="0">
    <xsd:complexType>
     <xsd:sequence>
      <xsd:element name="publisher" type="xsd:string"/>
      <xsd:element name="year" type="xsd:gYear"/>
     </xsd:sequence>
    </xsd:complexType>
   </xsd:element>
  </xsd:sequence>
 </xsd:complexType>
 <xsd:element name="library">
  <xsd:complexType>
   <xsd:sequence>
    <xsd:element name="book" type="PublicationType"
                 minOccurs="0" maxOccurs="unbounded"/>
    <xsd:element name="paper" type="PublicationType"
                 minOccurs="0" maxOccurs="unbounded"/>
   </xsd:sequence>
  </xsd:complexType>
 </xsd:element>
</xsd:schema>
"""

#: Example 10 — the node-descriptor fields of the paper's figure, used
#: as the expected layout by the storage tests.
EXAMPLE_10_DESCRIPTOR_FIELDS = (
    "parent",
    "left_sibling",
    "right_sibling",
    "nid",
    "next_in_block",
    "prev_in_block",
    "children_by_schema",
)
