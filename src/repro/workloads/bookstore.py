"""Scalable generator for Example 7 BookStore instances.

The documents are valid against the paper's schema (asserted by the
conformance tests), which makes this the standard workload of the
validation (VAL) and round-trip (THM) benchmarks.
"""

from __future__ import annotations

import random

from repro.xmlio.nodes import XmlDocument, XmlElement, XmlText
from repro.xmlio.qname import QName

BOOKS_NAMESPACE = "http://www.books.org"

_TITLE_WORDS = ("My", "Life", "Illusions", "Databases", "Algebra",
                "Model", "Schema", "Trees", "Queries", "Storage")
_AUTHORS = ("Paul McCartney", "Richard Bach", "E. F. Codd",
            "C. J. Date", "Serge Abiteboul", "Jennifer Widom")
_PUBLISHERS = ("McMillin Publishing", "Dell Publishing Co.",
               "Addison-Wesley", "ACM Press")


def _leaf(name: str, text: str) -> XmlElement:
    element = XmlElement(QName(BOOKS_NAMESPACE, name))
    element.append(XmlText(text))
    return element


def make_bookstore_document(books: int = 10, seed: int = 0) -> XmlDocument:
    """A BookStore with *books* Book children, valid per Example 7."""
    rng = random.Random(seed)
    root = XmlElement(QName(BOOKS_NAMESPACE, "BookStore"),
                      namespace_decls={"": BOOKS_NAMESPACE})
    for index in range(books):
        book = XmlElement(QName(BOOKS_NAMESPACE, "Book"))
        title = " ".join(rng.sample(_TITLE_WORDS,
                                    k=rng.randint(2, 4)))
        book.append(_leaf("Title", title))
        book.append(_leaf("Author", rng.choice(_AUTHORS)))
        book.append(_leaf("Date", str(rng.randint(1970, 2005))))
        book.append(_leaf("ISBN", f"{rng.randint(0, 99999):05d}-"
                                  f"{rng.randint(0, 99999):05d}-{index}"))
        book.append(_leaf("Publisher", rng.choice(_PUBLISHERS)))
        root.append(book)
    return XmlDocument(root)
