"""Session handles and the session error hierarchy.

A :class:`Session` is one client's view of a served database
(:class:`~repro.server.server.DatabaseServer`).  Two modes:

* **read** — the session pins an immutable snapshot at open
  (:mod:`repro.server.snapshots`) and every query of its lifetime runs
  against that frozen state: repeatable reads, never blocked by (and
  never blocking) the writer, and by the recovery contract the
  snapshot contains exactly the committed transactions — uncommitted
  state is unobservable.
* **write** — the session holds the single-writer intent lease
  (:mod:`repro.server.leases`) and mutates the live engine through the
  WAL-backed transaction manager; every request re-checks the lease so
  an expired holder fails with :class:`LeaseExpired` instead of
  racing a successor.

Every session may carry a **deadline** (a wall-clock budget set at
open).  Requests check it at safe points — including *between logged
operations inside an open transaction* — so an over-budget write
aborts through the ordinary inverse-op rollback and leaves the engine
exactly as before the transaction.

The error classes mirror the library convention: all derive from
:class:`SessionError` (a :class:`~repro.errors.ReproError`), and each
carries a stable ``kind`` for the CLI ``--json`` error objects.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.server.server import DatabaseServer
    from repro.server.snapshots import Snapshot
    from repro.server.leases import Lease
    from repro.storage.descriptor import NodeDescriptor


class SessionError(ReproError):
    """Base class of every session-layer failure."""

    kind = "session"


class SessionClosed(SessionError):
    """A request arrived on a session that was already closed."""

    kind = "session-closed"


class SessionExpired(SessionError):
    """The session (or request) deadline passed.

    Raised at a safe point; an open transaction rolls back through the
    inverse-op machinery, so expiry never leaves partial mutations.
    """

    kind = "session-expired"


class LeaseExpired(SessionError):
    """The writer's intent lease lapsed before the work finished.

    The abandoned work is dead-lettered by the lease manager; the
    holder's transaction rolls back (or, if the process died, recovery
    discards its uncommitted WAL suffix).
    """

    kind = "lease-expired"


class LeaseTimeout(SessionError):
    """A waiter exhausted its bounded retry budget without the lease."""

    kind = "lease-timeout"


class Overloaded(SessionError):
    """The server shed this request instead of queuing it unboundedly.

    ``retry_after`` is the server's backoff hint in seconds; the
    ``--json`` error object carries it, so well-behaved clients can
    retry without hammering.
    """

    kind = "overloaded"

    def __init__(self, message: str, retry_after: float) -> None:
        self.retry_after = retry_after
        super().__init__(message)

    def as_dict(self) -> dict:
        return {"retry_after": self.retry_after}


class Session:
    """One open session: an id, a mode, a deadline, and its isolation
    artifact — a pinned snapshot (read) or the writer lease (write)."""

    __slots__ = ("session_id", "mode", "server", "deadline",
                 "snapshot", "lease", "closed", "opened_ns",
                 "requests")

    def __init__(self, session_id: int, mode: str,
                 server: "DatabaseServer",
                 deadline: Optional[float] = None,
                 snapshot: "Optional[Snapshot]" = None,
                 lease: "Optional[Lease]" = None) -> None:
        if mode not in ("read", "write"):
            raise SessionError(f"unknown session mode {mode!r}")
        self.session_id = session_id
        self.mode = mode
        self.server = server
        #: Absolute ``time.monotonic()`` cutoff, or None (no budget).
        self.deadline = deadline
        self.snapshot = snapshot
        self.lease = lease
        self.closed = False
        self.opened_ns = time.monotonic_ns()
        self.requests = 0

    # -- deadline ---------------------------------------------------------

    def remaining(self) -> Optional[float]:
        """Seconds left on the deadline (None when unbounded)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def check_deadline(self) -> None:
        """Raise :class:`SessionExpired` past the deadline.

        Called at request entry and between logged operations of a
        write transaction — the abort path is the ordinary rollback.
        """
        remaining = self.remaining()
        if remaining is not None and remaining <= 0:
            raise SessionExpired(
                f"session #{self.session_id} deadline exceeded "
                f"({-remaining:.3f}s over budget)")

    def check_open(self) -> None:
        if self.closed:
            raise SessionClosed(f"session #{self.session_id} is closed")

    # -- requests (delegated to the server) -------------------------------

    def query(self, path: str) -> "list[NodeDescriptor]":
        """Evaluate *path* against this session's view."""
        return self.server.query(self, path)

    def query_values(self, path: str) -> list[str]:
        """String values of :meth:`query` (the CLI/benchmark shape)."""
        return self.server.query_values(self, path)

    def execute(self, mutate: "Callable", *,
                timeout: Optional[float] = None):
        """Run *mutate(engine, session)* in one lease-guarded
        transaction on the live engine (write sessions only)."""
        return self.server.execute(self, mutate, timeout=timeout)

    def close(self) -> None:
        """Release the pin/lease and account the session closed."""
        self.server.close_session(self)

    # -- context manager --------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if not self.closed:
            self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (f"Session(#{self.session_id}, {self.mode}, {state}, "
                f"{self.requests} requests)")
