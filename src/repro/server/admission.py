"""Admission control: shed load instead of queuing it unboundedly.

Two gates, both returning the typed :class:`~repro.server.session
.Overloaded` error with a ``retry_after`` hint instead of blocking:

* **max_sessions** — a cap on concurrently open sessions; the N+1-th
  ``open_session`` is refused at the door, before it pins a snapshot
  or joins the lease queue;
* **max_queue_depth** — a cap on requests admitted but not yet
  finished; when the worker loop falls behind, new requests bounce
  rather than growing an unbounded backlog whose tail latency nobody
  asked for.

Refusal is cheap and *safe*: a shed request has touched nothing — no
WAL record, no pin, no lease — so under overload the server degrades
to bounded latency for admitted work plus honest retry hints for the
rest, never to corruption or hang.  (The well-definedness line of the
semantic type-checking literature applies at this boundary too:
requests that cannot be admitted are rejected *before* execution, not
discovered mid-transaction.)

Ill-formed requests are part of the same story: ``open_session``
validates the mode and deadline shape up front, so a malformed request
costs a typed error, never a half-opened session.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro import obs
from repro.server.session import Overloaded

#: Default cap on concurrently open sessions.
DEFAULT_MAX_SESSIONS = 32

#: Default cap on admitted-but-unfinished requests.
DEFAULT_MAX_QUEUE_DEPTH = 64

#: Default retry hint (seconds) carried by Overloaded responses.
DEFAULT_RETRY_AFTER = 0.05


class AdmissionController:
    """Counting gates over sessions and in-flight requests."""

    def __init__(self,
                 max_sessions: int = DEFAULT_MAX_SESSIONS,
                 max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
                 retry_after: float = DEFAULT_RETRY_AFTER) -> None:
        if max_sessions < 1 or max_queue_depth < 1:
            raise ValueError("admission caps must be >= 1")
        self.max_sessions = max_sessions
        self.max_queue_depth = max_queue_depth
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self.active_sessions = 0
        self.queue_depth = 0
        self.rejected_sessions = 0
        self.rejected_requests = 0

    # -- the session gate -------------------------------------------------

    def admit_session(self) -> None:
        """Count a session in, or shed with :class:`Overloaded`."""
        with self._lock:
            if self.active_sessions >= self.max_sessions:
                self.rejected_sessions += 1
                self._shed("sessions",
                           f"{self.active_sessions} open sessions "
                           f"(cap {self.max_sessions})")
            self.active_sessions += 1
        if obs.RECORDING:
            obs.REGISTRY.gauge("server.sessions.active").set(
                self.active_sessions)

    def release_session(self) -> None:
        with self._lock:
            self.active_sessions = max(0, self.active_sessions - 1)
        if obs.RECORDING:
            obs.REGISTRY.gauge("server.sessions.active").set(
                self.active_sessions)

    # -- the request gate -------------------------------------------------

    def enter_request(self) -> None:
        """Count a request in, or shed with :class:`Overloaded`.

        Split from :meth:`exit_request` because the request loop
        admits at submit time and releases on a worker thread.
        """
        with self._lock:
            if self.queue_depth >= self.max_queue_depth:
                self.rejected_requests += 1
                self._shed("queue",
                           f"{self.queue_depth} requests in flight "
                           f"(cap {self.max_queue_depth})")
            self.queue_depth += 1
        if obs.RECORDING:
            obs.REGISTRY.gauge("server.queue.depth").set(
                self.queue_depth)

    def exit_request(self) -> None:
        with self._lock:
            self.queue_depth = max(0, self.queue_depth - 1)
        if obs.RECORDING:
            obs.REGISTRY.gauge("server.queue.depth").set(
                self.queue_depth)

    @contextmanager
    def request(self) -> Iterator[None]:
        """``with admission.request():`` — depth-gate one request."""
        self.enter_request()
        try:
            yield
        finally:
            self.exit_request()

    # -- internals --------------------------------------------------------

    def _shed(self, gate: str, detail: str) -> None:
        """Under the lock: account and raise the typed refusal."""
        if obs.RECORDING:
            obs.REGISTRY.counter("server.overloaded").inc()
            obs.REGISTRY.counter(f"server.overloaded.{gate}").inc()
            if gate == "sessions":
                obs.REGISTRY.counter("server.sessions.rejected").inc()
            obs.EVENTS.emit("server.overloaded", severity="warn",
                            gate=gate, detail=detail,
                            retry_after=self.retry_after)
        raise Overloaded(
            f"overloaded: {detail}; retry after "
            f"{self.retry_after:.3f}s", retry_after=self.retry_after)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "active_sessions": self.active_sessions,
                "queue_depth": self.queue_depth,
                "max_sessions": self.max_sessions,
                "max_queue_depth": self.max_queue_depth,
                "rejected_sessions": self.rejected_sessions,
                "rejected_requests": self.rejected_requests,
                "retry_after": self.retry_after,
            }

    def __repr__(self) -> str:
        return (f"AdmissionController(sessions="
                f"{self.active_sessions}/{self.max_sessions}, "
                f"queue={self.queue_depth}/{self.max_queue_depth})")
