"""MVCC-lite reader snapshots over a storage backend.

A reader must see a frozen, committed state while the writer keeps
appending — without either blocking the other.  The machinery the
durability layer already provides is exactly enough:

* the backend's checkpoint image is immutable once published (atomic
  rename / COMMIT-barrier publish), and
* the WAL scan (:func:`repro.storage.wal.read_wal_store`) yields the
  durable record sequence with torn tails discarded, and
  :meth:`~repro.storage.wal.WalScan.committed_txns` identifies the
  transactions whose COMMIT landed.

So a **snapshot key** is the pair ``(checkpoint_lsn, horizon)`` where
*horizon* is the last LSN belonging to a committed transaction: the
committed-WAL horizon.  Materializing a snapshot replays exactly that
committed prefix onto the checkpoint image — which is
:func:`repro.storage.recovery.recover` verbatim, and inherits its
guarantees: uncommitted and torn suffixes are unobservable by
construction, replay re-derives every numbering label (relabels == 0,
Proposition 1), and the §9 invariants are re-checked.  A snapshot is
copy-on-write at the coarsest possible grain: the reader's descriptor
graph is materialized from durable bytes, shares no mutable object
with the live engine, and is never written again — version *k*'s
descriptors survive unchanged while the writer builds version *k+1*.

Snapshots are cached by key with pin counts: concurrent readers at the
same horizon share one immutable engine (pin is O(1)); a new horizon
materializes once.  Unpinned stale snapshots are evicted when the
cache grows past ``max_cached``; the newest is always retained as the
fast path for the next reader.

The writer never takes part on the fast path: it appends to the WAL
and mutates the live engine while readers pin, query and release —
reader isolation comes from *which bytes* a snapshot reads (the
durable committed prefix), not from excluding the writer.  The WAL's
CRC framing makes a concurrent half-appended record indistinguishable
from a torn tail, which the scan already tolerates; the record simply
falls past the snapshot's horizon.

Key computation and materialization are two steps, so a commit or
checkpoint can land between them: the materialized engine would then
contain state beyond the key it is cached under, and a checkpoint's
image-publish + WAL-reset pair can even make ``recover`` read the old
image against the already-reset log.  :meth:`SnapshotManager.pin`
closes both windows *optimistically*: it re-derives the key after
materializing and publishes only when the two match — a mismatch (or
a recovery error that disappears on re-derivation) means the writer
moved the horizon mid-flight, and the pin retries against the new
durable state.  Under sustained write pressure the retry could starve,
so after a few optimistic rounds the pin serializes with the writer
through the *write latch* the owning server shares with its
commit/checkpoint path.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

from repro import obs
from repro.errors import StorageError
from repro.server.session import SessionError
from repro.storage.recovery import recover
from repro.storage.wal import read_wal_store

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.engine import StorageQueryEngine
    from repro.storage.backends.base import StorageBackend
    from repro.storage.engine import StorageEngine

#: Distinct snapshot versions kept around by default (the newest is
#: never evicted while unpinned; pinned versions are never evicted).
DEFAULT_MAX_CACHED = 4

#: Optimistic key-verify rounds before a pin serializes with the
#: writer through the shared write latch.
PIN_OPTIMISTIC_ATTEMPTS = 3


class Snapshot:
    """One immutable, committed-only view of the database."""

    __slots__ = ("key", "engine", "pins", "relabels", "_queries")

    def __init__(self, key: tuple[int, int],
                 engine: "StorageEngine", relabels: int) -> None:
        #: ``(checkpoint_lsn, committed_wal_horizon)`` — the version id.
        self.key = key
        #: The materialized engine.  Immutable by contract: it has no
        #: transaction manager attached and no writer ever sees it.
        self.engine = engine
        self.pins = 0
        #: Relabels during materialization — always 0 (Proposition 1);
        #: recorded so sessions can assert it without re-deriving.
        self.relabels = relabels
        self._queries: "Optional[StorageQueryEngine]" = None

    @property
    def checkpoint_lsn(self) -> int:
        return self.key[0]

    @property
    def horizon(self) -> int:
        return self.key[1]

    @property
    def version(self) -> str:
        """Human/JSON shape of the key."""
        return f"lsn{self.key[0]}+wal{self.key[1]}"

    def queries(self) -> "StorageQueryEngine":
        """A (lazily built, shared) query engine over the snapshot —
        readers at the same horizon share its plan cache too."""
        if self._queries is None:
            from repro.query.engine import StorageQueryEngine
            self._queries = StorageQueryEngine(self.engine)
        return self._queries

    def __repr__(self) -> str:
        return (f"Snapshot({self.version}, pins={self.pins}, "
                f"{self.engine.node_count()} nodes)")


class SnapshotManager:
    """Pin-counted cache of materialized snapshots over one backend."""

    def __init__(self, backend: "StorageBackend",
                 max_cached: int = DEFAULT_MAX_CACHED,
                 write_latch: Optional[threading.Lock] = None) -> None:
        self.backend = backend
        self.max_cached = max_cached
        #: Lock the owning server holds across every commit and
        #: checkpoint.  Pins fall back to it when optimistic
        #: key-verification keeps losing races against the writer;
        #: holding it makes key computation + materialization atomic
        #: with respect to horizon moves.  ``None`` (standalone use,
        #: no concurrent writer) disables the fallback.
        self._write_latch = write_latch
        self._lock = threading.Lock()
        self._cache: dict[tuple[int, int], Snapshot] = {}
        #: Insertion order of keys (oldest first) for eviction.
        self._order: list[tuple[int, int]] = []

    # -- the version key --------------------------------------------------

    def current_key(self) -> tuple[int, int]:
        """The key a snapshot pinned *now* would get.

        ``checkpoint_lsn`` comes from the backend's published image;
        ``horizon`` is the greatest LSN of any committed record in the
        durable WAL (or the checkpoint LSN when the log holds no newer
        committed work) — together: "image plus committed log prefix".
        """
        engine_lsn = self._image_lsn()
        horizon = engine_lsn
        store = self.backend.wal_store()
        if store is not None:
            scan = read_wal_store(store)
            committed = scan.committed_txns()
            for record in scan.records:
                if record.txn in committed and record.lsn > horizon:
                    horizon = record.lsn
        return (engine_lsn, horizon)

    def _image_lsn(self) -> int:
        # The snapshot list is cheaper than loading the engine, and its
        # newest entry is the published image's horizon by contract.
        snapshots = self.backend.list_snapshots()
        return snapshots[-1].lsn if snapshots else 0

    # -- pin / release ----------------------------------------------------

    def pin(self) -> Snapshot:
        """An immutable snapshot of the current committed state.

        Cache hit: O(1) under the lock.  Miss: materialize via
        :func:`~repro.storage.recovery.recover` (outside the lock —
        readers at other horizons are not blocked), then re-derive the
        key and publish only if it still matches: a commit or
        checkpoint that landed mid-materialization moved the horizon,
        so the engine just built may contain state the key does not
        claim (or recover() may have read a half-advanced image/log
        pair) — the pin retries against the new durable state.  After
        :data:`PIN_OPTIMISTIC_ATTEMPTS` lost races it serializes with
        the writer through the shared write latch instead of starving.
        """
        for _ in range(PIN_OPTIMISTIC_ATTEMPTS):
            key = self.current_key()
            snapshot = self._pin_cached(key)
            if snapshot is not None:
                return snapshot
            try:
                materialized = self._materialize(key)
            except StorageError:
                if self.current_key() == key:
                    raise  # stable horizon: a genuine recovery failure
                continue  # a checkpoint raced recover(); re-derive
            if self.current_key() != key:
                continue  # horizon moved: contents may exceed the key
            return self._publish(key, materialized)
        # Sustained contention: the writer keeps moving the horizon
        # under us.  Take the latch it holds across commit/checkpoint
        # so key + materialization are atomic this round.
        if self._write_latch is None:
            raise SessionError(
                "could not pin a stable snapshot: the committed "
                f"horizon moved {PIN_OPTIMISTIC_ATTEMPTS} times "
                "during materialization and no write latch is "
                "configured to serialize with the writer")
        with self._write_latch:
            key = self.current_key()
            snapshot = self._pin_cached(key)
            if snapshot is not None:
                return snapshot
            materialized = self._materialize(key)
        return self._publish(key, materialized)

    def _pin_cached(self, key: tuple[int, int]) -> Optional[Snapshot]:
        """Pin the cached snapshot at *key*, or None on a miss."""
        with self._lock:
            snapshot = self._cache.get(key)
            if snapshot is not None:
                snapshot.pins += 1
                if obs.RECORDING:
                    obs.REGISTRY.counter(
                        "server.snapshot.cache_hits").inc()
                    self._record_pins()
            return snapshot

    def _publish(self, key: tuple[int, int],
                 materialized: Snapshot) -> Snapshot:
        """Cache *materialized* under *key* (unless another reader
        raced the materialization) and pin the cached copy."""
        with self._lock:
            snapshot = self._cache.get(key)
            if snapshot is None:
                snapshot = materialized
                self._cache[key] = snapshot
                self._order.append(key)
                self._evict_stale()
            snapshot.pins += 1
            if obs.RECORDING:
                self._record_pins()
            return snapshot

    def release(self, snapshot: Snapshot) -> None:
        """Drop one pin; unpinned stale versions become evictable."""
        with self._lock:
            if snapshot.pins <= 0:
                raise SessionError(
                    f"snapshot {snapshot.version} is not pinned")
            snapshot.pins -= 1
            self._evict_stale()
            if obs.RECORDING:
                self._record_pins()

    def pinned(self) -> int:
        """Total pins across cached snapshots."""
        with self._lock:
            return sum(s.pins for s in self._cache.values())

    def cached(self) -> int:
        with self._lock:
            return len(self._cache)

    # -- internals --------------------------------------------------------

    def _materialize(self, key: tuple[int, int]) -> Snapshot:
        # recover() asserts relabels == 0 and the §9 invariants, and by
        # construction replays only the committed prefix — the two
        # halves of the reader-isolation guarantee.
        result = recover(self.backend)
        if obs.RECORDING:
            obs.REGISTRY.counter(
                "server.snapshot.materializations").inc()
        return Snapshot(key, result.engine, result.relabels)

    def _record_pins(self) -> None:
        obs.REGISTRY.gauge("server.snapshot.pinned").set(
            sum(s.pins for s in self._cache.values()))
        obs.REGISTRY.gauge("server.snapshot.cached").set(
            len(self._cache))

    def _evict_stale(self) -> None:
        """Under the lock: drop old unpinned versions past the bound
        (the newest version survives even unpinned — it is the next
        reader's cache hit)."""
        while len(self._order) > self.max_cached:
            for key in list(self._order[:-1]):
                snapshot = self._cache[key]
                if snapshot.pins == 0:
                    del self._cache[key]
                    self._order.remove(key)
                    break
            else:
                return  # everything old is pinned; nothing to evict
