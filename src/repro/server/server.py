"""The served database: sessions, the writer lease, reader snapshots
and a threaded request loop over one storage backend.

:class:`DatabaseServer` owns the live engine (WAL-attached, the only
mutable copy), a :class:`~repro.server.snapshots.SnapshotManager` for
readers, a :class:`~repro.server.leases.LeaseManager` for the single
writer, and an :class:`~repro.server.admission.AdmissionController`
at the front door.  Sessions open in two modes:

* ``open_session("read")`` pins the current committed snapshot; every
  query of the session runs against that frozen engine;
* ``open_session("write")`` claims the writer lease (waiting with
  jittered backoff, bounded by *timeout*); every ``execute`` runs one
  heartbeat-renewed, lease-checked transaction on the live engine.

The **request loop** (:class:`RequestLoop`) is the concurrency
surface: worker threads drain a queue of submitted thunks, admission
gates the queue depth at submit, and each submission hands back a
:class:`PendingRequest` the client awaits.  Clients may equally call
session methods directly (in-process embedding); the loop adds the
bounded queue and the thread pool, not different semantics.

Crash points (``session.lease.granted``, ``session.txn.mid``,
``session.reader.checkpoint``) are threaded through the write path
and the checkpoint path so the crash matrix can kill a lease holder
between grant and first WAL record, mid-transaction, or mid-checkpoint
with readers pinned — recovery must reproduce the committed prefix
with zero relabels in every case.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import TYPE_CHECKING, Callable, Optional

from repro import obs
from repro.server.admission import (
    DEFAULT_MAX_QUEUE_DEPTH,
    DEFAULT_MAX_SESSIONS,
    AdmissionController,
)
from repro.server.leases import DEFAULT_TTL, LeaseManager
from repro.server.session import (
    Session,
    SessionError,
    SessionExpired,
)
from repro.server.snapshots import SnapshotManager
from repro.storage import faults
from repro.storage.engine import StorageEngine
from repro.storage.txn import TransactionManager

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.backends.base import StorageBackend
    from repro.storage.descriptor import NodeDescriptor
    from repro.xmlio.ast import XmlDocument

#: Default writer-lease acquisition budget (seconds).
DEFAULT_ACQUIRE_TIMEOUT = 2.0

#: Default worker threads in the request loop.
DEFAULT_WORKERS = 4


class PendingRequest:
    """A submitted request's eventual result (one-shot future)."""

    __slots__ = ("_done", "_result", "_error")

    def __init__(self) -> None:
        self._done = threading.Event()
        self._result: object = None
        self._error: Optional[BaseException] = None

    def _finish(self, result: object,
                error: Optional[BaseException]) -> None:
        self._result = result
        self._error = error
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None):
        """Block for the result; re-raises what the worker raised."""
        if not self._done.wait(timeout):
            raise SessionExpired(
                f"request still pending after {timeout}s")
        if self._error is not None:
            raise self._error
        return self._result


_STOP = object()


class RequestLoop:
    """Worker threads draining a depth-gated queue of thunks."""

    def __init__(self, admission: AdmissionController,
                 workers: int = DEFAULT_WORKERS) -> None:
        self.admission = admission
        self._queue: "queue.Queue[object]" = queue.Queue()
        #: Orders submissions against stop(): nothing is enqueued
        #: behind the _STOP sentinels, so a submitted request is
        #: always drained by a live worker — never parked forever.
        self._stop_lock = threading.Lock()
        self.stopped = False
        self._threads = [
            threading.Thread(target=self._run, daemon=True,
                             name=f"repro-server-{i}")
            for i in range(max(1, workers))]
        for thread in self._threads:
            thread.start()

    def submit(self, fn: Callable[[], object]) -> PendingRequest:
        """Enqueue *fn*; sheds with ``Overloaded`` past the depth cap.

        The depth slot is held from submit until the worker finishes,
        so the cap bounds queued *plus* executing work.  A stopped
        loop refuses with :class:`SessionError` — its workers have
        exited, so an enqueued request would otherwise wait forever.
        """
        if self.stopped:
            raise SessionError(
                "request loop is stopped; cannot submit")
        self.admission.enter_request()
        try:
            with self._stop_lock:
                if self.stopped:
                    raise SessionError(
                        "request loop is stopped; cannot submit")
                pending = PendingRequest()
                self._queue.put((pending, fn))
                return pending
        except BaseException:
            self.admission.exit_request()
            raise

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            pending, fn = item  # type: ignore[misc]
            try:
                result, error = fn(), None
            except BaseException as exc:  # delivered to the waiter
                result, error = None, exc
            finally:
                self.admission.exit_request()
            pending._finish(result, error)

    def stop(self) -> None:
        with self._stop_lock:
            if self.stopped:
                return
            self.stopped = True
            # Under the lock: every already-submitted request sits
            # ahead of the sentinels and will be finished by a worker
            # before it exits; every later submit() is refused.
            for _ in self._threads:
                self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=5.0)


class DatabaseServer:
    """Many concurrent sessions over one WAL-backed storage backend."""

    def __init__(self, backend: "StorageBackend",
                 document: "Optional[XmlDocument]" = None,
                 *,
                 block_capacity: Optional[int] = None,
                 max_sessions: int = DEFAULT_MAX_SESSIONS,
                 max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
                 lease_ttl: float = DEFAULT_TTL,
                 acquire_timeout: float = DEFAULT_ACQUIRE_TIMEOUT,
                 workers: int = DEFAULT_WORKERS,
                 seed: int = 0,
                 sync_wal: bool = False) -> None:
        self.backend = backend
        if document is not None:
            engine = (StorageEngine(block_capacity=block_capacity)
                      if block_capacity else StorageEngine())
            engine.load_document(document)
        else:
            engine = backend.load_engine()
        self.engine = engine
        wal = backend.open_wal(sync=sync_wal)
        if wal is None:
            raise SessionError(
                f"backend {backend.name!r} has no WAL medium — a "
                "served database needs a log for isolation and "
                "recovery")
        self.wal = wal
        self.txns = TransactionManager(engine, wal)
        if document is not None:
            # Publish version zero so readers can pin immediately.
            backend.checkpoint(engine, wal=wal)
        #: Serializes live-engine reads (write-session queries) with
        #: the writer's mutations; reader sessions never touch it on
        #: the fast path — only a contended snapshot pin falls back to
        #: it (see SnapshotManager.pin).
        self._live_lock = threading.RLock()
        self.snapshots = SnapshotManager(backend,
                                         write_latch=self._live_lock)
        self.leases = LeaseManager(ttl=lease_ttl, seed=seed)
        self.admission = AdmissionController(
            max_sessions=max_sessions,
            max_queue_depth=max_queue_depth)
        self.acquire_timeout = acquire_timeout
        self.loop = RequestLoop(self.admission, workers=workers)
        self._id_lock = threading.Lock()
        self._next_session = 1
        self._live_queries = None
        self.closed = False

    # -- session lifecycle ------------------------------------------------

    def open_session(self, mode: str = "read", *,
                     owner: Optional[str] = None,
                     deadline: Optional[float] = None,
                     timeout: Optional[float] = None) -> Session:
        """Open a session, or shed with ``Overloaded`` at the cap.

        *deadline* is this session's wall-clock budget in seconds
        (checked at safe points by every request); *timeout* bounds
        the writer-lease wait (defaults to the server's
        ``acquire_timeout``).  Ill-formed arguments are rejected here,
        before any pin or claim happens.
        """
        if self.closed:
            raise SessionError("server is closed")
        if mode not in ("read", "write"):
            raise SessionError(f"unknown session mode {mode!r}")
        if deadline is not None and deadline <= 0:
            raise SessionError(
                f"session deadline must be positive, got {deadline}")
        self.admission.admit_session()
        try:
            with self._id_lock:
                session_id = self._next_session
                self._next_session += 1
            name = owner or f"session-{session_id}"
            cutoff = (time.monotonic() + deadline
                      if deadline is not None else None)
            if mode == "read":
                snapshot = self.snapshots.pin()
                session = Session(session_id, "read", self,
                                  deadline=cutoff, snapshot=snapshot)
            else:
                lease = self.leases.acquire(
                    name,
                    timeout=(timeout if timeout is not None
                             else self.acquire_timeout),
                    note=f"write session #{session_id}")
                # Crash window: the lease is granted but no WAL record
                # of this session exists yet.  Recovery sees only the
                # prior committed state.
                faults.fire("session.lease.granted")
                session = Session(session_id, "write", self,
                                  deadline=cutoff, lease=lease)
            if obs.RECORDING:
                obs.REGISTRY.counter("server.sessions.opened").inc()
                obs.EVENTS.emit(
                    "session.open", session=session_id, mode=mode,
                    owner=name,
                    snapshot=(session.snapshot.version
                              if session.snapshot else None))
            return session
        except BaseException:
            self.admission.release_session()
            raise

    def close_session(self, session: Session) -> None:
        if session.closed:
            return
        session.closed = True
        if session.snapshot is not None:
            self.snapshots.release(session.snapshot)
        if session.lease is not None:
            self.leases.release(session.lease)
        self.admission.release_session()
        if obs.RECORDING:
            obs.REGISTRY.counter("server.sessions.closed").inc()
            obs.EVENTS.emit(
                "session.close", session=session.session_id,
                mode=session.mode, requests=session.requests,
                lifetime_ns=time.monotonic_ns() - session.opened_ns)

    # -- requests ---------------------------------------------------------

    def query(self, session: Session,
              path: str) -> "list[NodeDescriptor]":
        """Evaluate *path* against the session's view.

        Read sessions hit their pinned snapshot (no locks shared with
        the writer); write sessions read the live engine under the
        live lock (read-your-writes)."""
        session.check_open()
        session.check_deadline()
        started = time.perf_counter_ns() if obs.RECORDING else 0
        if session.mode == "read":
            result = session.snapshot.queries().evaluate(path)
        else:
            self.leases.check(session.lease)
            with self._live_lock:
                result = self._live_query_engine().evaluate(path)
        self._account_request(session, "read", started)
        return result

    def query_values(self, session: Session, path: str) -> list[str]:
        engine = (session.snapshot.engine
                  if session.mode == "read" else self.engine)
        return [engine.string_value(descriptor)
                for descriptor in self.query(session, path)]

    def execute(self, session: Session, mutate: Callable, *,
                timeout: Optional[float] = None):
        """One lease-guarded transaction: ``mutate(engine, session)``.

        The lease is heartbeat-renewed on entry and re-checked before
        commit; *timeout* tightens the session deadline for this
        request only.  Deadline or lease failure inside the
        transaction aborts through the inverse-op rollback — the
        engine state is exactly as before the call.
        """
        session.check_open()
        if session.mode != "write":
            raise SessionError(
                f"session #{session.session_id} is read-only "
                "(opened in read mode)")
        previous_deadline = session.deadline
        if timeout is not None:
            cutoff = time.monotonic() + timeout
            session.deadline = (cutoff if previous_deadline is None
                                else min(previous_deadline, cutoff))
        started = time.perf_counter_ns() if obs.RECORDING else 0
        try:
            session.check_deadline()
            self.leases.renew(session.lease)  # heartbeat
            with self._live_lock:
                with self.txns.transaction():
                    result = mutate(self.engine, session)
                    # Crash window: logged operations exist, COMMIT
                    # does not.  Recovery discards the suffix.
                    faults.fire("session.txn.mid")
                    session.check_deadline()
                    # Expiry during commit: a lapsed holder rolls
                    # back instead of publishing.
                    self.leases.check(session.lease)
                self._invalidate_live_queries()
        finally:
            session.deadline = previous_deadline
        self._account_request(session, "write", started)
        return result

    def submit(self, fn: Callable[[], object]) -> PendingRequest:
        """Queue *fn* on the threaded request loop (depth-gated).

        Refused with :class:`SessionError` once the server is closed
        — the workers are gone, so the request could never run."""
        if self.closed:
            raise SessionError("server is closed; cannot submit")
        return self.loop.submit(fn)

    # -- maintenance ------------------------------------------------------

    def checkpoint_now(self):
        """Checkpoint the live engine (the writer's horizon advance).

        Readers keep their pins across it — their snapshots were
        materialized from the *previous* durable state and stay
        valid; the named crash point covers the server dying here
        while readers outlive the old checkpoint.
        """
        with self._live_lock:
            info = self.backend.checkpoint(self.engine, wal=self.wal)
        if self.snapshots.pinned():
            faults.fire("session.reader.checkpoint")
        if obs.RECORDING:
            obs.REGISTRY.counter("server.checkpoints").inc()
        return info

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.loop.stop()
        self.wal.close()
        self.txns.detach()

    def __enter__(self) -> "DatabaseServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals --------------------------------------------------------

    def _live_query_engine(self):
        if self._live_queries is None:
            from repro.query.engine import StorageQueryEngine
            self._live_queries = StorageQueryEngine(self.engine)
        return self._live_queries

    def _invalidate_live_queries(self) -> None:
        # StorageQueryEngine tracks engine mutations itself (schema
        # version restamps); nothing to do, kept as the named seam.
        pass

    def _account_request(self, session: Session, kind: str,
                         started: int) -> None:
        session.requests += 1
        if not obs.RECORDING:
            return
        elapsed = time.perf_counter_ns() - started
        registry = obs.REGISTRY
        registry.counter("server.requests").inc()
        registry.counter(f"server.requests.{kind}").inc()
        registry.histogram("server.session.latency.ns").observe(elapsed)
        registry.histogram(f"server.{kind}.latency.ns").observe(elapsed)

    def __repr__(self) -> str:
        return (f"DatabaseServer({self.backend.name}, "
                f"{self.admission.active_sessions} sessions)")


def server_report(registry=None) -> dict:
    """The ``server`` telemetry section (``repro serve --json`` and
    ``repro top``): session/lease/request/snapshot counters plus the
    lease-wait and per-mode latency histograms."""
    registry = registry if registry is not None else obs.REGISTRY

    def histogram(name: str) -> dict:
        instrument = registry.get(name)
        return instrument.summary() if instrument is not None else \
            {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
             "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    return {
        "sessions": {
            "opened": registry.value("server.sessions.opened"),
            "closed": registry.value("server.sessions.closed"),
            "rejected": registry.value("server.sessions.rejected"),
            "active": registry.value("server.sessions.active"),
        },
        "lease": {
            "grants": registry.value("server.lease.grants"),
            "renewals": registry.value("server.lease.renewals"),
            "releases": registry.value("server.lease.releases"),
            "expirations": registry.value("server.lease.expirations"),
            "timeouts": registry.value("server.lease.timeouts"),
            "contended": registry.value("server.lease.contended"),
            "wait_ns": histogram("server.lease.wait.ns"),
        },
        "requests": {
            "total": registry.value("server.requests"),
            "reads": registry.value("server.requests.read"),
            "writes": registry.value("server.requests.write"),
            "overloaded": registry.value("server.overloaded"),
            "queue_depth": registry.value("server.queue.depth"),
            "read_latency_ns": histogram("server.read.latency.ns"),
            "write_latency_ns": histogram("server.write.latency.ns"),
            "session_latency_ns":
                histogram("server.session.latency.ns"),
        },
        "snapshots": {
            "materializations":
                registry.value("server.snapshot.materializations"),
            "cache_hits":
                registry.value("server.snapshot.cache_hits"),
            "pinned": registry.value("server.snapshot.pinned"),
            "cached": registry.value("server.snapshot.cached"),
        },
    }
