"""The single-writer intent lease: expiry, heartbeat, backoff,
dead-lettering.

The storage engine admits exactly one mutator (the transaction manager
forbids nesting, and the WAL is a single append stream), so writer
concurrency is a *handoff* problem, not a sharing problem.  The shape
here is the event-store claim pattern: a writer **claims** the intent
to mutate, the claim **expires** at ``lease_until`` unless the worker
heartbeats (:meth:`LeaseManager.renew`), and work abandoned by an
expired holder is recorded as a **dead letter** — an explicit,
drainable acknowledgment that the handoff happened mid-work, rather
than silent forfeiture.  Durability does not depend on the lease: an
expired holder's unfinished transaction either rolls back in-process
(its next lease check raises :class:`LeaseExpired`) or, if the process
died, recovery discards the uncommitted WAL suffix.  The lease only
bounds *who may append next*, which is why a TTL plus heartbeats is
enough — there is no distributed state to fence.

Waiters retry under **bounded jittered exponential backoff**: attempt
*n* sleeps ``uniform(delay/2, delay)`` where ``delay = base * 2**n``
capped at ``max_backoff`` — the classic decorrelation that keeps N
blocked writers from stampeding the moment a lease frees.  The RNG is
seeded per manager (explicitly, never module-global), so contention
tests replay exactly.  A waiter that exhausts its timeout budget gets
:class:`LeaseTimeout` — bounded retry, not an unbounded queue.

All waiting runs through one condition variable so releases wake
waiters immediately; the backoff delay only caps how long a waiter
sleeps *between* checks when nothing was signalled (e.g. the holder
died without releasing and the lease must time out).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs
from repro.server.session import LeaseExpired, LeaseTimeout

#: Default lease TTL in seconds — long enough for a transaction, short
#: enough that a dead holder stalls successors only briefly.
DEFAULT_TTL = 0.5

#: First backoff delay (seconds); attempt n sleeps ~ base * 2**n.
DEFAULT_BASE_BACKOFF = 0.005

#: Backoff delay cap (seconds).
DEFAULT_MAX_BACKOFF = 0.1


@dataclass
class DeadLetter:
    """Work abandoned by an expired lease holder."""

    owner: str
    granted_ns: int
    expired_ns: int
    renewals: int
    note: str = ""

    def as_dict(self) -> dict:
        return {
            "owner": self.owner,
            "granted_ns": self.granted_ns,
            "expired_ns": self.expired_ns,
            "renewals": self.renewals,
            "note": self.note,
        }


@dataclass
class Lease:
    """One writer's claim on the mutation right."""

    owner: str
    lease_until: float          # monotonic seconds; expiry cutoff
    granted_ns: int             # monotonic_ns at grant (telemetry)
    renewals: int = 0
    note: str = ""              # what the holder is doing (dead letters)
    revoked: bool = field(default=False, repr=False)

    def as_dict(self) -> dict:
        return {"owner": self.owner, "lease_until": self.lease_until,
                "renewals": self.renewals, "note": self.note}


class LeaseManager:
    """Grants, renews, expires and dead-letters the writer lease."""

    def __init__(self, ttl: float = DEFAULT_TTL,
                 base_backoff: float = DEFAULT_BASE_BACKOFF,
                 max_backoff: float = DEFAULT_MAX_BACKOFF,
                 seed: int = 0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.ttl = ttl
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        #: Explicit seed: backoff jitter replays exactly per manager.
        self.seed = seed
        self._rng = random.Random(seed)
        self._clock = clock
        self._lock = threading.Lock()
        self._freed = threading.Condition(self._lock)
        self._holder: Optional[Lease] = None
        self.dead_letters: list[DeadLetter] = []
        self.grants = 0
        self.expirations = 0

    # -- backoff ----------------------------------------------------------

    def backoff_delay(self, attempt: int) -> float:
        """The jittered sleep before retry *attempt* (0-based).

        Uniform in ``[delay/2, delay]`` with
        ``delay = min(base * 2**attempt, max_backoff)`` — bounded
        below (never a zero-sleep hot spin) and above (the cap).
        """
        delay = min(self.base_backoff * (2 ** attempt),
                    self.max_backoff)
        with self._lock:
            fraction = self._rng.random()
        return delay * (0.5 + 0.5 * fraction)

    # -- the claim protocol ----------------------------------------------

    def acquire(self, owner: str, timeout: Optional[float] = None,
                note: str = "") -> Lease:
        """Claim the lease, waiting with bounded jittered backoff.

        Raises :class:`LeaseTimeout` when *timeout* seconds pass
        without a grant.  An expired incumbent is dead-lettered and
        displaced on the spot — the expiry check runs under the same
        lock as the grant, so exactly one waiter wins.
        """
        started = time.monotonic_ns()
        deadline = (self._clock() + timeout
                    if timeout is not None else None)
        attempt = 0
        while True:
            with self._lock:
                now = self._clock()
                self._expire_locked(now)
                if self._holder is None:
                    lease = Lease(owner=owner,
                                  lease_until=now + self.ttl,
                                  granted_ns=time.monotonic_ns(),
                                  note=note)
                    self._holder = lease
                    self.grants += 1
                    self._observe_wait(started, attempt, granted=True)
                    if obs.RECORDING:
                        obs.EVENTS.emit("lease.granted", owner=owner,
                                        lease_until=lease.lease_until,
                                        attempts=attempt)
                    return lease
                if deadline is not None and now >= deadline:
                    self._observe_wait(started, attempt, granted=False)
                    raise LeaseTimeout(
                        f"writer {owner!r} gave up after "
                        f"{attempt} attempt(s): lease held by "
                        f"{self._holder.owner!r} until "
                        f"{self._holder.lease_until:.3f}")
                # Sleep until: release signal, incumbent expiry, our
                # deadline, or the jittered backoff — whichever first.
                holder_expiry = self._holder.lease_until - now
                wait = min(self.backoff_delay_locked(attempt),
                           max(holder_expiry, 0.0) + 1e-4)
                if deadline is not None:
                    wait = min(wait, max(deadline - now, 0.0) + 1e-4)
                self._freed.wait(wait)
            attempt += 1

    def backoff_delay_locked(self, attempt: int) -> float:
        """:meth:`backoff_delay` for callers already holding the lock."""
        delay = min(self.base_backoff * (2 ** attempt),
                    self.max_backoff)
        return delay * (0.5 + 0.5 * self._rng.random())

    def renew(self, lease: Lease) -> Lease:
        """Heartbeat: extend ``lease_until`` by one TTL.

        Renewal *races* expiry by design: whichever reaches the lock
        first wins, atomically — a renewal that arrives after expiry
        (or after a successor claimed) raises :class:`LeaseExpired`
        with the work dead-lettered, never a split-brain extension.
        """
        with self._lock:
            now = self._clock()
            if self._holder is not lease or lease.revoked:
                raise LeaseExpired(
                    f"writer {lease.owner!r} lost the lease "
                    "(expired and reclaimed)")
            if now >= lease.lease_until:
                self._expire_locked(now)
                raise LeaseExpired(
                    f"writer {lease.owner!r} heartbeat arrived "
                    f"{now - lease.lease_until:.3f}s after expiry")
            lease.lease_until = now + self.ttl
            lease.renewals += 1
            if obs.RECORDING:
                obs.REGISTRY.counter("server.lease.renewals").inc()
            return lease

    def check(self, lease: Lease) -> None:
        """Raise :class:`LeaseExpired` unless *lease* is still live.

        Write paths call this before commit: an expired holder aborts
        (rollback) instead of publishing under a lapsed claim.
        """
        with self._lock:
            now = self._clock()
            if self._holder is not lease or lease.revoked \
                    or now >= lease.lease_until:
                self._expire_locked(now)
                raise LeaseExpired(
                    f"writer {lease.owner!r} holds no live lease")

    def release(self, lease: Lease) -> None:
        """Return the lease (normal completion); wakes one waiter.

        Releasing an already-expired/reclaimed lease is a no-op — the
        dead letter was recorded when the expiry was observed.
        """
        with self._lock:
            if self._holder is lease and not lease.revoked:
                self._holder = None
                self._freed.notify_all()
                if obs.RECORDING:
                    obs.REGISTRY.counter("server.lease.releases").inc()

    def holder(self) -> Optional[Lease]:
        with self._lock:
            self._expire_locked(self._clock())
            return self._holder

    def drain_dead_letters(self) -> list[DeadLetter]:
        """Return and clear the dead-letter records (operator drain)."""
        with self._lock:
            drained, self.dead_letters = self.dead_letters, []
            return drained

    # -- internals --------------------------------------------------------

    def _expire_locked(self, now: float) -> None:
        holder = self._holder
        if holder is None or now < holder.lease_until:
            return
        holder.revoked = True
        self._holder = None
        self.expirations += 1
        letter = DeadLetter(owner=holder.owner,
                            granted_ns=holder.granted_ns,
                            expired_ns=time.monotonic_ns(),
                            renewals=holder.renewals,
                            note=holder.note)
        self.dead_letters.append(letter)
        self._freed.notify_all()
        if obs.RECORDING:
            obs.REGISTRY.counter("server.lease.expirations").inc()
            obs.EVENTS.emit("lease.expired", severity="warn",
                            **letter.as_dict())
            obs.EVENTS.emit("lease.dead_letter", severity="warn",
                            owner=letter.owner, note=letter.note)

    def _observe_wait(self, started_ns: int, attempts: int,
                      granted: bool) -> None:
        if not obs.RECORDING:
            return
        obs.REGISTRY.histogram("server.lease.wait.ns").observe(
            time.monotonic_ns() - started_ns)
        if granted:
            obs.REGISTRY.counter("server.lease.grants").inc()
            if attempts:
                obs.REGISTRY.counter("server.lease.contended").inc()
        else:
            obs.REGISTRY.counter("server.lease.timeouts").inc()

    def __repr__(self) -> str:
        with self._lock:
            held = self._holder.owner if self._holder else None
        return (f"LeaseManager(ttl={self.ttl}, holder={held!r}, "
                f"dead_letters={len(self.dead_letters)})")
