"""The session layer: many concurrent sessions over one database.

Readers pin immutable MVCC-lite snapshots (committed state only,
keyed by checkpoint LSN + committed-WAL horizon); the single writer
holds an expiring, heartbeat-renewed intent lease with jittered-
backoff waiters and dead-letter records; admission control sheds load
with typed ``Overloaded`` responses instead of queuing unboundedly.
See DESIGN §14 for the architecture and the isolation guarantees.
"""

from repro.server.admission import (
    DEFAULT_MAX_QUEUE_DEPTH,
    DEFAULT_MAX_SESSIONS,
    DEFAULT_RETRY_AFTER,
    AdmissionController,
)
from repro.server.leases import (
    DEFAULT_BASE_BACKOFF,
    DEFAULT_MAX_BACKOFF,
    DEFAULT_TTL,
    DeadLetter,
    Lease,
    LeaseManager,
)
from repro.server.server import (
    DEFAULT_ACQUIRE_TIMEOUT,
    DEFAULT_WORKERS,
    DatabaseServer,
    PendingRequest,
    RequestLoop,
    server_report,
)
from repro.server.session import (
    LeaseExpired,
    LeaseTimeout,
    Overloaded,
    Session,
    SessionClosed,
    SessionError,
    SessionExpired,
)
from repro.server.snapshots import (
    DEFAULT_MAX_CACHED,
    Snapshot,
    SnapshotManager,
)

__all__ = [
    "AdmissionController",
    "DEFAULT_ACQUIRE_TIMEOUT",
    "DEFAULT_BASE_BACKOFF",
    "DEFAULT_MAX_BACKOFF",
    "DEFAULT_MAX_CACHED",
    "DEFAULT_MAX_QUEUE_DEPTH",
    "DEFAULT_MAX_SESSIONS",
    "DEFAULT_RETRY_AFTER",
    "DEFAULT_TTL",
    "DEFAULT_WORKERS",
    "DatabaseServer",
    "DeadLetter",
    "Lease",
    "LeaseExpired",
    "LeaseManager",
    "LeaseTimeout",
    "Overloaded",
    "PendingRequest",
    "RequestLoop",
    "Session",
    "SessionClosed",
    "SessionError",
    "SessionExpired",
    "Snapshot",
    "SnapshotManager",
    "server_report",
]
