"""Exception hierarchy for the whole library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate by subsystem.

Each class carries a ``kind`` — a stable, dash-separated identifier that
the CLI ``--json`` error objects expose.  Class names are Python API and
may be refactored; ``kind`` strings are wire format and may not, so
machine consumers match on ``kind``, never on ``type``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""

    #: Stable machine-readable error category for ``--json`` consumers.
    kind = "error"


class XmlSyntaxError(ReproError):
    """The input text is not a well-formed XML document.

    Carries the 1-based ``line`` and ``column`` of the offending position
    when they are known.
    """

    kind = "xml-syntax"

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class TypeSystemError(ReproError):
    """Misuse of the simple-type system (unknown type, bad derivation...)."""

    kind = "type-system"


class LexicalError(TypeSystemError):
    """A literal is not in the lexical space of the requested type."""

    kind = "lexical"

    def __init__(self, type_name: str, literal: str,
                 reason: str | None = None) -> None:
        self.type_name = type_name
        self.literal = literal
        msg = f"{literal!r} is not a valid {type_name}"
        if reason:
            msg = f"{msg}: {reason}"
        super().__init__(msg)


class FacetError(TypeSystemError):
    """A facet constraint is violated or a facet is ill-formed."""

    kind = "facet"


class SchemaError(ReproError):
    """The document schema itself is ill-formed (abstract syntax level)."""

    kind = "schema"


class SchemaSyntaxError(SchemaError):
    """The XSD source text does not map to the supported abstract syntax."""

    kind = "schema-syntax"


class TypeUsageError(SchemaError):
    """Violation of the Section 3 type-usage requirement.

    Every named type used in a schema must be in ``dom(ctd)``, a simple
    type name, or an inline anonymous definition.
    """

    kind = "type-usage"


class ModelError(ReproError):
    """Misuse of the XDM node model (wrong accessor, wrong node kind...)."""

    kind = "model"


class AlgebraError(ReproError):
    """Violation of state-algebra invariants (sort disjointness etc.)."""

    kind = "algebra"


class ConformanceError(ReproError):
    """A document tree violates one of the Section 6.2 requirements.

    ``item`` names the requirement from the paper (e.g. ``"5.1.1"``) and
    ``path`` locates the offending node as a human-readable path.
    """

    kind = "conformance"

    def __init__(self, item: str, message: str,
                 path: str | None = None) -> None:
        self.item = item
        self.path = path
        loc = f" at {path}" if path else ""
        super().__init__(f"requirement {item} violated{loc}: {message}")


class ValidationError(ReproError):
    """A raw XML document does not validate against a schema."""

    kind = "validation"


class ContentModelError(ReproError):
    """A content model is ill-formed or a child sequence does not match."""

    kind = "content-model"


class StorageError(ReproError):
    """Invariant violation inside the simulated Sedna storage engine."""

    kind = "storage"


class CorruptionError(StorageError):
    """Stored bytes are damaged (truncated, torn, or CRC-mismatched).

    Carries a backend-labeled location so ``--json`` error objects stay
    meaningful whatever medium held the bytes: ``backend`` names the
    storage backend ("file", "sqlite", "memory") and ``location`` is
    that backend's address vocabulary — a file byte offset, a sqlite
    rowid, or a snapshot version.
    """

    kind = "corruption"

    def __init__(self, message: str, backend: str | None = None,
                 location: str | None = None) -> None:
        self.backend = backend
        self.location = location
        super().__init__(message)

    def as_dict(self) -> dict:
        return {"backend": self.backend, "location": self.location}


class UpdateError(StorageError):
    """An engine mutation was rejected up front (bad arguments).

    Raised *before* anything changes — deleting the document root,
    inserting at an out-of-range index, attaching attributes to a
    text node — so a refused update never leaves a half-mutated
    sibling chain behind.
    """

    kind = "update"


class LabelError(StorageError):
    """A numbering label operation is impossible (exhausted alphabet...)."""

    kind = "label"


class QueryError(ReproError):
    """A path query is syntactically invalid or applied to a bad context."""

    kind = "query"
