"""An XML database of named documents evolving through states.

Section 6.1 motivates the state algebra with "frequent insertion of
new documents, updating existing documents and deleting obsolete
documents: a database evolves through different database states".
This module provides that database layer on top of everything below
it: each stored document keeps *both* representations — the formal
node tree (Sections 5-6) and the Sedna-style storage (Section 9) —
applies updates to the two in lockstep, and can re-verify at any time
that they agree node-for-node and that the tree still conforms to its
schema.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ReproError
from repro.xmlio.nodes import XmlDocument
from repro.xmlio.parser import parse_document
from repro.xmlio.qname import QName
from repro.xmlio.serializer import serialize_document
from repro.xdm.node import DocumentNode, ElementNode, Node, TextNode
from repro.xdm.store import TreeNodeStore, bisimulate
from repro.algebra.conformance import ConformanceChecker, Violation
from repro.algebra.state import StateAlgebra
from repro.mapping.doc_to_tree import (
    document_to_tree,
    untyped_document_to_tree,
)
from repro.mapping.tree_to_doc import tree_to_document
from repro.query.engine import StorageQueryEngine, evaluate_tree
from repro.schema.ast import (
    ComplexContentType,
    DocumentSchema,
    ElementDeclaration as SchemaElementDeclaration,
    SimpleContentType,
    TypeName,
)
from repro.xdm.node import ANY_TYPE_NAME
from repro.xsdtypes.base import SimpleType
from repro.storage.engine import NodeDescriptor, StorageEngine
from repro.storage.store import StorageNodeStore


class DatabaseError(ReproError):
    """Misuse of the database layer (unknown document, bad target...)."""


class StoredDocument:
    """One document held in both representations, updated in lockstep."""

    def __init__(self, name: str, tree: DocumentNode,
                 schema: DocumentSchema | None) -> None:
        self.name = name
        self.schema = schema
        self.tree = tree
        self.algebra: StateAlgebra = tree.algebra
        self.engine = StorageEngine()
        self.engine.load_tree(tree)
        self._queries = StorageQueryEngine(self.engine)
        #: The two accessor-protocol views of this document.
        self.tree_store = TreeNodeStore(tree)
        self.storage_store = StorageNodeStore(self.engine)
        #: Persistent node↔descriptor correspondence, maintained at
        #: mutation time (lookups are O(1); no positional re-walks).
        self._descriptors: dict[Node, NodeDescriptor] = {}
        self._build_correspondence()
        #: Number of state transitions this document has gone through.
        self.version = 0

    # -- reading ----------------------------------------------------------

    def query(self, path: str) -> list[Node]:
        """Evaluate a path over the formal tree."""
        return evaluate_tree(self.tree, path)

    def query_values(self, path: str) -> list[str]:
        """String values of the query result."""
        return [node.string_value() for node in self.query(path)]

    def query_storage(self, path: str) -> list[NodeDescriptor]:
        """The same query, answered by the storage engine through the
        plan cache (safe across updates: plans invalidate when the
        descriptive schema grows, and a data-only update just adds
        descriptors to block lists the cached plan already scans)."""
        return self._queries.evaluate(path)

    def serialize(self, indent: str | None = None) -> str:
        """The mapping g composed with the text serializer."""
        return serialize_document(tree_to_document(self.tree),
                                  indent=indent)

    # -- locating update targets ----------------------------------------

    def _single_element(self, path: str) -> ElementNode:
        matches = [node for node in self.query(path)
                   if isinstance(node, ElementNode)]
        if not matches:
            raise DatabaseError(f"{path!r} selects no element")
        if len(matches) > 1:
            raise DatabaseError(
                f"{path!r} selects {len(matches)} elements; updates "
                "need exactly one target")
        return matches[0]

    def _descriptor_for(self, node: Node) -> NodeDescriptor:
        """The storage descriptor of a tree node: one dictionary
        lookup in the persistent correspondence."""
        try:
            return self._descriptors[node]
        except KeyError:
            raise DatabaseError(
                "tree and storage have diverged") from None

    def _build_correspondence(self) -> None:
        """Pair every tree node with its storage descriptor by one
        parallel walk (element/text children positionally, attributes
        by name); afterwards the map is maintained incrementally."""
        document = self.engine.document
        if document is None:  # pragma: no cover - engine always loaded
            raise DatabaseError("storage engine holds no document")
        self._map_subtree(self.tree, document)

    def _map_subtree(self, node: Node,
                     descriptor: NodeDescriptor) -> None:
        self._descriptors[node] = descriptor
        stored_attrs = {self.engine.node_name(d).local: d
                        for d in self.engine.attributes(descriptor)}
        for attribute in node.attributes():
            local = attribute.node_name().head().local
            stored = stored_attrs.get(local)
            if stored is None:
                raise DatabaseError(
                    f"attribute {local!r} has no storage descriptor")
            self._descriptors[attribute] = stored
        node_children = list(node.children())
        stored_children = self.engine.children(descriptor)
        if len(node_children) != len(stored_children):
            raise DatabaseError(
                f"child count differs under {node!r}")
        for child, child_descriptor in zip(node_children,
                                           stored_children):
            self._map_subtree(child, child_descriptor)

    def _forget_subtree(self, node: Node) -> None:
        """Drop a deleted subtree's entries from the correspondence."""
        self._descriptors.pop(node, None)
        for attribute in node.attributes():
            self._descriptors.pop(attribute, None)
        for child in node.children():
            self._forget_subtree(child)

    # -- updates ------------------------------------------------------------

    def insert_element(self, parent_path: str, index: int,
                       name: str) -> ElementNode:
        """Insert an empty element under the (single) element selected
        by *parent_path*, in both representations."""
        parent = self._single_element(parent_path)
        parent_descriptor = self._descriptor_for(parent)
        qname = QName(parent.name.uri, name)
        element = self.algebra.create_element(qname)
        self._annotate_new_element(parent, element)
        self.algebra.insert_child(parent, index, element)
        descriptor = self.engine.insert_child(parent_descriptor, index,
                                              name=qname)
        self._descriptors[element] = descriptor
        self.version += 1
        return element

    def _declaration_of(self, element: ElementNode
                        ) -> "SchemaElementDeclaration | None":
        """The schema declaration governing *element*, found by
        walking declarations from the root along the element's path."""
        if self.schema is None:
            return None
        names = [element.name.local]
        for ancestor in element.ancestors():
            if isinstance(ancestor, ElementNode):
                names.append(ancestor.name.local)
        names.reverse()
        declaration = self.schema.root_element
        if names[0] != declaration.name:
            return None
        for step in names[1:]:
            resolved = self.schema.resolve(declaration.type)
            if not isinstance(resolved, ComplexContentType) or \
                    resolved.group is None:
                return None
            declaration = next(
                (eld for eld in resolved.group.element_declarations()
                 if eld.name == step), None)
            if declaration is None:
                return None
        return declaration

    def _annotate_new_element(self, parent: ElementNode,
                              element: ElementNode) -> None:
        """Give a freshly inserted element the type annotation the
        schema assigns it (item 4 of Section 6.2), so conformance can
        be re-checked after updates."""
        if self.schema is None:
            return
        # Temporarily reason as if the element were already attached.
        names_parent = self._declaration_of(parent)
        if names_parent is None:
            return
        resolved_parent = self.schema.resolve(names_parent.type)
        if not isinstance(resolved_parent, ComplexContentType) or \
                resolved_parent.group is None:
            return
        declaration = next(
            (eld for eld in resolved_parent.group.element_declarations()
             if eld.name == element.name.local), None)
        if declaration is None:
            return
        type_name = (declaration.type.qname
                     if isinstance(declaration.type, TypeName)
                     else ANY_TYPE_NAME)
        resolved = self.schema.resolve(declaration.type)
        simple = None
        if isinstance(resolved, SimpleType):
            simple = resolved
        elif isinstance(resolved, SimpleContentType):
            base = self.schema.resolve(resolved.base)
            if isinstance(base, SimpleType):
                simple = base
        self.algebra.annotate_element(element, type_name,
                                      simple_type=simple)

    def insert_text(self, parent_path: str, index: int,
                    text: str) -> TextNode:
        """Insert a text node in both representations."""
        parent = self._single_element(parent_path)
        parent_descriptor = self._descriptor_for(parent)
        node = self.algebra.create_text(text)
        self.algebra.insert_child(parent, index, node)
        descriptor = self.engine.insert_child(parent_descriptor, index,
                                              text=text)
        self._descriptors[node] = descriptor
        self.version += 1
        return node

    def delete(self, path: str) -> int:
        """Delete the (single) element selected by *path* and its
        subtree from both representations; returns nodes removed."""
        target = self._single_element(path)
        parent = target.parent_or_none()
        # Only elements below the root element are deletable: the root
        # element's parent is the document node, and a document must
        # keep its single element child (Section 3).
        if not isinstance(parent, ElementNode):
            raise DatabaseError("cannot delete the document root")
        descriptor = self._descriptor_for(target)
        removed = self.engine.delete_subtree(descriptor)
        self.algebra.remove_child(parent, target)
        self._forget_subtree(target)
        self.version += 1
        return removed

    def set_attribute(self, path: str, name: str, value: str) -> None:
        """Set an attribute in both representations: attach it when
        absent, replace its value in place when already present."""
        target = self._single_element(path)
        descriptor = self._descriptor_for(target)
        qname = QName("", name)
        existing = next((a for a in target.attributes()
                         if a.name == qname), None)
        if existing is not None:
            self.algebra.set_attribute_value(existing, value)
            self.engine.set_attribute(descriptor, qname, value,
                                      replace=True)
        else:
            attribute = self.algebra.create_attribute(qname, value)
            self.algebra.attach_attribute(target, attribute)
            attr_descriptor = self.engine.set_attribute(descriptor,
                                                        qname, value)
            self._descriptors[attribute] = attr_descriptor
        self.version += 1

    # -- verification ---------------------------------------------------------

    def check_conformance(self) -> list[Violation]:
        """Section 6.2 violations of the current state (empty if the
        document has no schema)."""
        if self.schema is None:
            return []
        return ConformanceChecker(self.schema).check(self.tree)

    def verify_consistency(self) -> None:
        """Assert the two representations agree node-for-node: the §9
        invariants hold and the tree and storage views bisimulate."""
        self.engine.check_invariants()
        bisimulate(self.tree_store, self.storage_store)

    def __repr__(self) -> str:
        return (f"StoredDocument({self.name!r}, version={self.version}, "
                f"{self.engine.node_count()} nodes)")


class XmlDatabase:
    """A collection of named stored documents."""

    def __init__(self) -> None:
        self._documents: dict[str, StoredDocument] = {}

    # -- document lifecycle --------------------------------------------------

    def store(self, name: str, source: "str | XmlDocument",
              schema: DocumentSchema | None = None) -> StoredDocument:
        """Insert a new document (text or parsed), optionally typed by
        *schema* (in which case the mapping f validates it)."""
        if name in self._documents:
            raise DatabaseError(f"document {name!r} already stored")
        document = (parse_document(source) if isinstance(source, str)
                    else source)
        if schema is not None:
            tree = document_to_tree(document, schema)
        else:
            tree = untyped_document_to_tree(document)
        stored = StoredDocument(name, tree, schema)
        self._documents[name] = stored
        return stored

    def get(self, name: str) -> StoredDocument:
        try:
            return self._documents[name]
        except KeyError:
            raise DatabaseError(f"no document named {name!r}") from None

    def drop(self, name: str) -> None:
        """Delete an obsolete document."""
        if name not in self._documents:
            raise DatabaseError(f"no document named {name!r}")
        del self._documents[name]

    def names(self) -> list[str]:
        return sorted(self._documents)

    def __contains__(self, name: str) -> bool:
        return name in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def documents(self) -> Iterator[StoredDocument]:
        yield from self._documents.values()

    # -- cross-document queries ---------------------------------------------

    def query_all(self, path: str) -> dict[str, list[str]]:
        """Evaluate one path over every stored document."""
        return {name: self._documents[name].query_values(path)
                for name in self.names()}

    def __repr__(self) -> str:
        return f"XmlDatabase({len(self)} documents)"
