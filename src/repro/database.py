"""An XML database of named documents evolving through states.

Section 6.1 motivates the state algebra with "frequent insertion of
new documents, updating existing documents and deleting obsolete
documents: a database evolves through different database states".
This module provides that database layer on top of everything below
it: each stored document keeps *both* representations — the formal
node tree (Sections 5-6) and the Sedna-style storage (Section 9) —
applies updates to the two in lockstep, and can re-verify at any time
that they agree node-for-node and that the tree still conforms to its
schema.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ReproError, StorageError
from repro.xmlio.nodes import XmlDocument
from repro.xmlio.parser import parse_document
from repro.xmlio.qname import QName
from repro.xmlio.serializer import serialize_document
from repro.xdm.node import DocumentNode, ElementNode, Node, TextNode
from repro.algebra.conformance import ConformanceChecker, Violation
from repro.algebra.state import StateAlgebra
from repro.mapping.doc_to_tree import (
    document_to_tree,
    untyped_document_to_tree,
)
from repro.mapping.tree_to_doc import tree_to_document
from repro.query.engine import StorageQueryEngine, evaluate_tree
from repro.schema.ast import (
    ComplexContentType,
    DocumentSchema,
    ElementDeclaration as SchemaElementDeclaration,
    SimpleContentType,
    TypeName,
)
from repro.xdm.node import ANY_TYPE_NAME
from repro.xsdtypes.base import SimpleType
from repro.storage.engine import NodeDescriptor, StorageEngine


class DatabaseError(ReproError):
    """Misuse of the database layer (unknown document, bad target...)."""


class StoredDocument:
    """One document held in both representations, updated in lockstep."""

    def __init__(self, name: str, tree: DocumentNode,
                 schema: DocumentSchema | None) -> None:
        self.name = name
        self.schema = schema
        self.tree = tree
        self.algebra: StateAlgebra = tree.algebra
        self.engine = StorageEngine()
        self.engine.load_tree(tree)
        self._queries = StorageQueryEngine(self.engine)
        #: Number of state transitions this document has gone through.
        self.version = 0

    # -- reading ----------------------------------------------------------

    def query(self, path: str) -> list[Node]:
        """Evaluate a path over the formal tree."""
        return evaluate_tree(self.tree, path)

    def query_values(self, path: str) -> list[str]:
        """String values of the query result."""
        return [node.string_value() for node in self.query(path)]

    def query_storage(self, path: str) -> list[NodeDescriptor]:
        """The same query, answered by the storage engine through the
        plan cache (safe across updates: plans invalidate when the
        descriptive schema grows, and a data-only update just adds
        descriptors to block lists the cached plan already scans)."""
        return self._queries.evaluate(path)

    def serialize(self, indent: str | None = None) -> str:
        """The mapping g composed with the text serializer."""
        return serialize_document(tree_to_document(self.tree),
                                  indent=indent)

    # -- locating update targets ----------------------------------------

    def _single_element(self, path: str) -> ElementNode:
        matches = [node for node in self.query(path)
                   if isinstance(node, ElementNode)]
        if not matches:
            raise DatabaseError(f"{path!r} selects no element")
        if len(matches) > 1:
            raise DatabaseError(
                f"{path!r} selects {len(matches)} elements; updates "
                "need exactly one target")
        return matches[0]

    def _descriptor_for(self, node: Node) -> NodeDescriptor:
        """The storage descriptor of a tree node, located by its
        positional root path (the two sides stay index-aligned)."""
        steps: list[int] = []
        current = node
        parent = current.parent_or_none()
        while parent is not None:
            children = [c for c in parent.children()]
            steps.append(next(i for i, c in enumerate(children)
                              if c is current))
            current = parent
            parent = current.parent_or_none()
        steps.reverse()
        descriptor = self.engine.document
        if descriptor is None:  # pragma: no cover - engine always loaded
            raise DatabaseError("storage engine holds no document")
        for index in steps:
            children = self.engine.children(descriptor)
            try:
                descriptor = children[index]
            except IndexError:
                raise DatabaseError(
                    "tree and storage have diverged") from None
        return descriptor

    # -- updates ------------------------------------------------------------

    def insert_element(self, parent_path: str, index: int,
                       name: str) -> ElementNode:
        """Insert an empty element under the (single) element selected
        by *parent_path*, in both representations."""
        parent = self._single_element(parent_path)
        parent_descriptor = self._descriptor_for(parent)
        qname = QName(parent.name.uri, name)
        element = self.algebra.create_element(qname)
        self._annotate_new_element(parent, element)
        self.algebra.insert_child(parent, index, element)
        self.engine.insert_child(parent_descriptor, index, name=qname)
        self.version += 1
        return element

    def _declaration_of(self, element: ElementNode
                        ) -> "SchemaElementDeclaration | None":
        """The schema declaration governing *element*, found by
        walking declarations from the root along the element's path."""
        if self.schema is None:
            return None
        names = [element.name.local]
        for ancestor in element.ancestors():
            if isinstance(ancestor, ElementNode):
                names.append(ancestor.name.local)
        names.reverse()
        declaration = self.schema.root_element
        if names[0] != declaration.name:
            return None
        for step in names[1:]:
            resolved = self.schema.resolve(declaration.type)
            if not isinstance(resolved, ComplexContentType) or \
                    resolved.group is None:
                return None
            declaration = next(
                (eld for eld in resolved.group.element_declarations()
                 if eld.name == step), None)
            if declaration is None:
                return None
        return declaration

    def _annotate_new_element(self, parent: ElementNode,
                              element: ElementNode) -> None:
        """Give a freshly inserted element the type annotation the
        schema assigns it (item 4 of Section 6.2), so conformance can
        be re-checked after updates."""
        if self.schema is None:
            return
        # Temporarily reason as if the element were already attached.
        names_parent = self._declaration_of(parent)
        if names_parent is None:
            return
        resolved_parent = self.schema.resolve(names_parent.type)
        if not isinstance(resolved_parent, ComplexContentType) or \
                resolved_parent.group is None:
            return
        declaration = next(
            (eld for eld in resolved_parent.group.element_declarations()
             if eld.name == element.name.local), None)
        if declaration is None:
            return
        type_name = (declaration.type.qname
                     if isinstance(declaration.type, TypeName)
                     else ANY_TYPE_NAME)
        resolved = self.schema.resolve(declaration.type)
        simple = None
        if isinstance(resolved, SimpleType):
            simple = resolved
        elif isinstance(resolved, SimpleContentType):
            base = self.schema.resolve(resolved.base)
            if isinstance(base, SimpleType):
                simple = base
        self.algebra.annotate_element(element, type_name,
                                      simple_type=simple)

    def insert_text(self, parent_path: str, index: int,
                    text: str) -> TextNode:
        """Insert a text node in both representations."""
        parent = self._single_element(parent_path)
        parent_descriptor = self._descriptor_for(parent)
        node = self.algebra.create_text(text)
        self.algebra.insert_child(parent, index, node)
        self.engine.insert_child(parent_descriptor, index, text=text)
        self.version += 1
        return node

    def delete(self, path: str) -> int:
        """Delete the (single) element selected by *path* and its
        subtree from both representations; returns nodes removed."""
        target = self._single_element(path)
        parent = target.parent_or_none()
        if parent is None or isinstance(target.parent_or_none(),
                                        DocumentNode):
            raise DatabaseError("cannot delete the document root")
        descriptor = self._descriptor_for(target)
        removed = self.engine.delete_subtree(descriptor)
        self.algebra.remove_child(parent, target)
        self.version += 1
        return removed

    def set_attribute(self, path: str, name: str, value: str) -> None:
        """Attach an attribute in both representations."""
        target = self._single_element(path)
        descriptor = self._descriptor_for(target)
        attribute = self.algebra.create_attribute(QName("", name), value)
        self.algebra.attach_attribute(target, attribute)
        self.engine.set_attribute(descriptor, QName("", name), value)
        self.version += 1

    # -- verification ---------------------------------------------------------

    def check_conformance(self) -> list[Violation]:
        """Section 6.2 violations of the current state (empty if the
        document has no schema)."""
        if self.schema is None:
            return []
        return ConformanceChecker(self.schema).check(self.tree)

    def verify_consistency(self) -> None:
        """Assert the two representations agree node-for-node."""
        self.engine.check_invariants()
        root_descriptor = self.engine.children(self.engine.document)[0]
        self._verify_node(self.tree.document_element(), root_descriptor)

    def _verify_node(self, node: Node,
                     descriptor: NodeDescriptor) -> None:
        if node.node_kind() != self.engine.node_kind(descriptor):
            raise StorageError(
                f"kind mismatch at {node!r}: {node.node_kind()} vs "
                f"{self.engine.node_kind(descriptor)}")
        if isinstance(node, ElementNode):
            if self.engine.node_name(descriptor) != node.name:
                raise StorageError(f"name mismatch at {node!r}")
            tree_attrs = {(a.node_name().head().local, a.string_value())
                          for a in node.attributes()}
            stored_attrs = {
                (self.engine.node_name(d).local, d.value or "")
                for d in self.engine.attributes(descriptor)}
            if tree_attrs != stored_attrs:
                raise StorageError(f"attribute mismatch at {node!r}")
            node_children = list(node.children())
            stored_children = self.engine.children(descriptor)
            if len(node_children) != len(stored_children):
                raise StorageError(f"child count mismatch at {node!r}")
            for child, child_descriptor in zip(node_children,
                                               stored_children):
                self._verify_node(child, child_descriptor)
        elif isinstance(node, TextNode):
            if node.string_value() != (descriptor.value or ""):
                raise StorageError(f"text mismatch at {node!r}")

    def __repr__(self) -> str:
        return (f"StoredDocument({self.name!r}, version={self.version}, "
                f"{self.engine.node_count()} nodes)")


class XmlDatabase:
    """A collection of named stored documents."""

    def __init__(self) -> None:
        self._documents: dict[str, StoredDocument] = {}

    # -- document lifecycle --------------------------------------------------

    def store(self, name: str, source: "str | XmlDocument",
              schema: DocumentSchema | None = None) -> StoredDocument:
        """Insert a new document (text or parsed), optionally typed by
        *schema* (in which case the mapping f validates it)."""
        if name in self._documents:
            raise DatabaseError(f"document {name!r} already stored")
        document = (parse_document(source) if isinstance(source, str)
                    else source)
        if schema is not None:
            tree = document_to_tree(document, schema)
        else:
            tree = untyped_document_to_tree(document)
        stored = StoredDocument(name, tree, schema)
        self._documents[name] = stored
        return stored

    def get(self, name: str) -> StoredDocument:
        try:
            return self._documents[name]
        except KeyError:
            raise DatabaseError(f"no document named {name!r}") from None

    def drop(self, name: str) -> None:
        """Delete an obsolete document."""
        if name not in self._documents:
            raise DatabaseError(f"no document named {name!r}")
        del self._documents[name]

    def names(self) -> list[str]:
        return sorted(self._documents)

    def __contains__(self, name: str) -> bool:
        return name in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def documents(self) -> Iterator[StoredDocument]:
        yield from self._documents.values()

    # -- cross-document queries ---------------------------------------------

    def query_all(self, path: str) -> dict[str, list[str]]:
        """Evaluate one path over every stored document."""
        return {name: self._documents[name].query_values(path)
                for name in self.names()}

    def __repr__(self) -> str:
        return f"XmlDatabase({len(self)} documents)"
