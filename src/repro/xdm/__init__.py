"""The XQuery 1.0 / XPath 2.0 data-model node classes (Section 5).

:mod:`repro.xdm.functions` provides the fn:* query primitives built
strictly on the ten accessors.
"""

from repro.xdm import functions

from repro.xdm.node import (
    ANY_TYPE_NAME,
    UNTYPED_ATOMIC_NAME,
    AttributeNode,
    DocumentNode,
    ElementNode,
    Node,
    TextNode,
)

__all__ = [
    "ANY_TYPE_NAME",
    "functions",
    "AttributeNode",
    "DocumentNode",
    "ElementNode",
    "Node",
    "TextNode",
    "UNTYPED_ATOMIC_NAME",
]
