"""The XQuery 1.0 / XPath 2.0 data-model node classes (Section 5).

:mod:`repro.xdm.functions` provides the fn:* query primitives built
strictly on the ten accessors.
"""

from repro.xdm import functions

from repro.xdm.node import (
    ANY_TYPE_NAME,
    UNTYPED_ATOMIC_NAME,
    AttributeNode,
    DocumentNode,
    ElementNode,
    Node,
    TextNode,
)
from repro.xdm.store import (
    TREE_STORE,
    NodeStore,
    TreeNodeStore,
    as_node_store,
    bisimulate,
    stores_agree,
)

__all__ = [
    "ANY_TYPE_NAME",
    "functions",
    "AttributeNode",
    "DocumentNode",
    "ElementNode",
    "Node",
    "NodeStore",
    "TextNode",
    "TREE_STORE",
    "TreeNodeStore",
    "UNTYPED_ATOMIC_NAME",
    "as_node_store",
    "bisimulate",
    "stores_agree",
]
