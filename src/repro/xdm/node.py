"""The node classes of Section 5 with their ten accessors.

The paper's class hierarchy: ``Node`` is the base class with accessors
``base-uri``, ``node-kind``, ``node-name``, ``parent``, ``string-value``,
``typed-value``, ``type``, ``children``, ``attributes`` and ``nilled``;
``Document``, ``Element``, ``Attribute`` and ``Text`` are subclasses.

Nodes are *identified* objects: equality is identity, matching the
paper's treatment of node identifiers in the state algebra.  Every node
belongs to exactly one :class:`~repro.algebra.state.StateAlgebra`,
which allocates its identifier and enforces the sort structure; nodes
are therefore constructed through the algebra's factory methods, not
directly.

Accessor values follow Section 6.1 exactly; in particular the accessors
that a node kind fixes to the empty sequence (e.g. ``attributes`` of a
text node) really return the empty sequence rather than raising.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.errors import ModelError
from repro.xmlio.qname import QName, xdt, xsd
from repro.xsdtypes.base import AtomicValue, SimpleType, UNTYPED_ATOMIC
from repro.xsdtypes.sequence import Sequence

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.algebra.state import StateAlgebra

#: The ``type`` accessor value of untyped elements (§6.2 item 4).
ANY_TYPE_NAME = xsd("anyType")

#: The ``type`` accessor value of text nodes (§6.2 item 5.1.1).
UNTYPED_ATOMIC_NAME = xdt("untypedAtomic")


class Node:
    """Base class: a uniquely identified node of the data model."""

    __slots__ = ("_algebra", "_identifier", "_parent", "_base_uri")

    kind = "node"

    def __init__(self, algebra: "StateAlgebra", identifier: int) -> None:
        self._algebra = algebra
        self._identifier = identifier
        self._parent: Optional[Node] = None
        self._base_uri: Optional[str] = None

    # -- identity ----------------------------------------------------------

    @property
    def identifier(self) -> int:
        """The node identifier allocated by the state algebra."""
        return self._identifier

    @property
    def algebra(self) -> "StateAlgebra":
        return self._algebra

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return hash((id(self._algebra), self._identifier))

    # -- the ten accessors -----------------------------------------------

    def base_uri(self) -> Sequence[str]:
        """``base-uri``: empty or one-element sequence of anyURI."""
        if self._base_uri is None:
            return Sequence.empty()
        return Sequence.of(self._base_uri)

    def node_kind(self) -> str:
        """``node-kind``: one of document/element/attribute/text."""
        return self.kind

    def node_name(self) -> Sequence[QName]:
        """``node-name``: empty or one-element sequence of QName."""
        return Sequence.empty()

    def parent(self) -> Sequence["Node"]:
        """``parent``: empty or one-element sequence."""
        if self._parent is None:
            return Sequence.empty()
        return Sequence.of(self._parent)

    def string_value(self) -> str:
        """``string-value``: always a string."""
        raise NotImplementedError

    def typed_value(self) -> Sequence[AtomicValue]:
        """``typed-value``: a sequence of zero or more atomic values."""
        raise NotImplementedError

    def type(self) -> Sequence[QName]:
        """``type``: empty or one-element sequence of type names."""
        return Sequence.empty()

    def children(self) -> Sequence["Node"]:
        """``children``: zero or more nodes."""
        return Sequence.empty()

    def attributes(self) -> Sequence["Node"]:
        """``attributes``: zero or more nodes."""
        return Sequence.empty()

    def nilled(self) -> Sequence[bool]:
        """``nilled``: empty or one-element sequence of booleans."""
        return Sequence.empty()

    # -- conveniences beyond the paper's accessor set ----------------------

    def parent_or_none(self) -> Optional["Node"]:
        return self._parent

    def root(self) -> "Node":
        """The topmost ancestor (the document node of a complete tree)."""
        node: Node = self
        while node._parent is not None:
            node = node._parent
        return node

    def ancestors(self) -> Iterator["Node"]:
        """Strict ancestors, nearest first."""
        node = self._parent
        while node is not None:
            yield node
            node = node._parent

    def __repr__(self) -> str:
        return f"{type(self).__name__}#{self._identifier}"


class DocumentNode(Node):
    """The document information item: one element child, no name/type.

    Per Section 6.1, ``node-name``, ``parent``, ``type``, ``attributes``
    and ``nilled`` are empty; per Section 6.2 item 1, the string value
    is the string value of the single child.
    """

    __slots__ = ("_children",)

    kind = "document"

    def __init__(self, algebra: "StateAlgebra", identifier: int) -> None:
        super().__init__(algebra, identifier)
        self._children: list[Node] = []

    def children(self) -> Sequence[Node]:
        return Sequence(self._children)

    def string_value(self) -> str:
        return "".join(child.string_value() for child in self._children)

    def typed_value(self) -> Sequence[AtomicValue]:
        return Sequence.of(AtomicValue(self.string_value(), UNTYPED_ATOMIC))

    def document_element(self) -> "ElementNode":
        """The single element child required by Section 3."""
        for child in self._children:
            if isinstance(child, ElementNode):
                return child
        raise ModelError("document node has no element child")

    def __repr__(self) -> str:
        return f"DocumentNode#{self._identifier}"


class ElementNode(Node):
    """An element information item."""

    __slots__ = ("_name", "_children", "_attributes", "_type_name",
                 "_simple_type", "_nilled")

    kind = "element"

    def __init__(self, algebra: "StateAlgebra", identifier: int,
                 name: QName) -> None:
        super().__init__(algebra, identifier)
        self._name = name
        self._children: list[Node] = []
        self._attributes: list[AttributeNode] = []
        self._type_name: QName = ANY_TYPE_NAME
        self._simple_type: Optional[SimpleType] = None
        self._nilled = False

    def node_name(self) -> Sequence[QName]:
        return Sequence.of(self._name)

    def type(self) -> Sequence[QName]:
        return Sequence.of(self._type_name)

    def children(self) -> Sequence[Node]:
        return Sequence(self._children)

    def attributes(self) -> Sequence[Node]:
        return Sequence(self._attributes)

    def nilled(self) -> Sequence[bool]:
        return Sequence.of(self._nilled)

    def string_value(self) -> str:
        """Concatenated string values of descendant text nodes (XDM
        Section 6.2.2)."""
        parts: list[str] = []
        stack: list[Node] = list(reversed(self._children))
        while stack:
            node = stack.pop()
            if isinstance(node, TextNode):
                parts.append(node.string_value())
            elif isinstance(node, ElementNode):
                stack.extend(reversed(node._children))
        return "".join(parts)

    def typed_value(self) -> Sequence[AtomicValue]:
        """Typed value per the XDM rules.

        * nilled elements have the empty typed value;
        * simple-typed elements (incl. simple content) parse their
          string value against the simple type;
        * untyped (``xs:anyType``) or mixed elements yield one
          untypedAtomic item;
        * an element annotated with a complex type whose content holds
          element children but no simple type has no typed value (an
          error in XDM).
        """
        if self._nilled:
            return Sequence.empty()
        if self._simple_type is not None:
            return Sequence(self._simple_type.typed_value(
                self.string_value()))
        if (self._type_name != ANY_TYPE_NAME
                and any(isinstance(child, ElementNode)
                        for child in self._children)):
            raise ModelError(
                f"element {self._name.lexical} has element-only content; "
                "its typed value is undefined")
        return Sequence.of(AtomicValue(self.string_value(), UNTYPED_ATOMIC))

    # -- element-specific helpers -----------------------------------------

    @property
    def name(self) -> QName:
        return self._name

    def element_children(self) -> list["ElementNode"]:
        return [c for c in self._children if isinstance(c, ElementNode)]

    def attribute_by_name(self, name: QName) -> "AttributeNode | None":
        for attribute in self._attributes:
            if attribute.name == name:
                return attribute
        return None

    def __repr__(self) -> str:
        return f"ElementNode#{self._identifier}({self._name.lexical})"


class AttributeNode(Node):
    """An attribute information item.

    Per Section 6.1, ``children``, ``attributes`` and ``nilled`` are
    empty sequences.
    """

    __slots__ = ("_name", "_value", "_type_name", "_simple_type")

    kind = "attribute"

    def __init__(self, algebra: "StateAlgebra", identifier: int,
                 name: QName, value: str) -> None:
        super().__init__(algebra, identifier)
        self._name = name
        self._value = value
        self._type_name: QName = UNTYPED_ATOMIC_NAME
        self._simple_type: Optional[SimpleType] = None

    def node_name(self) -> Sequence[QName]:
        return Sequence.of(self._name)

    def type(self) -> Sequence[QName]:
        return Sequence.of(self._type_name)

    def string_value(self) -> str:
        return self._value

    def typed_value(self) -> Sequence[AtomicValue]:
        if self._simple_type is not None:
            return Sequence(self._simple_type.typed_value(self._value))
        return Sequence.of(AtomicValue(self._value, UNTYPED_ATOMIC))

    @property
    def name(self) -> QName:
        return self._name

    def __repr__(self) -> str:
        return f"AttributeNode#{self._identifier}({self._name.lexical})"


class TextNode(Node):
    """A text node.

    Per Section 6.1, ``node-name``, ``children``, ``attributes`` and
    ``nilled`` are empty; per Section 6.2, its type is
    ``xdt:untypedAtomic``.
    """

    __slots__ = ("_value",)

    kind = "text"

    def __init__(self, algebra: "StateAlgebra", identifier: int,
                 value: str) -> None:
        super().__init__(algebra, identifier)
        self._value = value

    def type(self) -> Sequence[QName]:
        return Sequence.of(UNTYPED_ATOMIC_NAME)

    def string_value(self) -> str:
        return self._value

    def typed_value(self) -> Sequence[AtomicValue]:
        return Sequence.of(AtomicValue(self._value, UNTYPED_ATOMIC))

    def __repr__(self) -> str:
        preview = (self._value if len(self._value) <= 20
                   else self._value[:17] + "...")
        return f"TextNode#{self._identifier}({preview!r})"
