"""Query-language primitives built on the ten accessors.

The paper's conclusion: the accessor values "provide primitive
facilities for a query language".  This module demonstrates that by
implementing the core XQuery/XPath function library *strictly* in
terms of the Section 5 accessors — no function below reaches into node
internals.

Naming follows the ``fn:`` namespace of XQuery 1.0 (``fn:data`` is
``data`` here, and so on).
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.xmlio.qname import QName
from repro.xsdtypes.base import AtomicValue
from repro.xsdtypes.sequence import Sequence
from repro.xdm.node import Node


def node_name(node: Node) -> "QName | None":
    """``fn:node-name`` — the node's QName, if it has one."""
    names = node.node_name()
    return names.head() if names else None


def string(item: "Node | AtomicValue | str") -> str:
    """``fn:string`` — the string value of a node or atomic item."""
    if isinstance(item, Node):
        return item.string_value()
    if isinstance(item, AtomicValue):
        return item.type.canonical(item.value)
    return str(item)


def data(items: "Node | Sequence | list") -> Sequence:
    """``fn:data`` — atomization: each node becomes its typed value."""
    if isinstance(items, Node):
        items = [items]
    out: list[AtomicValue] = []
    for item in items:
        if isinstance(item, Node):
            out.extend(item.typed_value())
        elif isinstance(item, AtomicValue):
            out.append(item)
        else:
            raise ModelError(f"cannot atomize {item!r}")
    return Sequence(out)


def count(items: "Sequence | list") -> int:
    """``fn:count`` — the length of a sequence."""
    return len(items)


def empty(items: "Sequence | list") -> bool:
    """``fn:empty``."""
    return len(items) == 0


def exists(items: "Sequence | list") -> bool:
    """``fn:exists``."""
    return len(items) > 0


def root(node: Node) -> Node:
    """``fn:root`` — the topmost ancestor."""
    return node.root()


def nilled(node: Node) -> "bool | None":
    """``fn:nilled`` — True/False for elements, None otherwise."""
    values = node.nilled()
    return values.head() if values else None


def base_uri(node: Node) -> "str | None":
    """``fn:base-uri``."""
    values = node.base_uri()
    return values.head() if values else None


def deep_equal(first: Node, second: Node) -> bool:
    """``fn:deep-equal`` on nodes: same kind, name, and — recursively —
    the same attributes and children (by string value for leaves).

    Node *identity* is irrelevant, matching XQuery: two distinct nodes
    can be deep-equal.
    """
    if first.node_kind() != second.node_kind():
        return False
    if node_name(first) != node_name(second):
        return False
    if first.node_kind() in ("text", "attribute"):
        return first.string_value() == second.string_value()
    first_attrs = {(node_name(a), a.string_value())
                   for a in first.attributes()}
    second_attrs = {(node_name(a), a.string_value())
                    for a in second.attributes()}
    if first_attrs != second_attrs:
        return False
    first_children = list(first.children())
    second_children = list(second.children())
    if len(first_children) != len(second_children):
        return False
    return all(deep_equal(a, b)
               for a, b in zip(first_children, second_children))


def distinct_values(items: "Sequence | list") -> Sequence:
    """``fn:distinct-values`` over atomized items (first wins)."""
    seen: list[object] = []
    out: list[AtomicValue] = []
    for atomic in data(list(items)):
        if not any(atomic.value == other for other in seen):
            seen.append(atomic.value)
            out.append(atomic)
    return Sequence(out)


def string_join(items: "Sequence | list", separator: str = "") -> str:
    """``fn:string-join`` over the string values of the items."""
    return separator.join(string(item) for item in items)
