"""The ``NodeStore`` accessor protocol — one signature, many models.

Section 5 defines the ten XDM accessors once; Section 6 (the state
algebra) and Section 9 (the Sedna physical representation) are then
two *models* of that one signature.  This module states the signature
as an abstract class over opaque node references, so every consumer of
the data model — conformance checking (§6.2), document order (§7), the
mapping ``g`` (§8), path and XQuery evaluation — can be written once
and run over either representation:

* :class:`TreeNodeStore` interprets references as
  :class:`~repro.xdm.node.Node` objects of a state algebra tree;
* :class:`~repro.storage.store.StorageNodeStore` interprets them as
  :class:`~repro.storage.descriptor.NodeDescriptor` objects of a
  :class:`~repro.storage.engine.StorageEngine`.

Beyond the ten accessors the protocol carries the small navigation
kernel the query layer needs — subtree iteration in document order,
document-order comparison, and a stable per-node key — so axes and
deduplication need no representation-specific code either.

:func:`bisimulate` is the protocol-level consistency check: two stores
agree iff a structural bisimulation relates their roots.  The database
layer uses it to re-verify that the lockstep tree/storage copies of a
document never diverge.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, Optional

from repro.errors import ModelError, StorageError
from repro.xmlio.qname import QName
from repro.xsdtypes.base import AtomicValue
from repro.xsdtypes.sequence import Sequence
from repro.xdm.node import Node

#: Opaque node reference: ``Node`` for trees, ``NodeDescriptor`` for
#: storage.  Consumers must only hand refs back to the store they came
#: from.
Ref = Any


class NodeStore:
    """Abstract signature: the ten §5 accessors + navigation kernel.

    Subclasses interpret the opaque node references; consumers written
    against this class run unchanged over every interpretation.
    """

    # -- the ten accessors (§5) ----------------------------------------

    def node_kind(self, ref: Ref) -> str:
        """``node-kind``: document / element / attribute / text."""
        raise NotImplementedError

    def node_name(self, ref: Ref) -> Optional[QName]:
        """``node-name``: the QName, or None where the accessor is
        the empty sequence (document and text nodes)."""
        raise NotImplementedError

    def parent(self, ref: Ref) -> Optional[Ref]:
        """``parent``: the parent reference, or None at the root."""
        raise NotImplementedError

    def string_value(self, ref: Ref) -> str:
        """``string-value``: always a string."""
        raise NotImplementedError

    def typed_value(self, ref: Ref) -> Sequence[AtomicValue]:
        """``typed-value``: a sequence of atomic values."""
        raise NotImplementedError

    def type_name(self, ref: Ref) -> Optional[QName]:
        """``type``: the type annotation QName, or None where the
        accessor is the empty sequence (document nodes)."""
        raise NotImplementedError

    def children(self, ref: Ref) -> list[Ref]:
        """``children``: the child references in document order."""
        raise NotImplementedError

    def attributes(self, ref: Ref) -> list[Ref]:
        """``attributes``: the attribute references."""
        raise NotImplementedError

    def base_uri(self, ref: Ref) -> Optional[str]:
        """``base-uri``: the URI string, or None when empty."""
        raise NotImplementedError

    def nilled(self, ref: Ref) -> Optional[bool]:
        """``nilled``: a boolean for elements, None (the empty
        sequence) for every other kind."""
        raise NotImplementedError

    # -- navigation kernel ---------------------------------------------

    def root(self) -> Ref:
        """The document reference this store is anchored at."""
        raise NotImplementedError

    def iter_document_order(self, ref: Optional[Ref] = None
                            ) -> Iterator[Ref]:
        """The (sub)tree at *ref* (default: the root) in §7 document
        order: node, then attributes, then child subtrees.

        Iterative (explicit stack) so each node costs one loop step —
        a recursive generator pays one frame resumption per ancestor
        per yielded node, which the query kernel cannot afford.
        """
        if ref is None:
            ref = self.root()
        stack = [ref]
        pop = stack.pop
        while stack:
            node = pop()
            yield node
            yield from self.attributes(node)
            children = self.children(node)
            if children:
                stack.extend(reversed(children))

    def descendants_of(self, ref: Ref) -> "Iterator[Ref] | list[Ref]":
        """``descendant-or-self`` incl. attributes — the ``//`` axis
        building block.  Interpretations may return a materialized list
        (the storage store batches whole blocks); consumers must treat
        the result as iterate-once."""
        return self.iter_document_order(ref)

    def before(self, first: Ref, second: Ref) -> bool:
        """``first << second`` in document order (§7)."""
        raise NotImplementedError

    def node_key(self, ref: Ref) -> Hashable:
        """A stable per-node identity key (for dedup sets and order
        indexes); unique within one store."""
        raise NotImplementedError

    def owns_ref(self, obj: object) -> bool:
        """True iff *obj* is a node reference of this store's kind."""
        raise NotImplementedError

    # -- derived conveniences ------------------------------------------

    def document_element(self, ref: Optional[Ref] = None) -> Ref:
        """The single element child of the document node (§3)."""
        if ref is None:
            ref = self.root()
        for child in self.children(ref):
            if self.node_kind(child) == "element":
                return child
        raise ModelError("document node has no element child")

    def local_name(self, ref: Ref) -> Optional[str]:
        name = self.node_name(ref)
        return name.local if name is not None else None


class TreeNodeStore(NodeStore):
    """The state-algebra interpretation: refs are §5 ``Node`` objects.

    The accessors delegate to the node methods, so a ``TreeNodeStore``
    carries no per-node state — the optional *root* only anchors
    :meth:`root` for consumers that start from the store itself.
    """

    def __init__(self, root: "Node | None" = None) -> None:
        self._root = root

    # -- the ten accessors ---------------------------------------------

    def node_kind(self, ref: Node) -> str:
        return ref.node_kind()

    def node_name(self, ref: Node) -> Optional[QName]:
        names = ref.node_name()
        return names.head() if names else None

    def parent(self, ref: Node) -> Optional[Node]:
        return ref.parent_or_none()

    def string_value(self, ref: Node) -> str:
        return ref.string_value()

    def typed_value(self, ref: Node) -> Sequence[AtomicValue]:
        return ref.typed_value()

    def type_name(self, ref: Node) -> Optional[QName]:
        types = ref.type()
        return types.head() if types else None

    def children(self, ref: Node) -> list[Node]:
        return list(ref.children())

    def attributes(self, ref: Node) -> list[Node]:
        return list(ref.attributes())

    def base_uri(self, ref: Node) -> Optional[str]:
        uris = ref.base_uri()
        return uris.head() if uris else None

    def nilled(self, ref: Node) -> Optional[bool]:
        flags = ref.nilled()
        return flags.head() if flags else None

    # -- navigation kernel ---------------------------------------------

    def root(self) -> Node:
        if self._root is None:
            raise ModelError("this TreeNodeStore has no anchored root")
        return self._root

    def before(self, first: Node, second: Node) -> bool:
        from repro.order.document_order import before as tree_before
        return tree_before(first, second)

    def node_key(self, ref: Node) -> Node:
        # The node itself: equality is identity and the hash covers
        # (algebra, identifier), so keys never collide across algebras.
        return ref

    def owns_ref(self, obj: object) -> bool:
        return isinstance(obj, Node)


#: The shared stateless tree interpretation: safe for any tree node,
#: because every accessor delegates to the reference itself.
TREE_STORE = TreeNodeStore()


def as_node_store(source: "NodeStore | Node") -> NodeStore:
    """Coerce a tree node (the historical API) into a ``NodeStore``."""
    if isinstance(source, NodeStore):
        return source
    if isinstance(source, Node):
        return TreeNodeStore(source)
    raise ModelError(f"cannot interpret {source!r} as a node store")


# ----------------------------------------------------------------------
# Two-store bisimulation


def bisimulate(store_a: NodeStore, store_b: NodeStore,
               ref_a: Ref = None, ref_b: Ref = None) -> None:
    """Assert the two stores present the same document, accessor by
    accessor (kinds, names, attribute name/value sets, text values and
    child sequences); raises :class:`StorageError` at the first
    structural disagreement.

    The relation checked is exactly a strong bisimulation over the
    structural accessors — type annotations are *not* compared, since
    one side may be typed (§6.2) and the other untyped (§9 stores no
    PSVI).
    """
    if ref_a is None:
        ref_a = store_a.root()
    if ref_b is None:
        ref_b = store_b.root()
    _bisimulate_node(store_a, ref_a, store_b, ref_b)


def _bisimulate_node(store_a: NodeStore, ref_a: Ref,
                     store_b: NodeStore, ref_b: Ref) -> None:
    kind_a = store_a.node_kind(ref_a)
    kind_b = store_b.node_kind(ref_b)
    if kind_a != kind_b:
        raise StorageError(
            f"kind mismatch: {kind_a} vs {kind_b} at {ref_a!r}")
    if kind_a == "text":
        if store_a.string_value(ref_a) != store_b.string_value(ref_b):
            raise StorageError(f"text mismatch at {ref_a!r}")
        return
    if kind_a in ("element", "attribute"):
        name_a = store_a.node_name(ref_a)
        name_b = store_b.node_name(ref_b)
        if name_a != name_b:
            raise StorageError(
                f"name mismatch: {name_a!r} vs {name_b!r}")
    if kind_a == "attribute":
        if store_a.string_value(ref_a) != store_b.string_value(ref_b):
            raise StorageError(f"attribute value mismatch at {ref_a!r}")
        return
    attrs_a = {(store_a.local_name(a), store_a.string_value(a))
               for a in store_a.attributes(ref_a)}
    attrs_b = {(store_b.local_name(b), store_b.string_value(b))
               for b in store_b.attributes(ref_b)}
    if attrs_a != attrs_b:
        raise StorageError(
            f"attribute set mismatch at {ref_a!r}: "
            f"{sorted(attrs_a)} vs {sorted(attrs_b)}")
    children_a = store_a.children(ref_a)
    children_b = store_b.children(ref_b)
    if len(children_a) != len(children_b):
        raise StorageError(
            f"child count mismatch at {ref_a!r}: "
            f"{len(children_a)} vs {len(children_b)}")
    for child_a, child_b in zip(children_a, children_b):
        _bisimulate_node(store_a, child_a, store_b, child_b)


def stores_agree(store_a: NodeStore, store_b: NodeStore) -> bool:
    """True iff :func:`bisimulate` succeeds."""
    try:
        bisimulate(store_a, store_b)
    except StorageError:
        return False
    return True
