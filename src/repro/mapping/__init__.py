"""The Section 8 mappings between S-documents and S-trees.

``document_to_tree`` is the paper's ``f``, ``tree_to_document`` is
``g``, and ``content_equal`` is the relation ``=_c``; the test suite
verifies the round-trip theorem g(f(X)) =_c X on the paper's examples
and on randomly generated instances.
"""

from repro.mapping.content_equality import (
    ContentDifference,
    content_difference,
    content_equal,
)
from repro.mapping.doc_to_tree import (
    TreeConstructor,
    document_to_tree,
    untyped_document_to_tree,
)
from repro.mapping.tree_to_doc import (
    serialize_store,
    serialize_tree,
    store_to_document,
    tree_to_document,
)

__all__ = [
    "ContentDifference",
    "TreeConstructor",
    "content_difference",
    "content_equal",
    "document_to_tree",
    "serialize_store",
    "serialize_tree",
    "store_to_document",
    "tree_to_document",
    "untyped_document_to_tree",
]
