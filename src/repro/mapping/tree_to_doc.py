"""The mapping ``g`` of Section 8: serialize an S-tree to an S-document.

``g`` is purely structural: element nodes become elements, attribute
nodes become attributes, text nodes become character data.  Namespace
declarations are synthesized minimally (a default declaration at the
root when the tree's names carry a namespace URI).
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.xmlio.nodes import XmlDocument, XmlElement, XmlText
from repro.xmlio.qname import XSI_NAMESPACE, QName
from repro.xmlio.serializer import serialize_document
from repro.xdm.node import (
    AttributeNode,
    DocumentNode,
    ElementNode,
    Node,
    TextNode,
)

_XSI_NIL = QName(XSI_NAMESPACE, "nil", "xsi")


def tree_to_document(node: "DocumentNode | ElementNode",
                     emit_nil: bool = True) -> XmlDocument:
    """The paper's ``g``: serialize a document tree to a raw document.

    ``emit_nil`` controls whether nilled elements get an explicit
    ``xsi:nil="true"`` attribute (needed for the round-trip theorem,
    since nilled-ness is otherwise invisible in the serialization).
    """
    if isinstance(node, DocumentNode):
        root_element = node.document_element()
        base_uri_seq = node.base_uri()
        base_uri = base_uri_seq.head() if base_uri_seq else None
    elif isinstance(node, ElementNode):
        root_element = node
        base_uri = None
    else:
        raise ModelError("g expects a document or element node")
    xml_root = _convert_element(root_element, emit_nil=emit_nil,
                                default_uri="")
    _declare_namespaces(root_element, xml_root, emit_nil=emit_nil)
    return XmlDocument(xml_root, base_uri=base_uri)


def serialize_tree(node: "DocumentNode | ElementNode",
                   indent: str | None = None,
                   emit_nil: bool = True) -> str:
    """``g`` composed with the textual serializer."""
    return serialize_document(tree_to_document(node, emit_nil=emit_nil),
                              indent=indent)


def _convert_element(element: ElementNode, emit_nil: bool,
                     default_uri: str) -> XmlElement:
    xml_element = XmlElement(element.name)
    # An unprefixed name in a namespace needs the default declaration
    # wherever the in-scope default changes (XQuery-constructed trees
    # mix namespaces freely).
    if not element.name.prefix and element.name.uri != default_uri:
        xml_element.namespace_decls[""] = element.name.uri
        default_uri = element.name.uri
    for attribute in element.attributes():
        if not isinstance(attribute, AttributeNode):  # pragma: no cover
            raise ModelError(f"non-attribute {attribute!r} in attributes()")
        xml_element.attributes[attribute.name] = attribute.string_value()
    nilled = element.nilled()
    if emit_nil and nilled and nilled.head():
        xml_element.attributes[_XSI_NIL] = "true"
    for child in element.children():
        xml_element.append(_convert_child(child, emit_nil, default_uri))
    return xml_element


def _convert_child(child: Node, emit_nil: bool, default_uri: str):
    if isinstance(child, TextNode):
        return XmlText(child.string_value())
    if isinstance(child, ElementNode):
        return _convert_element(child, emit_nil, default_uri)
    raise ModelError(f"unexpected child node kind {child.node_kind()!r}")


def _declare_namespaces(root: ElementNode, xml_root: XmlElement,
                        emit_nil: bool) -> None:
    """Synthesize the namespace declarations the serialization needs."""
    uris: dict[str, str] = {}

    def visit(element: ElementNode) -> None:
        name = element.name
        if name.uri:
            uris.setdefault(name.uri, name.prefix)
        for attribute in element.attributes():
            attr_name = attribute.node_name().head()
            if attr_name.uri:
                uris.setdefault(attr_name.uri, attr_name.prefix or "ns")
        nilled = element.nilled()
        if emit_nil and nilled and nilled.head():
            uris.setdefault(XSI_NAMESPACE, "xsi")
        for child in element.children():
            if isinstance(child, ElementNode):
                visit(child)

    visit(root)
    used_prefixes: set[str] = set()
    counter = 0
    for uri, prefix in uris.items():
        if not prefix:
            continue  # unprefixed names declare their default locally
        if not prefix or prefix in used_prefixes:
            counter += 1
            prefix = f"ns{counter}"
        used_prefixes.add(prefix)
        xml_root.namespace_decls[prefix] = uri
