"""The mapping ``g`` of Section 8: serialize an S-tree to an S-document.

``g`` is purely structural: element nodes become elements, attribute
nodes become attributes, text nodes become character data.  Namespace
declarations are synthesized minimally (a default declaration at the
root when the tree's names carry a namespace URI).

``g`` reads the document exclusively through the ten §5 accessors, so
it is stated over the :class:`~repro.xdm.store.NodeStore` protocol
(:func:`store_to_document`) and runs unchanged over the state-algebra
tree and the Sedna storage; :func:`tree_to_document` is the tree
specialization kept for the historical API.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.xmlio.nodes import XmlDocument, XmlElement, XmlText
from repro.xmlio.qname import XSI_NAMESPACE, QName
from repro.xmlio.serializer import serialize_document
from repro.xdm.node import DocumentNode, ElementNode
from repro.xdm.store import NodeStore, Ref, as_node_store

_XSI_NIL = QName(XSI_NAMESPACE, "nil", "xsi")


def store_to_document(store: NodeStore, ref: Ref = None,
                      emit_nil: bool = True) -> XmlDocument:
    """The paper's ``g`` over any accessor-protocol model: serialize
    the document (or element subtree) at *ref* to a raw document.

    ``emit_nil`` controls whether nilled elements get an explicit
    ``xsi:nil="true"`` attribute (needed for the round-trip theorem,
    since nilled-ness is otherwise invisible in the serialization).
    """
    if ref is None:
        ref = store.root()
    kind = store.node_kind(ref)
    if kind == "document":
        root_ref = store.document_element(ref)
        base_uri = store.base_uri(ref)
    elif kind == "element":
        root_ref = ref
        base_uri = None
    else:
        raise ModelError("g expects a document or element node")
    xml_root = _convert_element(store, root_ref, emit_nil=emit_nil,
                                default_uri="")
    _declare_namespaces(store, root_ref, xml_root, emit_nil=emit_nil)
    return XmlDocument(xml_root, base_uri=base_uri)


def tree_to_document(node: "DocumentNode | ElementNode",
                     emit_nil: bool = True) -> XmlDocument:
    """``g`` on the formal tree (the historical Node-typed API)."""
    return store_to_document(as_node_store(node), node,
                             emit_nil=emit_nil)


def serialize_tree(node: "DocumentNode | ElementNode",
                   indent: str | None = None,
                   emit_nil: bool = True) -> str:
    """``g`` composed with the textual serializer."""
    return serialize_document(tree_to_document(node, emit_nil=emit_nil),
                              indent=indent)


def serialize_store(store: NodeStore, ref: Ref = None,
                    indent: str | None = None,
                    emit_nil: bool = True) -> str:
    """``g`` over any store, composed with the textual serializer."""
    return serialize_document(
        store_to_document(store, ref, emit_nil=emit_nil), indent=indent)


def _element_name(store: NodeStore, ref: Ref) -> QName:
    name = store.node_name(ref)
    if name is None:  # pragma: no cover - elements always carry names
        raise ModelError(f"element reference {ref!r} has no name")
    return name


def _convert_element(store: NodeStore, ref: Ref, emit_nil: bool,
                     default_uri: str) -> XmlElement:
    name = _element_name(store, ref)
    xml_element = XmlElement(name)
    # An unprefixed name in a namespace needs the default declaration
    # wherever the in-scope default changes (XQuery-constructed trees
    # mix namespaces freely).
    if not name.prefix and name.uri != default_uri:
        xml_element.namespace_decls[""] = name.uri
        default_uri = name.uri
    for attribute in store.attributes(ref):
        xml_element.attributes[_element_name(store, attribute)] = \
            store.string_value(attribute)
    if emit_nil and store.nilled(ref):
        xml_element.attributes[_XSI_NIL] = "true"
    for child in store.children(ref):
        xml_element.append(_convert_child(store, child, emit_nil,
                                          default_uri))
    return xml_element


def _convert_child(store: NodeStore, child: Ref, emit_nil: bool,
                   default_uri: str):
    kind = store.node_kind(child)
    if kind == "text":
        return XmlText(store.string_value(child))
    if kind == "element":
        return _convert_element(store, child, emit_nil, default_uri)
    raise ModelError(f"unexpected child node kind {kind!r}")


def _declare_namespaces(store: NodeStore, root: Ref,
                        xml_root: XmlElement, emit_nil: bool) -> None:
    """Synthesize the namespace declarations the serialization needs."""
    uris: dict[str, str] = {}

    def visit(ref: Ref) -> None:
        name = _element_name(store, ref)
        if name.uri:
            uris.setdefault(name.uri, name.prefix)
        for attribute in store.attributes(ref):
            attr_name = _element_name(store, attribute)
            if attr_name.uri:
                uris.setdefault(attr_name.uri, attr_name.prefix or "ns")
        if emit_nil and store.nilled(ref):
            uris.setdefault(XSI_NAMESPACE, "xsi")
        for child in store.children(ref):
            if store.node_kind(child) == "element":
                visit(child)

    visit(root)
    used_prefixes: set[str] = set()
    counter = 0
    for uri, prefix in uris.items():
        if not prefix:
            continue  # unprefixed names declare their default locally
        if not prefix or prefix in used_prefixes:
            counter += 1
            prefix = f"ns{counter}"
        used_prefixes.add(prefix)
        xml_root.namespace_decls[prefix] = uri
