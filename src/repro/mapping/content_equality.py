"""Content equality ``=_c`` of Section 8.

Two documents are content-equal when they have the same element
structure (expanded names), the same attribute mappings, and the same
character content, compared position by position.  Whitespace-only
text nodes occurring next to element children are insignificant by
default (matching the whitespace rule the mapping ``f`` applies in
element-only content), so ``g(f(X)) =_c X`` holds for every S-document
X — the round-trip theorem verified by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmlio.nodes import XmlChild, XmlDocument, XmlElement, XmlText
from repro.xmlio.qname import XSI_NAMESPACE, QName

_XSI_NIL = QName(XSI_NAMESPACE, "nil")


@dataclass
class ContentDifference:
    """The first difference found, for diagnostics."""

    path: str
    reason: str

    def __str__(self) -> str:
        return f"{self.path}: {self.reason}"


def content_equal(first: XmlDocument, second: XmlDocument,
                  ignore_insignificant_whitespace: bool = True) -> bool:
    """The relation ``=_c`` on documents."""
    return content_difference(
        first, second, ignore_insignificant_whitespace) is None


def content_difference(
        first: XmlDocument, second: XmlDocument,
        ignore_insignificant_whitespace: bool = True
) -> ContentDifference | None:
    """None when content-equal, else the first difference."""
    return _elements_difference(
        first.root, second.root, "/",
        ignore_insignificant_whitespace)


def _normalize_children(element: XmlElement,
                        ignore_ws: bool) -> list[XmlChild]:
    children = list(element.children)
    if not ignore_ws:
        return [c for c in children
                if not (isinstance(c, XmlText) and not c.text)]
    has_element_child = any(isinstance(c, XmlElement) for c in children)
    out: list[XmlChild] = []
    for child in children:
        if isinstance(child, XmlText):
            if not child.text:
                continue
            if has_element_child and not child.text.strip():
                continue
        out.append(child)
    return out


def _attributes_of(element: XmlElement) -> dict[QName, str]:
    # xsi:nil carries nilled-ness through serialization; its spelling
    # ("true" vs "1") is not content.
    out: dict[QName, str] = {}
    for qname, value in element.attributes.items():
        if qname == _XSI_NIL:
            out[qname] = "true" if value in ("true", "1") else "false"
        else:
            out[qname] = value
    return out


def _elements_difference(a: XmlElement, b: XmlElement, path: str,
                         ignore_ws: bool) -> ContentDifference | None:
    here = f"{path}{a.name.local}"
    if a.name != b.name:
        return ContentDifference(
            here, f"element names differ: {a.name.clark} vs {b.name.clark}")
    attrs_a, attrs_b = _attributes_of(a), _attributes_of(b)
    if attrs_a != attrs_b:
        return ContentDifference(
            here, f"attributes differ: {attrs_a} vs {attrs_b}")
    children_a = _normalize_children(a, ignore_ws)
    children_b = _normalize_children(b, ignore_ws)
    if len(children_a) != len(children_b):
        return ContentDifference(
            here,
            f"child counts differ: {len(children_a)} vs {len(children_b)}")
    for index, (ca, cb) in enumerate(zip(children_a, children_b)):
        if isinstance(ca, XmlText) != isinstance(cb, XmlText):
            return ContentDifference(
                here, f"child {index + 1} kinds differ")
        if isinstance(ca, XmlText):
            if ca.text != cb.text:
                return ContentDifference(
                    here,
                    f"text differs: {ca.text[:40]!r} vs {cb.text[:40]!r}")
        else:
            difference = _elements_difference(
                ca, cb, f"{here}/", ignore_ws)
            if difference is not None:
                return difference
    return None
