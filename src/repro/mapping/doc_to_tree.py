"""The mapping ``f`` of Section 8: an S-document becomes an S-tree.

``f`` walks the raw parsed document alongside the schema and builds a
typed node tree in a state algebra, enforcing the Section 6.2
requirements as it goes (so the result is an S-tree by construction).
Validation failures raise :class:`~repro.errors.ValidationError` with
the item number of the violated requirement and the document path.

Decisions the paper leaves to its companion report [16], made explicit
here:

* Whitespace-only text between the element children of a non-mixed
  complex type is *insignificant* and dropped (standard XSD practice);
  any other text there is a validation error (item 5.4.2.1/5.4.2.3).
* A simple-typed element always receives exactly one text child, even
  when its value is the empty string — the literal reading of item
  5.1.1.
* All declared attributes are mandatory (the paper elides
  REQUIRED/OPTIONAL); an undeclared attribute is an error.
* ``xsi:nil="true"`` on a nillable element yields a nilled element
  with no children (item 6); on a non-nillable element it is an error.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.xmlio.nodes import XmlDocument, XmlElement, XmlText
from repro.xmlio.qname import XSI_NAMESPACE, QName
from repro.xsdtypes.base import SimpleType
from repro.xdm.node import ANY_TYPE_NAME, DocumentNode, ElementNode
from repro.algebra.state import StateAlgebra
from repro.content.matcher import ContentModel
from repro.schema.ast import (
    ComplexContentType,
    DocumentSchema,
    ElementDeclaration,
    GroupDefinition,
    SimpleContentType,
    TypeName,
    TypeRef,
)

_XSI_NIL = QName(XSI_NAMESPACE, "nil")


class TreeConstructor:
    """Builds S-trees from S-documents for one schema (the function f)."""

    def __init__(self, schema: DocumentSchema) -> None:
        self._schema = schema
        self._content_models: dict[int, ContentModel] = {}

    def convert(self, document: XmlDocument,
                algebra: StateAlgebra | None = None) -> DocumentNode:
        """Apply ``f`` to *document*, returning the document node."""
        algebra = algebra or StateAlgebra()
        root_decl = self._schema.root_element
        xml_root = document.root
        if xml_root.name.local != root_decl.name:
            raise ValidationError(
                f"root element is {xml_root.name.local!r}, the schema "
                f"requires {root_decl.name!r} (item 3)")
        doc_node = algebra.create_document(base_uri=document.base_uri)
        element = self._convert_element(
            algebra, xml_root, root_decl, path=f"/{xml_root.name.local}")
        algebra.append_child(doc_node, element)
        return doc_node

    # ------------------------------------------------------------------

    def _content_model(self, group: GroupDefinition) -> ContentModel:
        model = self._content_models.get(id(group))
        if model is None:
            model = ContentModel(group)
            self._content_models[id(group)] = model
        return model

    def _fail(self, item: str, path: str, message: str) -> ValidationError:
        return ValidationError(f"{path}: {message} (item {item})")

    def _convert_element(self, algebra: StateAlgebra, source: XmlElement,
                         declaration: ElementDeclaration,
                         path: str) -> ElementNode:
        element = algebra.create_element(source.name)
        resolved = self._schema.resolve(declaration.type)
        type_name = self._type_accessor_value(declaration.type)

        nil_literal = source.attributes.get(_XSI_NIL)
        nilled = nil_literal in ("true", "1")
        if nilled and not declaration.nillable:
            raise self._fail(
                "6", path, "xsi:nil on a non-nillable element")

        if isinstance(resolved, SimpleType):
            algebra.annotate_element(element, type_name,
                                     simple_type=resolved, nilled=nilled)
            self._fill_attributes(algebra, element, source, None, path)
            if nilled:
                self._require_no_content(source, path, item="6.1")
            else:
                self._fill_simple_value(algebra, element, source,
                                        resolved, path)
            return element

        if isinstance(resolved, SimpleContentType):
            base = self._schema.resolve(resolved.base)
            if not isinstance(base, SimpleType):
                raise self._fail("5.2", path,
                                 "simple content base is not simple")
            algebra.annotate_element(element, type_name,
                                     simple_type=base, nilled=nilled)
            self._fill_attributes(algebra, element, source, resolved, path)
            if nilled:
                self._require_no_content(source, path, item="6.2")
            else:
                self._fill_simple_value(algebra, element, source, base, path)
            return element

        if isinstance(resolved, ComplexContentType):
            algebra.annotate_element(element, type_name, nilled=nilled)
            self._fill_attributes(algebra, element, source, resolved, path)
            if nilled:
                self._require_no_content(source, path, item="6.3")
            else:
                self._fill_complex_content(algebra, element, source,
                                           resolved, path)
            return element

        raise self._fail("4", path, f"unresolvable type {declaration.type!r}")

    def _type_accessor_value(self, ref: TypeRef) -> QName:
        """Item 4: the ``type`` accessor is the type name for named
        types and ``xs:anyType`` for anonymous definitions."""
        if isinstance(ref, TypeName):
            return ref.qname
        return ANY_TYPE_NAME

    # ------------------------------------------------------------------
    # Attributes (item 5.3.1)

    def _fill_attributes(self, algebra: StateAlgebra, element: ElementNode,
                         source: XmlElement,
                         definition: "SimpleContentType | ComplexContentType | None",
                         path: str) -> None:
        declared = definition.attributes if definition is not None else ()
        declared_names = {name for name, _ in declared}
        present: dict[str, str] = {}
        for qname, value in source.attributes.items():
            if qname == _XSI_NIL:
                continue
            if qname.uri:
                raise self._fail(
                    "5.3.1", path,
                    f"namespaced attribute {qname.clark} is outside the "
                    "paper's model")
            if qname.local not in declared_names:
                raise self._fail(
                    "5.3.1", path,
                    f"undeclared attribute {qname.local!r}")
            present[qname.local] = value
        for name, type_ref in declared:
            if name not in present:
                raise self._fail(
                    "5.3.1", path,
                    f"missing attribute {name!r} (all declared attributes "
                    "are mandatory in the paper's model)")
            simple = self._schema.resolve(type_ref)
            if not isinstance(simple, SimpleType):
                raise self._fail(
                    "5.3.1", path, f"attribute {name!r} has non-simple type")
            literal = present[name]
            if not simple.validate(literal):
                raise self._fail(
                    "5.3.1", path,
                    f"attribute {name}={literal!r} is not a valid "
                    f"{simple.type_name}")
            attribute = algebra.create_attribute(QName("", name), literal)
            if isinstance(type_ref, TypeName):
                attr_type_name = type_ref.qname
            else:
                attr_type_name = ANY_TYPE_NAME
            algebra.annotate_attribute(attribute, attr_type_name,
                                       simple_type=simple)
            algebra.attach_attribute(element, attribute)

    # ------------------------------------------------------------------
    # Content

    def _require_no_content(self, source: XmlElement, path: str,
                            item: str) -> None:
        for child in source.children:
            if isinstance(child, XmlElement):
                raise self._fail(item, path,
                                 "nilled element must have no children")
            if child.text.strip():
                raise self._fail(item, path,
                                 "nilled element must have no content")

    def _fill_simple_value(self, algebra: StateAlgebra,
                           element: ElementNode, source: XmlElement,
                           simple: SimpleType, path: str) -> None:
        """Item 5.1.1: exactly one text child holding the value."""
        if source.element_children():
            raise self._fail(
                "5.1.1", path,
                "simple-typed element must not have element children")
        literal = source.text_content()
        if not simple.validate(literal):
            raise self._fail(
                "5.1.1", path,
                f"value {literal!r} is not a valid {simple.type_name}")
        algebra.append_child(element, algebra.create_text(literal))

    def _fill_complex_content(self, algebra: StateAlgebra,
                              element: ElementNode, source: XmlElement,
                              definition: ComplexContentType,
                              path: str) -> None:
        group = definition.group
        if group is None or group.empty_content:
            self._fill_empty_content(algebra, element, source,
                                     definition.mixed, path)
            return
        model = self._content_model(group)
        child_elements = source.element_children()
        names = [child.name.local for child in child_elements]
        if not model.matches(names):
            raise self._fail("5.4.2.3", path, model.explain(names))

        counters: dict[str, int] = {}
        for child in source.children:
            if isinstance(child, XmlText):
                if not definition.mixed:
                    if child.text.strip():
                        raise self._fail(
                            "5.4.2.1", path,
                            f"text {child.text.strip()[:30]!r} in "
                            "non-mixed element content")
                    continue  # insignificant whitespace
                if child.text:
                    algebra.append_child(element,
                                         algebra.create_text(child.text))
                continue
            name = child.name.local
            if not model.knows(name):
                raise self._fail(
                    "5.4.2.3", path,
                    f"element {name!r} does not occur in the content model")
            declaration = model.declaration_for(name)
            counters[name] = counters.get(name, 0) + 1
            child_path = f"{path}/{name}[{counters[name]}]"
            algebra.append_child(
                element,
                self._convert_element(algebra, child, declaration,
                                      child_path))

    def _fill_empty_content(self, algebra: StateAlgebra,
                            element: ElementNode, source: XmlElement,
                            mixed: bool, path: str) -> None:
        """Item 5.4.1: empty content — at most one text child if mixed."""
        if source.element_children():
            raise self._fail(
                "5.4.1", path,
                "element children where the type has empty content")
        literal = source.text_content()
        if literal and not mixed:
            if literal.strip():
                raise self._fail(
                    "5.4.1.2", path,
                    "text content where the type forbids it")
            return
        if literal:
            algebra.append_child(element, algebra.create_text(literal))


def document_to_tree(document: XmlDocument, schema: DocumentSchema,
                     algebra: StateAlgebra | None = None) -> DocumentNode:
    """The paper's ``f``: map an S-document to an S-tree."""
    return TreeConstructor(schema).convert(document, algebra)


def untyped_document_to_tree(document: XmlDocument,
                             algebra: StateAlgebra | None = None
                             ) -> DocumentNode:
    """Schema-less variant: every element is ``xs:anyType``, all text
    is preserved verbatim.  Used by the storage layer, which (like
    Sedna's descriptive schema) does not require a document schema."""
    algebra = algebra or StateAlgebra()
    doc_node = algebra.create_document(base_uri=document.base_uri)
    algebra.append_child(doc_node,
                         _untyped_element(algebra, document.root))
    return doc_node


def _untyped_element(algebra: StateAlgebra,
                     source: XmlElement) -> ElementNode:
    element = algebra.create_element(source.name)
    for qname, value in source.attributes.items():
        attribute = algebra.create_attribute(qname, value)
        algebra.attach_attribute(element, attribute)
    for child in source.children:
        if isinstance(child, XmlText):
            algebra.append_child(element, algebra.create_text(child.text))
        else:
            algebra.append_child(element,
                                 _untyped_element(algebra, child))
    return element
