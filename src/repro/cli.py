"""Command-line interface.

Usage::

    python -m repro validate SCHEMA.xsd DOCUMENT.xml
    python -m repro lint SCHEMA.xsd
    python -m repro normalize SCHEMA.xsd
    python -m repro query DOCUMENT.xml PATH [--schema SCHEMA.xsd] [--json]
    python -m repro xquery DOCUMENT.xml QUERY [--schema SCHEMA.xsd]
    python -m repro inspect DOCUMENT.xml [--json]
    python -m repro stats DOCUMENT.xml [--path PATH ...] [--json]
    python -m repro explain DOCUMENT.xml PATH [--json]
    python -m repro metrics DOCUMENT.xml [--path PATH ...]
                            [--prom | --json]
    python -m repro top DOCUMENT.xml [--path PATH ...] [--repeat N]
                        [--slow-ms MS] [--json]
    python -m repro trace DOCUMENT.xml PATH [--out FILE]
    python -m repro checkpoint DOCUMENT.xml TARGET [--backend file|sqlite]
                               [--wal WAL] [--json]
    python -m repro recover TARGET [--backend file|sqlite] [--wal WAL]
                                   [--schema SCHEMA.xsd] [--strict] [--json]
    python -m repro snapshots TARGET [--backend file|sqlite]
                                     [--restore VERSION] [--json]
    python -m repro index DOCUMENT.xml PATH [--kind value|path]
                          [--type TYPE] [--eq V | --low L --high H]
                          [--query PATH] [--json]
    python -m repro serve DOCUMENT.xml [--readers N] [--writers M]
                          [--requests R] [--max-sessions S]
                          [--lease-ttl SEC] [--timeout SEC]
                          [--seed SEED] [--prom | --json]
    python -m repro session DOCUMENT.xml PATH [--mode read|write]
                            [--timeout SEC] [--json]

``validate`` applies the mapping f (Section 8) and reports the first
Section 6.2 requirement the document violates; ``lint`` runs the
static schema diagnostics; ``normalize`` prints the canonical form;
``query`` evaluates a path; ``inspect`` loads the document into the
Sedna-style storage and prints its descriptive schema and statistics;
``stats`` loads (and optionally queries) with observability on and
prints the metrics registry; ``explain`` evaluates a path twice —
cold, then through the warmed plan cache — and reports both plans;
``checkpoint`` loads a document and persists it atomically through a
storage backend — the historical image file (plus an empty
write-ahead log with ``--wal``) or a SQLite database whose
checkpoints are incremental; ``recover`` rebuilds the engine from a
backend's snapshot + WAL, replaying committed transactions and
discarding torn tails and uncommitted suffixes; ``snapshots`` lists
the fingerprinted snapshot versions a backend retains (and optionally
verifies one restores); ``index`` declares a
secondary index (typed-value or path) over a loaded document, reports
its statistics, and optionally probes it or EXPLAINs a query through
it.

The operator surfaces ride on the always-on telemetry tier:
``metrics`` scrapes the registry after a load-and-query run — as the
Prometheus text exposition format (``--prom``) or structured JSON with
counters, gauges and histogram percentiles; ``top`` runs a repeated
query workload and prints the aggregated live view (query rates and
latency percentiles, cache hit rates, WAL/checkpoint latencies), with
``--slow-ms`` arming the slow-query log and appending its JSON-lines
events; ``trace`` records a cold+warm evaluation with span tracing on
and exports Chrome-trace-viewer JSON.

``serve`` and ``session`` exercise the resilient multi-session layer
(DESIGN §14): ``serve`` runs a bounded N-reader/M-writer workload —
readers on pinned MVCC-lite snapshots, writers handing off the
single-writer lease under timeout/backoff, overload shed with typed
``Overloaded`` responses — and reports isolation evidence (torn reads,
relabels, dead letters) plus the ``server.*`` telemetry; ``session``
opens one session and evaluates a path.  With ``--json``, every
command reports failures as ``{"error": {"type", "kind", "message",
...}}`` where ``kind`` is the stable machine-readable discriminator.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro import obs
from repro.errors import ReproError
from repro.mapping.doc_to_tree import (
    document_to_tree,
    untyped_document_to_tree,
)
from repro.query.engine import evaluate_tree
from repro.xquery.evaluator import execute as xquery_execute
from repro.xdm.node import Node
from repro.mapping.tree_to_doc import serialize_tree
from repro.schema.normalize import normalize_schema
from repro.schema.parser import parse_schema
from repro.schema.wellformed import lint_schema
from repro.schema.writer import write_schema
from repro.query.engine import StorageQueryEngine
from repro.storage.engine import StorageEngine
from repro.xmlio.parser import parse_document


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_validate(args: argparse.Namespace) -> int:
    schema = parse_schema(_read(args.schema))
    try:
        document_to_tree(parse_document(_read(args.document)), schema)
    except ReproError as error:
        print(f"INVALID: {error}")
        return 1
    print(f"VALID: {args.document} conforms to {args.schema}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    issues = lint_schema(parse_schema(_read(args.schema)))
    for issue in issues:
        print(issue)
    if not issues:
        print("clean: no diagnostics")
    return 1 if any(i.severity == "error" for i in issues) else 0


def _cmd_normalize(args: argparse.Namespace) -> int:
    schema = normalize_schema(parse_schema(_read(args.schema)))
    print(write_schema(schema))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    document = parse_document(_read(args.document))
    if args.schema:
        tree = document_to_tree(document, parse_schema(_read(args.schema)))
    else:
        tree = untyped_document_to_tree(document)
    values = [node.string_value()
              for node in evaluate_tree(tree, args.path)]
    if args.json:
        print(json.dumps({"path": args.path, "count": len(values),
                          "values": values}, indent=2))
        return 0
    for value in values:
        print(value)
    return 0


def _cmd_xquery(args: argparse.Namespace) -> int:
    document = parse_document(_read(args.document))
    if args.schema:
        tree = document_to_tree(document, parse_schema(_read(args.schema)))
    else:
        tree = untyped_document_to_tree(document)
    for item in xquery_execute(tree, args.query):
        if isinstance(item, Node) and item.node_kind() == "element":
            print(serialize_tree(item))
        elif isinstance(item, Node):
            print(item.string_value())
        else:
            print(item)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    engine = StorageEngine()
    engine.load_document(parse_document(_read(args.document)))
    if args.json:
        print(json.dumps({
            "document_nodes": engine.node_count(),
            "schema_nodes": engine.schema.node_count(),
            "blocks": engine.block_count(),
            "modelled_bytes": engine.size_bytes(),
            "descriptive_schema": [
                {"path": path, "type": node_type,
                 "descriptors":
                     engine.schema.find_path(path).descriptor_count}
                for path, node_type in engine.schema.paths()],
        }, indent=2))
        return 0
    print(f"document nodes:    {engine.node_count()}")
    print(f"schema nodes:      {engine.schema.node_count()}")
    print(f"blocks:            {engine.block_count()}")
    print(f"modelled bytes:    {engine.size_bytes()}")
    print("descriptive schema:")
    for path, node_type in engine.schema.paths():
        schema_node = engine.schema.find_path(path)
        print(f"  {path:44s} {node_type:9s} "
              f"x{schema_node.descriptor_count}")
    return 0


def _format_instrument(value) -> str:
    """One metrics line: scalars verbatim, histogram summaries compact."""
    if isinstance(value, dict):
        return (f"n={value['count']} mean={value['mean']:.0f} "
                f"p50={value['p50']:.0f} p95={value['p95']:.0f} "
                f"p99={value['p99']:.0f}")
    return str(value)


def _print_statistics_table(statistics: dict) -> None:
    """The per-schema-node statistics table the cost-based planner
    prices candidates from (``repro stats`` / ``repro top``)."""
    if not statistics:
        return
    print("per-schema-node statistics (cost-model inputs):")
    print(f"  {'schema path':44s} {'rows':>7s} {'bytes':>9s} "
          f"{'distinct':>8s} {'min':>12s} {'max':>12s}")
    for path, digest in statistics.items():
        def _cell(value) -> str:
            if value is None:
                return "-"
            text = str(value)
            return text if len(text) <= 12 else text[:11] + "…"
        print(f"  {path:44s} {digest['descriptors']:>7d} "
              f"{digest['bytes']:>9d} {digest['distinct_values']:>8d} "
              f"{_cell(digest['min_value']):>12s} "
              f"{_cell(digest['max_value']):>12s}")


def _cmd_stats(args: argparse.Namespace) -> int:
    """Load (and optionally query) with observability on, then print
    every instrument the instrumented layers recorded."""
    obs.reset()
    obs.enable()
    try:
        engine = StorageEngine()
        engine.load_document(parse_document(_read(args.document)))
        queries = StorageQueryEngine(engine)
        for path in args.path or ():
            queries.evaluate(path)
        snapshot = obs.snapshot()
        if args.json:
            print(json.dumps({"document": args.document,
                              "metrics": snapshot,
                              "instruments": obs.REGISTRY.structured(),
                              "statistics": engine.stats.export()},
                             indent=2))
            return 0
        print(f"metrics for {args.document}:")
        section = None
        for name in sorted(snapshot):
            prefix = name.split(".", 1)[0]
            if prefix != section:
                section = prefix
                print(f"  [{section}]")
            print(f"    {name:40s} "
                  f"{_format_instrument(snapshot[name])}")
        _print_statistics_table(engine.stats.export())
        return 0
    finally:
        obs.disable()
        obs.reset()


def _cmd_explain(args: argparse.Namespace) -> int:
    """Evaluate a path twice — a cold compile, then the warmed plan
    cache — and report the EXPLAIN record of each run."""
    obs.reset()
    obs.enable()
    try:
        engine = StorageEngine()
        engine.load_document(parse_document(_read(args.document)))
        queries = StorageQueryEngine(engine)
        queries.evaluate(args.path)
        cold = obs.EXPLAINS.last()
        queries.evaluate(args.path)
        warm = obs.EXPLAINS.last()
        if args.json:
            print(json.dumps({"cold": cold.as_dict(),
                              "warm": warm.as_dict()}, indent=2))
            return 0
        print("-- cold (first evaluation) --")
        print(cold.render())
        print("-- warm (plan cache hit) --")
        print(warm.render())
        return 0
    finally:
        obs.disable()
        obs.reset()


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Scrape the always-on telemetry registry after a load-and-query
    run — Prometheus text exposition, structured JSON, or readable."""
    obs.reset()
    try:
        engine = StorageEngine()
        engine.load_document(parse_document(_read(args.document)))
        queries = StorageQueryEngine(engine)
        for path in args.path or ():
            queries.evaluate(path)
        if args.prom:
            print(obs.render_prometheus(obs.REGISTRY))
            return 0
        structured = obs.REGISTRY.structured()
        if args.json:
            print(json.dumps({"document": args.document, **structured},
                             indent=2))
            return 0
        print(f"telemetry for {args.document}:")
        for group in ("counters", "gauges", "histograms"):
            if not structured[group]:
                continue
            print(f"  [{group}]")
            for name in sorted(structured[group]):
                print(f"    {name:40s} "
                      f"{_format_instrument(structured[group][name])}")
        return 0
    finally:
        obs.reset()


def _cmd_top(args: argparse.Namespace) -> int:
    """Run a repeated query workload and print the aggregated live
    view: query rates and latency percentiles, cache hit rates,
    WAL/checkpoint latencies — plus slow-query events if armed."""
    obs.reset()
    if args.slow_ms is not None:
        obs.set_slow_query_threshold(args.slow_ms / 1000.0)
    try:
        engine = StorageEngine()
        engine.load_document(parse_document(_read(args.document)))
        queries = StorageQueryEngine(engine)
        paths = args.path or ["/"]
        for _ in range(args.repeat):
            for path in paths:
                queries.evaluate(path)
        registry = obs.REGISTRY
        latency = registry.histogram("query.latency.ns").summary()
        caches = queries.cache_stats()
        evaluated = registry.value("query.evaluations")
        rate = (evaluated / (latency["sum"] / 1e9)
                if latency["sum"] else 0.0)
        report = {
            "document": args.document,
            "paths": paths,
            "repeat": args.repeat,
            "queries": {
                "evaluations": evaluated,
                "per_second": round(rate, 1),
                "latency_ns": latency,
                "slow": registry.value("query.slow"),
            },
            "caches": caches,
            "wal": {
                "append_ns":
                    registry.histogram("wal.append.ns").summary(),
                "sync_ns":
                    registry.histogram("wal.sync.ns").summary(),
            },
            "checkpoints": {
                name.split(".", 1)[1]: value
                for name, value in registry.snapshot().items()
                if name.startswith("checkpoint.")
            },
            "storage": {
                "descriptors": engine.stats.total_descriptors(),
                "bytes": engine.stats.total_bytes(),
                "blocks": engine.block_count(),
            },
            "statistics": engine.stats.export(),
        }
        # When a session-layer workload ran in-process (repro serve,
        # embedding apps), surface its server.* instruments too.
        server_stats = {
            name: value for name, value in registry.snapshot().items()
            if name.startswith("server.")}
        if server_stats:
            report["server"] = server_stats
        slow_events = obs.EVENTS.find("query.slow")
        if args.json:
            if slow_events:
                report["slow_events"] = [e.as_dict()
                                         for e in slow_events]
            print(json.dumps(report, indent=2))
            return 0
        print(f"top — {args.document} "
              f"({args.repeat}x {len(paths)} path(s))")
        print(f"  queries:     {evaluated} evaluated, "
              f"{report['queries']['per_second']}/s, "
              f"{report['queries']['slow']} slow")
        print(f"  latency:     {_format_instrument(latency)}")
        print(f"  plan cache:  {caches['plan_hit_rate']:.1%} hit rate "
              f"({caches['plan_hits']} hits, "
              f"{caches['plan_misses']} misses)")
        print(f"  parse cache: {caches['parse_hit_rate']:.1%} hit rate")
        wal_append = report["wal"]["append_ns"]
        if wal_append["count"]:
            print(f"  wal append:  {_format_instrument(wal_append)}")
        for name, value in report["checkpoints"].items():
            print(f"  checkpoint {name:10s} {_format_instrument(value)}")
        print(f"  storage:     {report['storage']['descriptors']} "
              f"descriptors, {report['storage']['bytes']} bytes, "
              f"{report['storage']['blocks']} blocks")
        _print_statistics_table(report["statistics"])
        if slow_events:
            print("slow queries (JSON lines):")
            print(obs.EVENTS.to_jsonl())
        return 0
    finally:
        obs.set_slow_query_threshold(None)
        obs.reset()


def _cmd_trace(args: argparse.Namespace) -> int:
    """Record a cold+warm evaluation with span tracing on and export
    Chrome-trace-viewer JSON (chrome://tracing, Perfetto)."""
    obs.reset()
    obs.enable(tracing=True)
    try:
        engine = StorageEngine()
        engine.load_document(parse_document(_read(args.document)))
        queries = StorageQueryEngine(engine)
        queries.evaluate(args.path)  # cold: compile + execute
        queries.evaluate(args.path)  # warm: plan cache hit
        trace = obs.TRACER.chrome_trace()
        payload = json.dumps(trace, indent=2)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote {len(trace['traceEvents'])} span(s) to "
                  f"{args.out}")
        else:
            print(payload)
        return 0
    finally:
        obs.disable()
        obs.reset()


def _make_backend(args: argparse.Namespace):
    """Build the backend the durability commands operate on."""
    from repro.errors import StorageError
    from repro.storage.backends import FileBackend, SqliteBackend

    if args.backend == "sqlite":
        if getattr(args, "wal", None):
            raise StorageError(
                "the sqlite backend keeps its write-ahead log inside "
                "the database; --wal applies to the file backend only")
        return SqliteBackend(args.image)
    return FileBackend(args.image, wal_path=getattr(args, "wal", None))


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    """Load a document and persist it through a storage backend."""
    engine = StorageEngine()
    engine.load_document(parse_document(_read(args.document)))
    backend = _make_backend(args)
    wal = backend.open_wal() if (args.wal or args.backend == "sqlite") \
        else None
    info = backend.checkpoint(engine, wal=wal)
    if wal is not None:
        wal.close()
    if args.json:
        print(json.dumps({"image": args.image, "wal": args.wal,
                          "backend": backend.name,
                          "snapshot_version": info.version,
                          "fingerprint": info.fingerprint,
                          "nodes": engine.node_count(),
                          "blocks": engine.block_count(),
                          "checkpoint_lsn": info.lsn}, indent=2))
        return 0
    print(f"checkpointed {args.document} -> {args.image} "
          f"({engine.node_count()} nodes, {engine.block_count()} blocks, "
          f"lsn {info.lsn})")
    print(f"  backend {backend.name}, snapshot version {info.version}")
    if args.wal:
        print(f"write-ahead log at {args.wal}")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """Rebuild an engine from a backend's snapshot + write-ahead log."""
    from repro.storage.recovery import recover

    schema = parse_schema(_read(args.schema)) if args.schema else None
    if args.backend == "sqlite":
        result = recover(_make_backend(args), schema=schema,
                         strict=args.strict)
    else:
        result = recover(args.image, wal_path=args.wal, schema=schema,
                         strict=args.strict)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2))
        return 0
    print(f"recovered {args.image}: {result.engine.node_count()} nodes, "
          f"{result.engine.block_count()} blocks")
    print(f"  backend:          {result.backend}")
    print(f"  snapshot version: {result.snapshot_version}")
    print(f"  checkpoint lsn:   {result.checkpoint_lsn}")
    print(f"  replayed records: {result.replayed}")
    print(f"  skipped records:  {result.skipped}")
    print(f"  discarded:        {result.discarded} "
          f"(txns {result.discarded_txns})")
    print(f"  torn bytes:       {result.torn_bytes}")
    print(f"  relabels:         {result.relabels}")
    if schema is not None:
        print("  conformance:      ok (Section 6.2)")
    return 0


def _cmd_snapshots(args: argparse.Namespace) -> int:
    """List the fingerprinted snapshot versions a backend retains."""
    backend = _make_backend(args)
    snapshots = backend.list_snapshots()
    report: dict = {
        "target": args.image,
        "backend": backend.name,
        "snapshots": [info.as_dict() for info in snapshots],
    }
    if args.restore:
        engine = backend.restore(args.restore)
        report["restored"] = {"version": args.restore,
                              "nodes": engine.node_count(),
                              "blocks": engine.block_count()}
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    if not snapshots:
        print(f"no snapshots at {args.image} ({backend.name} backend)")
        return 0
    print(f"snapshots at {args.image} ({backend.name} backend):")
    for info in snapshots:
        print(f"  {info.seq:3d}  {info.version}  lsn {info.lsn:<6d} "
              f"{info.bytes} bytes")
    if args.restore:
        restored = report["restored"]
        print(f"restored {restored['version']}: {restored['nodes']} "
              f"nodes, {restored['blocks']} blocks")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    """Declare a secondary index over a loaded document, report its
    statistics, and optionally probe it or EXPLAIN a query through it."""
    from repro.errors import UpdateError
    from repro.storage.indexes import ValueIndex

    engine = StorageEngine()
    engine.load_document(parse_document(_read(args.document)))
    index = engine.create_index(args.path, kind=args.kind,
                                value_type=args.type)
    report: dict = {"definition": index.definition.as_dict(),
                    "stats": index.stats()}
    probing = (args.eq is not None or args.low is not None
               or args.high is not None)
    if probing:
        if not isinstance(index, ValueIndex):
            raise UpdateError(
                "--eq/--low/--high probe a value index, not a "
                "path index")
        if args.eq is not None:
            matches = index.probe_eq(index.parse_key(args.eq))
            report["probe"] = {"mode": "eq", "value": args.eq,
                               "count": len(matches)}
        else:
            low = (index.parse_key(args.low)
                   if args.low is not None else None)
            high = (index.parse_key(args.high)
                    if args.high is not None else None)
            matches = index.probe_range(low, high)
            report["probe"] = {"mode": "range", "low": args.low,
                               "high": args.high,
                               "count": len(matches)}
    if args.query:
        obs.reset()
        obs.enable()
        try:
            queries = StorageQueryEngine(engine)
            result = queries.evaluate(args.query)
            record = obs.EXPLAINS.last()
            report["query"] = {"path": args.query,
                               "count": len(result),
                               "explain": record.as_dict()}
        finally:
            obs.disable()
            obs.reset()
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    definition = index.definition
    suffix = (f" ({definition.value_type})"
              if definition.kind == "value" else "")
    print(f"index {definition.kind}:{definition.path}{suffix}")
    for name, value in report["stats"].items():
        if name in ("kind", "path", "value_type"):
            continue
        print(f"  {name + ':':22s}{value}")
    if "probe" in report:
        probe = report["probe"]
        if probe["mode"] == "eq":
            print(f"  probe eq {probe['value']!r}: "
                  f"{probe['count']} match(es)")
        else:
            print(f"  probe range [{probe['low']!r}, {probe['high']!r}]: "
                  f"{probe['count']} match(es)")
    if "query" in report:
        explain = report["query"]["explain"]
        print(f"  query {args.query}: {report['query']['count']} "
              f"node(s), strategy {explain['strategy']}"
              + (f" via {explain['index_used']}"
                 if explain["index_used"] else ""))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run a bounded N-reader/M-writer workload through the session
    layer and report isolation + degradation evidence.

    Readers pin MVCC-lite snapshots and re-query to prove stability;
    writers hand off the single-writer lease under timeout/backoff;
    load past the admission caps sheds with typed ``Overloaded``.
    The exit code is 1 unless every reader saw a frozen snapshot
    (torn_reads == 0) and final recovery relabelled nothing.
    """
    import threading

    from repro.server import DatabaseServer, server_report
    from repro.server.session import LeaseTimeout, Overloaded
    from repro.storage import MemoryBackend
    from repro.storage.recovery import recover

    obs.reset()
    document = parse_document(_read(args.document))
    server = DatabaseServer(MemoryBackend(), document,
                            max_sessions=args.max_sessions,
                            lease_ttl=args.lease_ttl,
                            acquire_timeout=args.timeout,
                            seed=args.seed)
    path = args.path or f"/{document.root.name.local}"
    counters = {"reads": 0, "writes": 0, "overloaded": 0,
                "lease_timeouts": 0, "torn_reads": 0, "errors": 0}
    tally = threading.Lock()

    def _count(key: str, by: int = 1) -> None:
        with tally:
            counters[key] += by

    def _mutate(engine, session) -> None:
        # Clone the first child element's name under the root — a
        # schema-preserving insertion that works for any document.
        root = engine.children(engine.document)[0]
        kids = [k for k in engine.children(root)
                if engine.node_kind(k) == "element"]
        name = (engine.node_name(kids[0]) if kids
                else engine.node_name(root))
        engine.insert_child(root, 0, name=name)

    def _reader(index: int) -> None:
        for _ in range(args.requests):
            try:
                with server.open_session(
                        "read", owner=f"reader-{index}") as session:
                    first = session.query_values(path)
                    again = session.query_values(path)
                    if first != again:
                        _count("torn_reads")
                    _count("reads", 2)
            except Overloaded:
                _count("overloaded")
            except ReproError:
                _count("errors")

    def _writer(index: int) -> None:
        for _ in range(args.requests):
            try:
                with server.open_session(
                        "write", owner=f"writer-{index}") as session:
                    session.execute(_mutate)
                    _count("writes")
            except LeaseTimeout:
                _count("lease_timeouts")
            except Overloaded:
                _count("overloaded")
            except ReproError:
                _count("errors")

    threads = [threading.Thread(target=_reader, args=(i,))
               for i in range(args.readers)]
    threads += [threading.Thread(target=_writer, args=(i,))
                for i in range(args.writers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    server.checkpoint_now()
    final = recover(server.backend)
    report = {
        "document": args.document,
        "config": {"readers": args.readers, "writers": args.writers,
                   "requests": args.requests,
                   "max_sessions": args.max_sessions,
                   "seed": args.seed},
        "results": dict(counters),
        "recovery": {"relabels": final.relabels,
                     "nodes": final.engine.node_count()},
        "dead_letters": [letter.as_dict() for letter
                         in server.leases.drain_dead_letters()],
        "server": server_report(),
        "admission": server.admission.snapshot(),
    }
    healthy = (counters["torn_reads"] == 0 and final.relabels == 0
               and counters["errors"] == 0)
    report["healthy"] = healthy
    try:
        if args.prom:
            print(obs.render_prometheus(obs.REGISTRY))
        elif args.json:
            print(json.dumps(report, indent=2))
        else:
            print(f"serve — {args.document} "
                  f"({args.readers} reader(s) + {args.writers} "
                  f"writer(s) x {args.requests})")
            print(f"  reads:        {counters['reads']} "
                  f"({counters['torn_reads']} torn)")
            print(f"  writes:       {counters['writes']} committed, "
                  f"{counters['lease_timeouts']} lease timeout(s)")
            print(f"  shed:         {counters['overloaded']} overloaded")
            print(f"  lease:        "
                  f"{report['server']['lease']['grants']} grant(s), "
                  f"{report['server']['lease']['expirations']} "
                  f"expiration(s), {len(report['dead_letters'])} "
                  f"dead letter(s)")
            print(f"  recovery:     {final.relabels} relabel(s), "
                  f"{final.engine.node_count()} nodes")
            print(f"  healthy:      {healthy}")
        return 0 if healthy else 1
    finally:
        server.close()
        obs.reset()


def _cmd_session(args: argparse.Namespace) -> int:
    """Open one session against a fresh server and evaluate a path —
    the smallest end-to-end exercise of the session layer."""
    from repro.server import DatabaseServer
    from repro.storage import MemoryBackend

    obs.reset()
    server = DatabaseServer(MemoryBackend(),
                            parse_document(_read(args.document)))
    try:
        with server.open_session(args.mode,
                                 timeout=args.timeout) as session:
            values = session.query_values(args.path)
            report = {
                "session": session.session_id,
                "mode": session.mode,
                "path": args.path,
                "count": len(values),
                "values": values,
            }
            if session.snapshot is not None:
                report["snapshot"] = session.snapshot.version
                report["relabels"] = session.snapshot.relabels
            if session.lease is not None:
                report["lease"] = session.lease.as_dict()
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            origin = report.get("snapshot", "live engine")
            print(f"session {report['session']} ({report['mode']}) "
                  f"over {origin}: {report['count']} node(s)")
            for value in values:
                print(value)
        return 0
    finally:
        server.close()
        obs.reset()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A formal model of XML Schema (ICDE 2005) — "
                    "validator, linter and storage inspector.")
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser(
        "validate", help="validate a document against a schema")
    validate.add_argument("schema")
    validate.add_argument("document")
    validate.set_defaults(handler=_cmd_validate)

    lint = commands.add_parser(
        "lint", help="static schema diagnostics (UPA and friends)")
    lint.add_argument("schema")
    lint.set_defaults(handler=_cmd_lint)

    normalize = commands.add_parser(
        "normalize", help="print the canonical form of a schema")
    normalize.add_argument("schema")
    normalize.set_defaults(handler=_cmd_normalize)

    query = commands.add_parser(
        "query", help="evaluate a path over a document")
    query.add_argument("document")
    query.add_argument("path")
    query.add_argument("--schema", default=None,
                       help="validate and type the document first")
    query.add_argument("--json", action="store_true",
                       help="emit {path, count, values} as JSON")
    query.set_defaults(handler=_cmd_query)

    xquery = commands.add_parser(
        "xquery", help="evaluate an XQuery-lite FLWOR expression")
    xquery.add_argument("document")
    xquery.add_argument("query")
    xquery.add_argument("--schema", default=None,
                        help="validate and type the document first")
    xquery.set_defaults(handler=_cmd_xquery)

    inspect = commands.add_parser(
        "inspect", help="load into Sedna-style storage and report")
    inspect.add_argument("document")
    inspect.add_argument("--json", action="store_true",
                         help="emit the report as JSON")
    inspect.set_defaults(handler=_cmd_inspect)

    stats = commands.add_parser(
        "stats", help="load with observability on and print metrics")
    stats.add_argument("document")
    stats.add_argument("--path", action="append", default=None,
                       help="also evaluate PATH (repeatable)")
    stats.add_argument("--json", action="store_true",
                       help="emit the metrics snapshot as JSON")
    stats.set_defaults(handler=_cmd_stats)

    explain = commands.add_parser(
        "explain", help="EXPLAIN a path query (cold + warm plan)")
    explain.add_argument("document")
    explain.add_argument("path")
    explain.add_argument("--json", action="store_true",
                         help="emit both EXPLAIN records as JSON")
    explain.set_defaults(handler=_cmd_explain)

    metrics = commands.add_parser(
        "metrics", help="scrape the always-on telemetry registry")
    metrics.add_argument("document")
    metrics.add_argument("--path", action="append", default=None,
                         help="also evaluate PATH (repeatable)")
    group = metrics.add_mutually_exclusive_group()
    group.add_argument("--prom", action="store_true",
                       help="Prometheus text exposition format")
    group.add_argument("--json", action="store_true",
                       help="structured JSON: counters, gauges, "
                            "histogram percentiles")
    metrics.set_defaults(handler=_cmd_metrics)

    top = commands.add_parser(
        "top", help="repeated workload: rates, percentiles, caches")
    top.add_argument("document")
    top.add_argument("--path", action="append", default=None,
                     help="workload path (repeatable; default '/')")
    top.add_argument("--repeat", type=int, default=100,
                     help="evaluations per path (default: 100)")
    top.add_argument("--slow-ms", type=float, default=None,
                     dest="slow_ms", metavar="MS",
                     help="arm the slow-query log at MS milliseconds")
    top.add_argument("--json", action="store_true",
                     help="emit the aggregated view as JSON")
    top.set_defaults(handler=_cmd_top)

    trace = commands.add_parser(
        "trace", help="export a cold+warm trace as Chrome-trace JSON")
    trace.add_argument("document")
    trace.add_argument("path")
    trace.add_argument("--out", default=None,
                       help="write the trace JSON to FILE")
    trace.set_defaults(handler=_cmd_trace)

    checkpoint = commands.add_parser(
        "checkpoint", help="persist a document through a storage backend")
    checkpoint.add_argument("document")
    checkpoint.add_argument("image", metavar="target",
                            help="image path (file) or database (sqlite)")
    checkpoint.add_argument("--backend", choices=("file", "sqlite"),
                            default="file",
                            help="storage backend (default: file)")
    checkpoint.add_argument("--wal", default=None,
                            help="also start a write-ahead log at WAL "
                                 "(file backend)")
    checkpoint.add_argument("--json", action="store_true",
                            help="emit the checkpoint report as JSON")
    checkpoint.set_defaults(handler=_cmd_checkpoint)

    recover = commands.add_parser(
        "recover", help="rebuild an engine from snapshot + write-ahead log")
    recover.add_argument("image", metavar="target",
                         help="image path (file) or database (sqlite)")
    recover.add_argument("--backend", choices=("file", "sqlite"),
                         default="file",
                         help="storage backend (default: file)")
    recover.add_argument("--wal", default=None,
                         help="replay committed transactions from WAL "
                              "(file backend)")
    recover.add_argument("--schema", default=None,
                         help="verify Section 6.2 conformance after replay")
    recover.add_argument("--strict", action="store_true",
                         help="also verify global label order")
    recover.add_argument("--json", action="store_true",
                         help="emit the recovery report as JSON")
    recover.set_defaults(handler=_cmd_recover)

    snapshots = commands.add_parser(
        "snapshots", help="list a backend's fingerprinted snapshots")
    snapshots.add_argument("image", metavar="target",
                           help="image path (file) or database (sqlite)")
    snapshots.add_argument("--backend", choices=("file", "sqlite"),
                           default="file",
                           help="storage backend (default: file)")
    snapshots.add_argument("--restore", default=None, metavar="VERSION",
                           help="also restore VERSION and report it")
    snapshots.add_argument("--json", action="store_true",
                           help="emit the snapshot list as JSON")
    snapshots.set_defaults(handler=_cmd_snapshots)

    index = commands.add_parser(
        "index", help="declare a secondary index and report/probe it")
    index.add_argument("document")
    index.add_argument("path",
                       help="schema path (value) or query path (path)")
    index.add_argument("--kind", choices=("value", "path"),
                       default="value")
    index.add_argument("--type", default="string",
                       help="XML Schema simple type of the keys "
                            "(value indexes)")
    index.add_argument("--eq", default=None,
                       help="probe: count owners with this typed value")
    index.add_argument("--low", default=None,
                       help="probe: inclusive lower range bound")
    index.add_argument("--high", default=None,
                       help="probe: inclusive upper range bound")
    index.add_argument("--query", default=None,
                       help="also EXPLAIN this query through the index")
    index.add_argument("--json", action="store_true",
                       help="emit the index report as JSON")
    index.set_defaults(handler=_cmd_index)

    serve = commands.add_parser(
        "serve", help="run a bounded multi-session workload and "
                      "report isolation + degradation evidence")
    serve.add_argument("document")
    serve.add_argument("--path", default=None,
                       help="reader query path (default '/')")
    serve.add_argument("--readers", type=int, default=4,
                       help="concurrent reader threads (default: 4)")
    serve.add_argument("--writers", type=int, default=2,
                       help="concurrent writer threads (default: 2)")
    serve.add_argument("--requests", type=int, default=8,
                       help="sessions opened per thread (default: 8)")
    serve.add_argument("--max-sessions", type=int, default=32,
                       dest="max_sessions",
                       help="admission cap on open sessions")
    serve.add_argument("--lease-ttl", type=float, default=0.5,
                       dest="lease_ttl",
                       help="writer lease TTL in seconds")
    serve.add_argument("--timeout", type=float, default=2.0,
                       help="writer lease acquire timeout in seconds")
    serve.add_argument("--seed", type=int, default=0,
                       help="backoff-jitter RNG seed")
    group = serve.add_mutually_exclusive_group()
    group.add_argument("--prom", action="store_true",
                       help="Prometheus text exposition format")
    group.add_argument("--json", action="store_true",
                       help="emit the workload report as JSON")
    serve.set_defaults(handler=_cmd_serve)

    session = commands.add_parser(
        "session", help="open one session and evaluate a path")
    session.add_argument("document")
    session.add_argument("path")
    session.add_argument("--mode", choices=("read", "write"),
                         default="read",
                         help="snapshot reader or lease-holding writer")
    session.add_argument("--timeout", type=float, default=None,
                         help="lease acquire timeout (write mode)")
    session.add_argument("--json", action="store_true",
                         help="emit the session report as JSON")
    session.set_defaults(handler=_cmd_session)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        if getattr(args, "json", False):
            # Machine consumers asked for JSON; errors honour that too.
            # ``kind`` is the stable wire-format discriminator (the
            # class name is a Python detail); errors carrying extra
            # structure (corruption location, Overloaded retry_after)
            # merge it in via their as_dict().
            payload = {"type": type(error).__name__,
                       "kind": getattr(error, "kind", "error"),
                       "message": str(error)}
            as_dict = getattr(error, "as_dict", None)
            if as_dict is not None:
                payload.update(as_dict())
            print(json.dumps({"error": payload}, indent=2))
        else:
            print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
