"""Naive Dewey numbering (Tatarinov et al. [19], without gaps).

A node's label is the tuple of 1-based sibling ordinals on its root
path.  Structural relations are trivial (lexicographic order, prefix
ancestorship) but an insertion at position *i* renumbers every later
sibling — and, because the ordinal is a label *prefix* of the whole
subtree, every node inside those siblings' subtrees too.
"""

from __future__ import annotations

from repro.errors import LabelError
from repro.numbering.base import NumberingBaseline, SimNode, SimTree


class DeweyBaseline(NumberingBaseline):
    """Ordinal-tuple labels with sibling renumbering on insert."""

    name = "dewey"

    def __init__(self, tree: SimTree) -> None:
        super().__init__(tree)
        self._labels: dict[int, tuple[int, ...]] = {}

    # -- labelling ---------------------------------------------------------

    def load(self) -> None:
        self._labels.clear()
        self._label_subtree(self.tree.root, ())

    def _label_subtree(self, node: SimNode,
                       prefix: tuple[int, ...]) -> int:
        """(Re)label a subtree; returns how many labels were written."""
        written = 1
        self._labels[node.node_id] = prefix
        for ordinal, child in enumerate(node.children, start=1):
            written += self._label_subtree(child, prefix + (ordinal,))
        return written

    def on_insert(self, node: SimNode) -> None:
        parent = node.parent
        if parent is None:
            raise LabelError("cannot insert a second root")
        index = parent.children.index(node)
        prefix = self._labels[parent.node_id]
        self._labels[node.node_id] = prefix + (index + 1,)
        # Renumber every following sibling subtree: ordinals shifted.
        for ordinal in range(index + 1, len(parent.children)):
            sibling = parent.children[ordinal]
            self.note_relabels(self._label_subtree(
                sibling, prefix + (ordinal + 1,)))

    def on_delete(self, node: SimNode) -> None:
        parent = node.parent
        if parent is None:
            raise LabelError("node already detached")
        index = parent.children.index(node)
        for stale in node.iter_subtree():
            self._labels.pop(stale.node_id, None)
        prefix = self._labels[parent.node_id]
        # Siblings after the gap shift down by one.
        for ordinal in range(index + 1, len(parent.children)):
            sibling = parent.children[ordinal]
            self.note_relabels(self._label_subtree(
                sibling, prefix + (ordinal,)))

    # -- relations -----------------------------------------------------------

    def label(self, node: SimNode) -> tuple[int, ...]:
        return self._labels[node.node_id]

    def before(self, a: SimNode, b: SimNode) -> bool:
        return self.label(a) < self.label(b)

    def is_ancestor(self, a: SimNode, b: SimNode) -> bool:
        la, lb = self.label(a), self.label(b)
        return len(la) < len(lb) and lb[:len(la)] == la

    def label_bytes(self, node: SimNode) -> int:
        # Four bytes per ordinal, the common packed representation.
        return 4 * len(self.label(node))
