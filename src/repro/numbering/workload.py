"""Update workloads over numbering schemes — the Proposition 1 harness.

A workload is a reproducible random sequence of subtree insertions and
deletions applied to one :class:`~repro.numbering.base.SimTree` that
every scheme labels independently.  After each operation the runner
cross-checks a sample of label-derived relations against the structural
ground truth, then reports the metrics the NID benchmark prints:
relabels per operation and label-size growth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.numbering.base import NumberingBaseline, SimNode, SimTree


@dataclass
class WorkloadStats:
    """Outcome of one scheme under one workload."""

    scheme: str
    operations: int = 0
    inserts: int = 0
    deletes: int = 0
    relabels: int = 0
    max_label_bytes: int = 0
    total_label_bytes: int = 0
    checks: int = 0
    node_count: int = 0

    @property
    def relabels_per_op(self) -> float:
        return self.relabels / self.operations if self.operations else 0.0

    @property
    def mean_label_bytes(self) -> float:
        if not self.node_count:
            return 0.0
        return self.total_label_bytes / self.node_count


def structural_before(a: SimNode, b: SimNode) -> bool:
    """Ground-truth document order by root-path comparison."""
    def path(node: SimNode) -> list[int]:
        out = []
        while node.parent is not None:
            out.append(node.parent.children.index(node))
            node = node.parent
        out.reverse()
        return out
    return path(a) < path(b)


def structural_is_ancestor(a: SimNode, b: SimNode) -> bool:
    node = b.parent
    while node is not None:
        if node is a:
            return True
        node = node.parent
    return False


class UpdateWorkload:
    """A reproducible insert/delete sequence applied to one scheme."""

    def __init__(self, operations: int = 200, seed: int = 0,
                 insert_bias: float = 0.7, verify_samples: int = 8,
                 initial_depth: int = 3, initial_fanout: int = 4) -> None:
        self.operations = operations
        self.seed = seed
        self.insert_bias = insert_bias
        self.verify_samples = verify_samples
        self.initial_depth = initial_depth
        self.initial_fanout = initial_fanout

    def run(self, make_scheme: Callable[[SimTree], NumberingBaseline],
            verify: bool = True) -> WorkloadStats:
        """Apply the workload to a fresh tree labelled by *make_scheme*."""
        rng = random.Random(self.seed)
        tree = SimTree()
        tree.build_uniform(self.initial_depth, self.initial_fanout)
        scheme = make_scheme(tree)
        scheme.load()
        stats = WorkloadStats(scheme=scheme.name)

        for _ in range(self.operations):
            nodes = tree.document_order()
            do_insert = (rng.random() < self.insert_bias
                         or len(nodes) < 4)
            if do_insert:
                parent = rng.choice(nodes)
                index = rng.randint(0, len(parent.children))
                node = tree.insert(parent, index)
                scheme.on_insert(node)
                stats.inserts += 1
            else:
                candidates = [n for n in nodes if n.parent is not None]
                victim = rng.choice(candidates)
                scheme.on_delete(victim)
                tree.delete(victim)
                stats.deletes += 1
            stats.operations += 1
            if verify:
                stats.checks += self._verify(rng, tree, scheme)

        stats.relabels = scheme.relabel_count
        stats.node_count = tree.size()
        stats.max_label_bytes = scheme.max_label_bytes()
        stats.total_label_bytes = scheme.total_label_bytes()
        return stats

    def _verify(self, rng: random.Random, tree: SimTree,
                scheme: NumberingBaseline) -> int:
        """Cross-check label relations against structure on a sample."""
        nodes = tree.document_order()
        checks = 0
        for _ in range(self.verify_samples):
            a, b = rng.choice(nodes), rng.choice(nodes)
            if a is b:
                continue
            expected = structural_before(a, b)
            actual = scheme.before(a, b)
            if expected != actual:
                raise AssertionError(
                    f"{scheme.name}: order of {a} vs {b} wrong "
                    f"(expected {expected})")
            if structural_is_ancestor(a, b) != scheme.is_ancestor(a, b):
                raise AssertionError(
                    f"{scheme.name}: ancestorship of {a} vs {b} wrong")
            checks += 1
        return checks
