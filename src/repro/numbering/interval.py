"""Tight pre/post interval numbering (Li & Moon style [12]).

Each node carries an interval ``(start, end)`` assigned by one
depth-first pass: ``start`` is the preorder rank and ``end`` the
largest rank in the subtree.  Document order compares ``start``,
ancestorship is interval containment — both O(1), the fastest
relations of the three schemes.  The price is updates: with tight
(gap-free) intervals an insertion renumbers every node whose rank
shifts, O(n) in the worst case.
"""

from __future__ import annotations

from repro.errors import LabelError
from repro.numbering.base import NumberingBaseline, SimNode, SimTree


class IntervalBaseline(NumberingBaseline):
    """(start, end) interval labels with global renumbering."""

    name = "interval"

    def __init__(self, tree: SimTree) -> None:
        super().__init__(tree)
        self._intervals: dict[int, tuple[int, int]] = {}

    # -- labelling ---------------------------------------------------------

    def load(self) -> None:
        self._intervals.clear()
        self._renumber(initial=True)

    def _renumber(self, initial: bool = False) -> None:
        """One depth-first pass assigning tight intervals; counts every
        changed existing label into ``relabel_count``."""
        counter = 0

        def visit(node: SimNode) -> int:
            nonlocal counter
            start = counter
            counter += 1
            for child in node.children:
                visit(child)
            end = counter - 1
            old = self._intervals.get(node.node_id)
            new = (start, end)
            if old != new:
                if old is not None and not initial:
                    self.note_relabels(1)
                self._intervals[node.node_id] = new
            return end

        visit(self.tree.root)

    def on_insert(self, node: SimNode) -> None:
        # Tight intervals leave no gap to place the new label in; the
        # classic scheme renumbers (here: the whole document pass, which
        # touches exactly the shifted suffix).
        self._renumber()

    def on_delete(self, node: SimNode) -> None:
        for stale in node.iter_subtree():
            self._intervals.pop(stale.node_id, None)
        # Deletion leaves gaps, which intervals tolerate: containment
        # and order stay valid, so no renumbering is required.

    # -- relations -----------------------------------------------------------

    def interval(self, node: SimNode) -> tuple[int, int]:
        try:
            return self._intervals[node.node_id]
        except KeyError:
            raise LabelError(f"{node!r} has no interval") from None

    def before(self, a: SimNode, b: SimNode) -> bool:
        return self.interval(a)[0] < self.interval(b)[0]

    def is_ancestor(self, a: SimNode, b: SimNode) -> bool:
        start_a, end_a = self.interval(a)
        start_b, end_b = self.interval(b)
        return start_a < start_b and end_b <= end_a

    def label_bytes(self, node: SimNode) -> int:
        return 8  # two packed 32-bit ranks
