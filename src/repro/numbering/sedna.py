"""Adapter putting the paper's Sedna scheme behind the baseline API."""

from __future__ import annotations

from repro.errors import LabelError
from repro.storage.labels import (
    NidLabel,
    NumberingScheme,
    before as label_before,
    is_ancestor as label_is_ancestor,
)
from repro.numbering.base import NumberingBaseline, SimNode, SimTree


class SednaAdapter(NumberingBaseline):
    """Gap-based Dewey labels (Section 9.3): updates never relabel."""

    name = "sedna"

    def __init__(self, tree: SimTree, base: int = 256) -> None:
        super().__init__(tree)
        self._scheme = NumberingScheme(base)
        self._labels: dict[int, NidLabel] = {}

    # -- labelling ---------------------------------------------------------

    def load(self) -> None:
        self._labels.clear()
        root_label = self._scheme.root_label()
        self._labels[self.tree.root.node_id] = root_label
        self._load_children(self.tree.root, root_label)

    def _load_children(self, node: SimNode, label: NidLabel) -> None:
        labels = self._scheme.child_labels(label, len(node.children))
        for child, child_label in zip(node.children, labels):
            self._labels[child.node_id] = child_label
            self._load_children(child, child_label)

    def label(self, node: SimNode) -> NidLabel:
        try:
            return self._labels[node.node_id]
        except KeyError:
            raise LabelError(f"{node!r} has no label") from None

    def on_insert(self, node: SimNode) -> None:
        parent = node.parent
        if parent is None:
            raise LabelError("cannot insert a second root")
        index = parent.children.index(node)
        left = parent.children[index - 1] if index > 0 else None
        right = (parent.children[index + 1]
                 if index + 1 < len(parent.children) else None)
        label = self._scheme.child_label(
            self.label(parent),
            self.label(left) if left is not None else None,
            self.label(right) if right is not None else None)
        self._labels[node.node_id] = label
        self._load_children(node, label)
        # relabel_count untouched: Proposition 1.

    def on_delete(self, node: SimNode) -> None:
        for stale in node.iter_subtree():
            self._labels.pop(stale.node_id, None)

    # -- relations -----------------------------------------------------------

    def before(self, a: SimNode, b: SimNode) -> bool:
        return label_before(self.label(a), self.label(b))

    def is_ancestor(self, a: SimNode, b: SimNode) -> bool:
        return label_is_ancestor(self.label(a), self.label(b))

    def label_bytes(self, node: SimNode) -> int:
        return len(self.label(node))  # one byte per Ω symbol
