"""Numbering-scheme baselines and the Proposition 1 update harness."""

from repro.numbering.base import NumberingBaseline, SimNode, SimTree
from repro.numbering.dewey import DeweyBaseline
from repro.numbering.interval import IntervalBaseline
from repro.numbering.sedna import SednaAdapter
from repro.numbering.workload import (
    UpdateWorkload,
    WorkloadStats,
    structural_before,
    structural_is_ancestor,
)

__all__ = [
    "DeweyBaseline",
    "IntervalBaseline",
    "NumberingBaseline",
    "SednaAdapter",
    "SimNode",
    "SimTree",
    "UpdateWorkload",
    "WorkloadStats",
    "structural_before",
    "structural_is_ancestor",
]
