"""Common infrastructure for comparing numbering schemes.

The paper's Section 9.3 cites several label families ([1, 5, 12, 19,
22]); we implement the two classic baselines the literature compares
Dewey-style schemes against — naive Dewey ordinals (relabel siblings on
insert, [19]) and tight pre/post intervals (global renumber, [12]) —
behind one interface, plus the adapter for the paper's gap-based Sedna
scheme.  A shared :class:`SimTree` provides the abstract ordered tree
the schemes label.
"""

from __future__ import annotations

from typing import Iterator

from repro import obs
from repro.errors import LabelError


class SimNode:
    """A node of the abstract ordered tree used by the comparisons."""

    __slots__ = ("node_id", "parent", "children")

    def __init__(self, node_id: int, parent: "SimNode | None") -> None:
        self.node_id = node_id
        self.parent = parent
        self.children: list[SimNode] = []

    def iter_subtree(self) -> Iterator["SimNode"]:
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def subtree_size(self) -> int:
        return sum(1 for _ in self.iter_subtree())

    def __repr__(self) -> str:
        return f"SimNode#{self.node_id}"


class SimTree:
    """A mutable ordered tree; schemes maintain labels for its nodes."""

    def __init__(self) -> None:
        self._next_id = 0
        self.root = self._new_node(None)

    def _new_node(self, parent: SimNode | None) -> SimNode:
        node = SimNode(self._next_id, parent)
        self._next_id += 1
        return node

    def insert(self, parent: SimNode, index: int) -> SimNode:
        """Structurally insert a new child; labelling is the scheme's
        job (this method does not touch labels)."""
        if not 0 <= index <= len(parent.children):
            raise LabelError(f"index {index} out of range")
        node = self._new_node(parent)
        parent.children.insert(index, node)
        return node

    def delete(self, node: SimNode) -> None:
        if node.parent is None:
            raise LabelError("cannot delete the root")
        node.parent.children.remove(node)
        node.parent = None

    def size(self) -> int:
        return self.root.subtree_size()

    def document_order(self) -> list[SimNode]:
        return list(self.root.iter_subtree())

    def build_uniform(self, depth: int, fanout: int) -> None:
        """Populate with a uniform (depth, fanout) tree below the root."""
        def grow(node: SimNode, level: int) -> None:
            if level == 0:
                return
            for index in range(fanout):
                child = self.insert(node, index)
                grow(child, level - 1)
        grow(self.root, depth)


class NumberingBaseline:
    """Interface every scheme under comparison implements.

    ``relabel_count`` accumulates how many *existing* labels changed
    across all updates — the Proposition 1 metric.
    """

    name = "abstract"

    def __init__(self, tree: SimTree) -> None:
        self.tree = tree
        self.relabel_count = 0
        if obs.RECORDING:
            # Materialize the per-scheme relabel counter at zero so a
            # scheme that never relabels (Proposition 1) still reports
            # an explicit 0 in every metrics snapshot.
            obs.REGISTRY.counter(f"numbering.relabels.{self.name}")

    def note_relabels(self, count: int) -> None:
        """Record *count* existing labels changed by one update — the
        Proposition 1 metric, mirrored into the metrics registry."""
        if count <= 0:
            return
        self.relabel_count += count
        if obs.RECORDING:
            obs.REGISTRY.counter(
                f"numbering.relabels.{self.name}").inc(count)

    def load(self) -> None:
        """Assign initial labels to the whole tree."""
        raise NotImplementedError

    def on_insert(self, node: SimNode) -> None:
        """Label a just-inserted node (and relabel whatever the scheme
        requires, counting into ``relabel_count``)."""
        raise NotImplementedError

    def on_delete(self, node: SimNode) -> None:
        """Forget the labels of a removed subtree (and relabel if the
        scheme requires it)."""
        raise NotImplementedError

    def before(self, a: SimNode, b: SimNode) -> bool:
        """Document order from labels alone."""
        raise NotImplementedError

    def is_ancestor(self, a: SimNode, b: SimNode) -> bool:
        """Ancestorship from labels alone."""
        raise NotImplementedError

    def label_bytes(self, node: SimNode) -> int:
        """Size of the node's label, for growth measurements."""
        raise NotImplementedError

    def total_label_bytes(self) -> int:
        return sum(self.label_bytes(node)
                   for node in self.tree.document_order())

    def max_label_bytes(self) -> int:
        return max(self.label_bytes(node)
                   for node in self.tree.document_order())
