"""The sequence type constructor ``Seq(T)`` of Section 4.

The paper equips every sequence type with three operations: ``|s|`` (the
length), ``s1 + s2`` (concatenation) and ``s[i]`` (the *i*-th item).  As in
XQuery, item indexing is **1-based**.  Sequences are immutable and flat
(a sequence never contains another sequence), matching the XDM.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Iterator, TypeVar

T = TypeVar("T")


class Sequence(Generic[T]):
    """An immutable, flat, ordered sequence of items.

    ``Sequence`` intentionally does not subclass ``tuple``: the formal
    model gives it exactly three operations plus iteration, and keeping
    the surface small keeps the algebra honest.  Nested sequences are
    flattened on construction, as the XDM requires.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[T] = ()) -> None:
        flat: list[T] = []
        for item in items:
            if isinstance(item, Sequence):
                flat.extend(item)
            else:
                flat.append(item)
        self._items: tuple[T, ...] = tuple(flat)

    @classmethod
    def empty(cls) -> "Sequence[T]":
        """The empty sequence ``()``."""
        return _EMPTY

    @classmethod
    def of(cls, *items: T) -> "Sequence[T]":
        """Build a sequence from positional items."""
        return cls(items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __add__(self, other: "Sequence[T]") -> "Sequence[T]":
        if not isinstance(other, Sequence):
            return NotImplemented
        return Sequence(self._items + other._items)

    def __getitem__(self, index: int) -> T:
        """1-based item access, per the paper's ``s[i]`` operation."""
        if not isinstance(index, int):
            raise TypeError("sequence index must be an integer")
        if index < 1 or index > len(self._items):
            raise IndexError(
                f"index {index} out of range 1..{len(self._items)}")
        return self._items[index - 1]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Sequence):
            return self._items == other._items
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Sequence", self._items))

    def __repr__(self) -> str:
        inner = ", ".join(repr(item) for item in self._items)
        return f"({inner})"

    # Convenience beyond the paper's three operations -------------------

    @property
    def items(self) -> tuple[T, ...]:
        """The underlying items as a plain tuple (0-based)."""
        return self._items

    def head(self) -> T:
        """The first item; raises ``IndexError`` on the empty sequence."""
        return self[1]

    def is_empty(self) -> bool:
        return not self._items

    def map(self, fn: Callable[[T], object]) -> "Sequence":
        return Sequence(fn(item) for item in self._items)


_EMPTY: Sequence = Sequence()


def seq(*items: T) -> Sequence[T]:
    """Shorthand constructor: ``seq(1, 2) == Sequence((1, 2))``."""
    return Sequence(items)
