"""The simple type system of Section 4.

The package implements the paper's basic-type layer: the full builtin
type hierarchy rooted at ``xs:anyType``, derivation by restriction with
constraining facets, list and union types, and the sequence type
constructor ``Seq(T)``.
"""

from repro.xsdtypes.base import (
    ANY_ATOMIC_TYPE,
    ANY_SIMPLE_TYPE,
    ANY_TYPE,
    UNTYPED_ATOMIC,
    AtomicType,
    AtomicValue,
    ListType,
    SimpleType,
    TypeDefinition,
    UnionType,
)
from repro.xsdtypes.facets import (
    EnumerationFacet,
    Facet,
    FractionDigitsFacet,
    LengthFacet,
    MaxExclusiveFacet,
    MaxInclusiveFacet,
    MaxLengthFacet,
    MinExclusiveFacet,
    MinInclusiveFacet,
    MinLengthFacet,
    PatternFacet,
    TotalDigitsFacet,
    WhiteSpaceFacet,
)
from repro.xsdtypes.registry import (
    BUILTINS,
    TypeRegistry,
    builtin,
    builtin_registry,
    xdt_type,
)
from repro.xsdtypes.sequence import Sequence, seq
from repro.xsdtypes.values import (
    Binary,
    Duration,
    IndeterminateOrder,
    Temporal,
    days_from_civil,
    days_in_month,
    is_leap_year,
)

__all__ = [
    "ANY_ATOMIC_TYPE",
    "ANY_SIMPLE_TYPE",
    "ANY_TYPE",
    "AtomicType",
    "AtomicValue",
    "BUILTINS",
    "Binary",
    "Duration",
    "EnumerationFacet",
    "Facet",
    "FractionDigitsFacet",
    "IndeterminateOrder",
    "LengthFacet",
    "ListType",
    "MaxExclusiveFacet",
    "MaxInclusiveFacet",
    "MaxLengthFacet",
    "MinExclusiveFacet",
    "MinInclusiveFacet",
    "MinLengthFacet",
    "PatternFacet",
    "Sequence",
    "SimpleType",
    "Temporal",
    "TotalDigitsFacet",
    "TypeDefinition",
    "TypeRegistry",
    "UNTYPED_ATOMIC",
    "UnionType",
    "WhiteSpaceFacet",
    "builtin",
    "builtin_registry",
    "days_from_civil",
    "days_in_month",
    "is_leap_year",
    "seq",
    "xdt_type",
]
