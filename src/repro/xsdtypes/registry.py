"""The type registry: name → type lookup plus hierarchy queries.

A registry holds every builtin type of Section 4 and any user-defined
simple types.  Schemas consult it to resolve ``SimpleTypeName``s and the
conformance checker uses it to compute typed values.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import TypeSystemError
from repro.xmlio.qname import XSD_NAMESPACE, QName, xdt, xsd
from repro.xsdtypes.base import (
    ANY_ATOMIC_TYPE,
    ANY_SIMPLE_TYPE,
    ANY_TYPE,
    UNTYPED_ATOMIC,
    AtomicType,
    SimpleType,
    TypeDefinition,
)
from repro.xsdtypes.derived import build_derived_types
from repro.xsdtypes.facets import WhiteSpaceFacet
from repro.xsdtypes.primitives import PRIMITIVE_SPECS


class TypeRegistry:
    """A mutable mapping of qualified names to type definitions."""

    def __init__(self) -> None:
        self._types: dict[QName, TypeDefinition] = {}

    # -- population ------------------------------------------------------

    def register(self, type_: TypeDefinition) -> TypeDefinition:
        """Add a named type; re-registering the same name is an error."""
        if type_.name is None:
            raise TypeSystemError("cannot register an anonymous type")
        if type_.name in self._types:
            raise TypeSystemError(
                f"type {type_.name.lexical} is already registered")
        self._types[type_.name] = type_
        return type_

    def clone(self) -> "TypeRegistry":
        """A shallow copy; used to extend the builtins per schema."""
        copy = TypeRegistry()
        copy._types = dict(self._types)
        return copy

    # -- lookup ------------------------------------------------------------

    def __contains__(self, name: QName) -> bool:
        return name in self._types

    def lookup(self, name: QName) -> TypeDefinition:
        try:
            return self._types[name]
        except KeyError:
            raise TypeSystemError(
                f"unknown type {name.lexical}") from None

    def lookup_simple(self, name: QName) -> SimpleType:
        type_ = self.lookup(name)
        if not isinstance(type_, SimpleType):
            raise TypeSystemError(f"{name.lexical} is not a simple type")
        return type_

    def lookup_local(self, local: str) -> TypeDefinition:
        """Look up a builtin by its local name in the XSD namespace."""
        return self.lookup(QName(XSD_NAMESPACE, local))

    def simple(self, local: str) -> SimpleType:
        """Shorthand: the builtin simple type ``xs:<local>``."""
        return self.lookup_simple(QName(XSD_NAMESPACE, local))

    def names(self) -> Iterator[QName]:
        return iter(self._types)

    def __len__(self) -> int:
        return len(self._types)

    # -- hierarchy queries ---------------------------------------------------

    @staticmethod
    def common_ancestor(a: TypeDefinition,
                        b: TypeDefinition) -> TypeDefinition:
        """The most derived type both *a* and *b* derive from."""
        ancestors = set(id(t) for t in a.ancestry())
        for candidate in b.ancestry():
            if id(candidate) in ancestors:
                return candidate
        raise TypeSystemError(
            "types share no ancestor (foreign hierarchy?)")


def builtin_registry() -> TypeRegistry:
    """Create a registry containing every Section 4 builtin type."""
    registry = TypeRegistry()
    registry.register(ANY_TYPE)
    registry.register(ANY_SIMPLE_TYPE)
    registry.register(ANY_ATOMIC_TYPE)
    registry.register(UNTYPED_ATOMIC)

    primitives: dict[QName, SimpleType] = {}
    for local, (parser, canonicalizer) in PRIMITIVE_SPECS.items():
        facets = ()
        if local == "string":
            facets = (WhiteSpaceFacet("preserve"),)
        primitive = AtomicType(
            xsd(local), ANY_ATOMIC_TYPE, facets=facets,
            parser=parser, canonicalizer=canonicalizer, primitive=True)
        primitives[primitive.name] = primitive
        registry.register(primitive)

    for derived in build_derived_types(primitives).values():
        registry.register(derived)
    return registry


#: A single shared registry of builtins; treat as read-only.
BUILTINS = builtin_registry()


def builtin(local: str) -> SimpleType:
    """The builtin simple type ``xs:<local>`` from the shared registry."""
    return BUILTINS.simple(local)


def xdt_type(local: str) -> SimpleType:
    """A builtin from the xdt namespace (``anyAtomicType``...)."""
    return BUILTINS.lookup_simple(xdt(local))
