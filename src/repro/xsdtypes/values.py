"""Value classes for the non-trivial XSD value spaces.

The simple types whose value space is not a plain Python type (the
date/time family, durations, binary data) get small immutable value
classes here.  Each class defines equality and ordering exactly as the
XML Schema datatypes specification does, including the timezone
normalization of temporal values.

The day-number arithmetic uses the proleptic Gregorian calendar via the
classic *days-from-civil* algorithm, so years outside the range of
``datetime`` (including negative years) work fine.
"""

from __future__ import annotations

from dataclasses import dataclass
from decimal import Decimal
from functools import total_ordering

from repro.errors import TypeSystemError


def days_from_civil(year: int, month: int, day: int) -> int:
    """Day number of a proleptic-Gregorian date (day 0 = 1970-03-01 era).

    Negative years are astronomical (year 0 = 1 BCE), which matches the
    XSD 1.1 convention this library adopts.
    """
    year -= month <= 2
    era = (year if year >= 0 else year - 399) // 400
    yoe = year - era * 400
    doy = (153 * (month + (-3 if month > 2 else 9)) + 2) // 5 + day - 1
    doe = yoe * 365 + yoe // 4 - yoe // 100 + doy
    return era * 146097 + doe - 719468


def is_leap_year(year: int) -> bool:
    """Gregorian leap-year rule."""
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def days_in_month(year: int, month: int) -> int:
    """Number of days in *month* of *year*."""
    if month == 2:
        return 29 if is_leap_year(year) else 28
    return 31 if month in (1, 3, 5, 7, 8, 10, 12) else 30


class IndeterminateOrder(TypeSystemError):
    """Two values of a partially ordered value space are incomparable."""


@dataclass(frozen=True)
class Temporal:
    """A point (or recurring point) on the XSD timeline.

    One class covers the whole seven-member date/time family; the
    ``kind`` records which components are meaningful (``dateTime``,
    ``date``, ``time``, ``gYearMonth``, ``gYear``, ``gMonthDay``,
    ``gDay``, ``gMonth``).  Missing components default to the reference
    values the XSD spec uses for ordering.  ``tz_minutes`` is ``None``
    for an absent timezone.
    """

    kind: str
    year: int = 1
    month: int = 1
    day: int = 1
    hour: int = 0
    minute: int = 0
    second: Decimal = Decimal(0)
    tz_minutes: int | None = None

    def _instant(self, default_tz: int = 0) -> Decimal:
        """Seconds on the timeline with timezone applied."""
        tz = self.tz_minutes if self.tz_minutes is not None else default_tz
        days = days_from_civil(self.year, self.month, self.day)
        seconds = (Decimal(days) * 86400
                   + self.hour * 3600 + self.minute * 60 + self.second)
        return seconds - tz * 60

    def _check_comparable(self, other: "Temporal") -> None:
        if not isinstance(other, Temporal):
            raise TypeError(f"cannot compare Temporal with {type(other)!r}")
        if self.kind != other.kind:
            raise IndeterminateOrder(
                f"cannot order {self.kind} against {other.kind}")

    def __lt__(self, other: "Temporal") -> bool:
        self._check_comparable(other)
        if (self.tz_minutes is None) == (other.tz_minutes is None):
            return self._instant() < other._instant()
        # One value is zoned, the other is not: per XSD, the order is
        # determinate only when it holds for every timezone within
        # +/- 14 hours.
        if self._instant(default_tz=-14 * 60) < other._instant(
                default_tz=-14 * 60) and self._instant(
                default_tz=14 * 60) < other._instant(default_tz=14 * 60):
            return True
        if self._instant(default_tz=-14 * 60) >= other._instant(
                default_tz=-14 * 60) and self._instant(
                default_tz=14 * 60) >= other._instant(default_tz=14 * 60):
            return False
        raise IndeterminateOrder(
            f"order of {self} and {other} depends on the implicit timezone")

    def __le__(self, other: "Temporal") -> bool:
        return self == other or self < other

    def __gt__(self, other: "Temporal") -> bool:
        self._check_comparable(other)
        return other < self

    def __ge__(self, other: "Temporal") -> bool:
        return self == other or other < self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Temporal):
            return NotImplemented
        if self.kind != other.kind:
            return False
        if (self.tz_minutes is None) != (other.tz_minutes is None):
            return False
        return self._instant() == other._instant()

    def __hash__(self) -> int:
        return hash((self.kind, self.tz_minutes is None, self._instant()))

    def __repr__(self) -> str:
        return f"Temporal({self.kind}, {self.canonical()!r})"

    def canonical(self) -> str:
        """The canonical lexical representation."""
        parts: list[str] = []
        if self.kind in ("dateTime", "date", "gYearMonth", "gYear"):
            year = f"{self.year:05d}" if self.year < 0 else f"{self.year:04d}"
            parts.append(year)
            if self.kind != "gYear":
                parts.append(f"-{self.month:02d}")
                if self.kind in ("dateTime", "date"):
                    parts.append(f"-{self.day:02d}")
        elif self.kind == "gMonthDay":
            parts.append(f"--{self.month:02d}-{self.day:02d}")
        elif self.kind == "gMonth":
            parts.append(f"--{self.month:02d}")
        elif self.kind == "gDay":
            parts.append(f"---{self.day:02d}")
        if self.kind in ("dateTime", "time"):
            if self.kind == "dateTime":
                parts.append("T")
            whole = int(self.second)
            frac = self.second - whole
            sec = f"{whole:02d}"
            if frac:
                sec += str(frac.normalize())[1:]
            parts.append(f"{self.hour:02d}:{self.minute:02d}:{sec}")
        if self.tz_minutes is not None:
            if self.tz_minutes == 0:
                parts.append("Z")
            else:
                sign = "-" if self.tz_minutes < 0 else "+"
                mins = abs(self.tz_minutes)
                parts.append(f"{sign}{mins // 60:02d}:{mins % 60:02d}")
        return "".join(parts)


@total_ordering
@dataclass(frozen=True)
class Duration:
    """An ``xs:duration`` value: a (months, seconds) pair.

    The value space is partially ordered; comparing a pure year-month
    duration with a pure day-time duration of overlapping magnitude
    raises :class:`IndeterminateOrder`.  Following XQuery operators, a
    duration is deterministically ordered when the result is the same
    for the four XSD reference starting instants.
    """

    months: int = 0
    seconds: Decimal = Decimal(0)

    #: The four reference (year, month) starting points of XSD 3.2.6.2.
    _REFERENCE_STARTS = ((1696, 9), (1697, 2), (1903, 3), (1903, 7))

    def _end_instants(self) -> tuple[Decimal, ...]:
        instants = []
        for year, month in self._REFERENCE_STARTS:
            total_month = (year * 12 + (month - 1)) + self.months
            end_year, end_month = divmod(total_month, 12)
            end_month += 1
            days = days_from_civil(end_year, end_month, 1)
            instants.append(Decimal(days) * 86400 + self.seconds)
        return tuple(instants)

    def __lt__(self, other: "Duration") -> bool:
        if not isinstance(other, Duration):
            return NotImplemented
        mine = self._end_instants()
        theirs = other._end_instants()
        if all(a < b for a, b in zip(mine, theirs)):
            return True
        if all(a >= b for a, b in zip(mine, theirs)):
            return False
        raise IndeterminateOrder(
            f"durations {self} and {other} are incomparable")

    def canonical(self) -> str:
        """Canonical lexical form, e.g. ``P1Y2M3DT4H5M6S``."""
        if not self.months and not self.seconds:
            return "PT0S"
        sign = ""
        months, seconds = self.months, self.seconds
        if months < 0 or seconds < 0:
            if months > 0 or seconds > 0:
                raise TypeSystemError(
                    "duration components must share a sign")
            sign, months, seconds = "-", -months, -seconds
        years, months = divmod(months, 12)
        days, rem = divmod(seconds, 86400)
        hours, rem = divmod(rem, 3600)
        minutes, secs = divmod(rem, 60)
        out = [sign, "P"]
        if years:
            out.append(f"{years}Y")
        if months:
            out.append(f"{months}M")
        if days:
            out.append(f"{int(days)}D")
        if hours or minutes or secs:
            out.append("T")
            if hours:
                out.append(f"{int(hours)}H")
            if minutes:
                out.append(f"{int(minutes)}M")
            if secs:
                secs = secs.normalize()
                out.append(f"{secs}S")
        return "".join(out)

    def __repr__(self) -> str:
        return f"Duration({self.canonical()!r})"


@dataclass(frozen=True)
class Binary:
    """Value of ``xs:hexBinary`` / ``xs:base64Binary``: an octet string.

    The two types share a value space of octet sequences but have
    different lexical spaces, so the value keeps only the bytes.
    """

    octets: bytes

    def __len__(self) -> int:
        return len(self.octets)

    def hex(self) -> str:
        return self.octets.hex().upper()

    def __repr__(self) -> str:
        return f"Binary({self.hex()})"
