"""Core machinery of the simple-type system (Section 4).

The paper arranges types in a hierarchy rooted at ``xs:anyType`` with
``xs:anySimpleType`` below it, ``xdt:anyAtomicType`` below that, and the
primitive atomic types below that.  This module provides:

* :class:`TypeDefinition` — common base of every type (simple or not),
* :class:`SimpleType` and its three varieties
  (:class:`AtomicType`, :class:`ListType`, :class:`UnionType`),
* :class:`AtomicValue` — a (value, type) pair, the item of typed values,
* the special types ``ANY_TYPE``, ``ANY_SIMPLE_TYPE``,
  ``ANY_ATOMIC_TYPE`` and ``UNTYPED_ATOMIC``.

Parsing a literal against a type runs the full XSD pipeline: whitespace
normalization, pattern facets, the primitive's lexical mapping, then the
value facets of every derivation step from the primitive down.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.errors import FacetError, LexicalError, TypeSystemError
from repro.xmlio.chars import collapse_whitespace, replace_whitespace
from repro.xmlio.qname import QName, xdt, xsd
from repro.xsdtypes.facets import Facet, PatternFacet, WhiteSpaceFacet


class TypeDefinition:
    """A named or anonymous type in the Section 4 hierarchy."""

    def __init__(self, name: QName | None,
                 base: "TypeDefinition | None") -> None:
        self.name = name
        self.base = base

    @property
    def type_name(self) -> str:
        """Readable name for diagnostics (``<anonymous>`` if unnamed)."""
        return self.name.lexical if self.name else "<anonymous>"

    def is_derived_from(self, other: "TypeDefinition") -> bool:
        """Reflexive, transitive derivation check."""
        current: TypeDefinition | None = self
        while current is not None:
            if current is other:
                return True
            current = current.base
        return False

    def ancestry(self) -> Iterator["TypeDefinition"]:
        """This type followed by its bases, up to ``xs:anyType``."""
        current: TypeDefinition | None = self
        while current is not None:
            yield current
            current = current.base

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.type_name})"


class AtomicValue:
    """A typed atomic value: the pairing of a value with its atomic type.

    Instances populate the ``typed-value`` accessor sequences of
    Section 5.  Equality compares both the value and the type.
    """

    __slots__ = ("value", "type")

    def __init__(self, value: object, type_: "SimpleType") -> None:
        self.value = value
        self.type = type_

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AtomicValue):
            return NotImplemented
        return self.value == other.value and self.type is other.type

    def __hash__(self) -> int:
        return hash((self.value, id(self.type)))

    def __repr__(self) -> str:
        return f"AtomicValue({self.value!r}, {self.type.type_name})"


class SimpleType(TypeDefinition):
    """Common behaviour of atomic, list and union types."""

    variety = "abstract"

    def __init__(self, name: QName | None, base: TypeDefinition | None,
                 facets: Iterable[Facet] = ()) -> None:
        super().__init__(name, base)
        self.facets = tuple(facets)

    # -- whitespace -----------------------------------------------------

    def effective_whitespace(self) -> str:
        """The whitespace mode in force for this type (nearest facet wins)."""
        for ancestor in self.ancestry():
            if isinstance(ancestor, SimpleType):
                for facet in ancestor.facets:
                    if isinstance(facet, WhiteSpaceFacet):
                        return facet.mode
        return "collapse"

    def normalize(self, literal: str) -> str:
        """Apply the effective whitespace facet to *literal*."""
        mode = self.effective_whitespace()
        if mode == "collapse":
            return collapse_whitespace(literal)
        if mode == "replace":
            return replace_whitespace(literal)
        return literal

    # -- derivation chain -----------------------------------------------

    def restriction_chain(self) -> list["SimpleType"]:
        """Simple types from the primitive (or variety root) down to self."""
        chain = [t for t in self.ancestry() if isinstance(t, SimpleType)]
        chain.reverse()
        return chain

    def _check_facets(self, value: object, literal: str) -> None:
        for step in self.restriction_chain():
            for facet in step.facets:
                if isinstance(facet, PatternFacet):
                    facet.check(value, literal)
                else:
                    facet.check(value, literal)

    # -- the public parsing API ------------------------------------------

    def parse(self, literal: str) -> object:
        """Map *literal* into the value space, enforcing all facets."""
        raise NotImplementedError

    def validate(self, literal: str) -> bool:
        """True iff *literal* is in the lexical space of this type."""
        try:
            self.parse(literal)
        except (LexicalError, FacetError):
            return False
        return True

    def typed_value(self, literal: str) -> tuple[AtomicValue, ...]:
        """The XDM typed value of *literal*: a sequence of atomic values."""
        raise NotImplementedError

    def canonical(self, value: object) -> str:
        """The canonical lexical representation of *value*."""
        raise NotImplementedError

    def primitive_type(self) -> "SimpleType | None":
        """The primitive ancestor of an atomic type, if any."""
        return None


class AtomicType(SimpleType):
    """An atomic type: a primitive or a restriction of an atomic type."""

    variety = "atomic"

    def __init__(self, name: QName | None, base: TypeDefinition | None,
                 facets: Iterable[Facet] = (),
                 parser: Callable[[str], object] | None = None,
                 canonicalizer: Callable[[object], str] | None = None,
                 primitive: bool = False) -> None:
        super().__init__(name, base, facets)
        self._parser = parser
        self._canonicalizer = canonicalizer
        self.is_primitive = primitive

    def primitive_type(self) -> "AtomicType | None":
        for ancestor in self.ancestry():
            if isinstance(ancestor, AtomicType) and ancestor.is_primitive:
                return ancestor
        return None

    def _lexical_parser(self) -> Callable[[str], object]:
        for ancestor in self.ancestry():
            if isinstance(ancestor, AtomicType) and ancestor._parser:
                return ancestor._parser
        raise TypeSystemError(
            f"type {self.type_name} has no lexical mapping")

    def parse(self, literal: str) -> object:
        normalized = self.normalize(literal)
        try:
            value = self._lexical_parser()(normalized)
        except LexicalError:
            raise
        except (ValueError, ArithmeticError) as exc:
            raise LexicalError(self.type_name, literal, str(exc)) from exc
        self._check_facets(value, normalized)
        return value

    def typed_value(self, literal: str) -> tuple[AtomicValue, ...]:
        return (AtomicValue(self.parse(literal), self),)

    def canonical(self, value: object) -> str:
        for ancestor in self.ancestry():
            if (isinstance(ancestor, AtomicType)
                    and ancestor._canonicalizer):
                return ancestor._canonicalizer(value)
        return str(value)

    def restrict(self, facets: Iterable[Facet],
                 name: QName | None = None) -> "AtomicType":
        """Derive a new atomic type from this one by restriction."""
        facets = tuple(facets)
        _check_whitespace_restriction(self, facets)
        return AtomicType(name, self, facets)


class ListType(SimpleType):
    """A list type: whitespace-separated items of an atomic/union type."""

    variety = "list"

    def __init__(self, name: QName | None, item_type: SimpleType,
                 facets: Iterable[Facet] = (),
                 base: TypeDefinition | None = None) -> None:
        if isinstance(item_type, ListType):
            raise TypeSystemError("list item type may not itself be a list")
        super().__init__(name, base, facets)
        self.item_type = item_type

    def effective_whitespace(self) -> str:
        return "collapse"

    def parse(self, literal: str) -> tuple[object, ...]:
        normalized = self.normalize(literal)
        items = normalized.split() if normalized else []
        value = tuple(self.item_type.parse(item) for item in items)
        self._check_facets(value, normalized)
        return value

    def typed_value(self, literal: str) -> tuple[AtomicValue, ...]:
        normalized = self.normalize(literal)
        items = normalized.split() if normalized else []
        out: list[AtomicValue] = []
        for item in items:
            out.extend(self.item_type.typed_value(item))
        self._check_facets(tuple(av.value for av in out), normalized)
        return tuple(out)

    def canonical(self, value: object) -> str:
        if not isinstance(value, tuple):
            raise TypeSystemError("list value must be a tuple")
        return " ".join(self.item_type.canonical(item) for item in value)

    def restrict(self, facets: Iterable[Facet],
                 name: QName | None = None) -> "ListType":
        derived = ListType(name, self.item_type, facets, base=self)
        return derived


class UnionType(SimpleType):
    """A union type: the first member accepting the literal wins."""

    variety = "union"

    def __init__(self, name: QName | None,
                 member_types: Iterable[SimpleType],
                 facets: Iterable[Facet] = (),
                 base: TypeDefinition | None = None) -> None:
        members = tuple(member_types)
        if not members:
            raise TypeSystemError("a union type needs at least one member")
        super().__init__(name, base, facets)
        self.member_types = members

    def effective_whitespace(self) -> str:
        # Whitespace handling is delegated to the matching member.
        return "preserve"

    def parse_with_member(self, literal: str) -> tuple[object, SimpleType]:
        """Parse and also report which member type matched."""
        for member in self.member_types:
            try:
                value = member.parse(literal)
            except (LexicalError, FacetError):
                continue
            self._check_facets(value, literal)
            return value, member
        raise LexicalError(self.type_name, literal,
                           "no union member accepts the literal")

    def parse(self, literal: str) -> object:
        value, _member = self.parse_with_member(literal)
        return value

    def typed_value(self, literal: str) -> tuple[AtomicValue, ...]:
        for member in self.member_types:
            try:
                result = member.typed_value(literal)
            except (LexicalError, FacetError):
                continue
            self._check_facets(
                result[0].value if len(result) == 1
                else tuple(av.value for av in result),
                literal)
            return result
        raise LexicalError(self.type_name, literal,
                           "no union member accepts the literal")

    def canonical(self, value: object) -> str:
        for member in self.member_types:
            try:
                text = member.canonical(value)
            except (TypeSystemError, ValueError, TypeError):
                continue
            if member.validate(text):
                return text
        raise TypeSystemError(
            f"value {value!r} fits no member of union {self.type_name}")

    def restrict(self, facets: Iterable[Facet],
                 name: QName | None = None) -> "UnionType":
        return UnionType(name, self.member_types, facets, base=self)


def _check_whitespace_restriction(base: SimpleType,
                                  facets: tuple[Facet, ...]) -> None:
    """A restriction may not loosen the whitespace facet."""
    base_mode = WhiteSpaceFacet(base.effective_whitespace())
    for facet in facets:
        if isinstance(facet, WhiteSpaceFacet):
            if not facet.at_least_as_strict_as(base_mode):
                raise FacetError(
                    f"whiteSpace may not be loosened from "
                    f"{base_mode.mode!r} to {facet.mode!r}")


# ----------------------------------------------------------------------
# The special types at the top of the hierarchy (Section 4).

#: ``xs:anyType`` — the base of every type.
ANY_TYPE = TypeDefinition(xsd("anyType"), None)

#: ``xs:anySimpleType`` — the base of all simple types.
ANY_SIMPLE_TYPE = SimpleType(xsd("anySimpleType"), ANY_TYPE)

#: ``xdt:anyAtomicType`` — the base of all primitive atomic types.
ANY_ATOMIC_TYPE = AtomicType(xdt("anyAtomicType"), ANY_SIMPLE_TYPE,
                             parser=lambda s: s)

#: ``xdt:untypedAtomic`` — the type of text nodes in the paper's trees.
UNTYPED_ATOMIC = AtomicType(
    xdt("untypedAtomic"), ANY_ATOMIC_TYPE,
    facets=(WhiteSpaceFacet("preserve"),),
    parser=lambda s: s,
    primitive=False)
