"""Translation of XSD regular expressions to Python ``re`` patterns.

XSD patterns (XML Schema Part 2, Appendix F) differ from Python regular
expressions in a few ways that matter in practice:

* an XSD pattern is implicitly anchored — it must match the *whole*
  literal;
* ``^`` and ``$`` are ordinary characters outside character classes;
* the multi-character escapes ``\\i``/``\\I`` (name start characters) and
  ``\\c``/``\\C`` (name characters) do not exist in Python;
* ``\\p{...}``/``\\P{...}`` category escapes use Unicode category names
  (Python's ``re`` lacks them; we translate the common categories).

This module performs those translations.  Unsupported constructs raise
:class:`~repro.errors.FacetError` rather than silently matching wrongly.
"""

from __future__ import annotations

import re

from repro.errors import FacetError

# Character-class bodies for the XML name escapes.  These cover the
# ASCII + Latin-1 + general Unicode ranges from the Name production; they
# are the same ranges used by repro.xmlio.chars.
_NAME_START_CLASS = (
    "A-Z_a-z:À-ÖØ-öø-˿Ͱ-ͽ"
    "Ϳ-῿‌-‍⁰-↏Ⰰ-⿯、-퟿"
    "豈-﷏ﷰ-�\U00010000-\U000EFFFF"
)
_NAME_CHAR_CLASS = (
    _NAME_START_CLASS + "\\-.0-9·̀-ͯ‿-⁀"
)

# Approximations of the Unicode category escapes using Python classes.
_CATEGORY_CLASSES = {
    "L": "^\\W\\d_",      # letters = word chars minus digits/underscore
    "Lu": "A-ZÀ-Þ",
    "Ll": "a-zß-ÿ",
    "N": "0-9",
    "Nd": "0-9",
}


def translate_pattern(pattern: str) -> str:
    """Translate one XSD pattern into an anchored Python pattern string."""
    out: list[str] = []
    in_class = False
    i = 0
    n = len(pattern)
    while i < n:
        ch = pattern[i]
        if ch == "\\" and i + 1 < n:
            esc = pattern[i + 1]
            if esc == "i":
                out.append(f"[{_NAME_START_CLASS}]")
            elif esc == "I":
                out.append(f"[^{_NAME_START_CLASS}]")
            elif esc == "c":
                out.append(f"[{_NAME_CHAR_CLASS}]")
            elif esc == "C":
                out.append(f"[^{_NAME_CHAR_CLASS}]")
            elif esc in "pP":
                i = _translate_category(pattern, i, out)
                continue
            else:
                out.append(ch + esc)
            i += 2
            continue
        if in_class:
            if ch == "]":
                in_class = False
            out.append(ch)
        else:
            if ch == "[":
                in_class = True
                out.append(ch)
            elif ch in "^$":
                # Ordinary characters in XSD regular expressions.
                out.append("\\" + ch)
            else:
                out.append(ch)
        i += 1
    return "".join(out)


def _translate_category(pattern: str, i: int, out: list[str]) -> int:
    """Translate a ``\\p{...}`` escape starting at index *i*."""
    negated = pattern[i + 1] == "P"
    if i + 2 >= len(pattern) or pattern[i + 2] != "{":
        raise FacetError(f"malformed category escape in pattern {pattern!r}")
    end = pattern.find("}", i + 3)
    if end < 0:
        raise FacetError(f"unterminated category escape in {pattern!r}")
    category = pattern[i + 3:end]
    body = _CATEGORY_CLASSES.get(category)
    if body is None:
        raise FacetError(
            f"unsupported Unicode category \\p{{{category}}} in pattern")
    if negated:
        if body.startswith("^"):
            out.append(f"[{body[1:]}]")
        else:
            out.append(f"[^{body}]")
    else:
        out.append(f"[{body}]")
    return end + 1


def compile_pattern(pattern: str) -> "re.Pattern[str]":
    """Compile an XSD pattern into an anchored Python regex."""
    translated = translate_pattern(pattern)
    try:
        return re.compile(rf"(?:{translated})\Z")
    except re.error as exc:
        raise FacetError(
            f"cannot compile pattern {pattern!r}: {exc}") from exc
