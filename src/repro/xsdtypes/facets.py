"""Constraining facets of the XSD simple-type system.

A facet restricts the value or lexical space of a simple type derived by
restriction.  Each facet object is immutable and knows how to ``check``
one parsed value (with its post-whitespace literal).  Violations raise
:class:`~repro.errors.FacetError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from decimal import Decimal
from typing import TYPE_CHECKING

from repro.errors import FacetError
from repro.xsdtypes.regex import compile_pattern
from repro.xsdtypes.values import Binary, IndeterminateOrder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    import re


def value_length(value: object) -> int:
    """The facet-relevant length of a value.

    Strings count characters, binary values count octets, list values
    count items; other value spaces have no length.
    """
    if isinstance(value, str):
        return len(value)
    if isinstance(value, Binary):
        return len(value)
    if isinstance(value, tuple):
        return len(value)
    raise FacetError(
        f"values of type {type(value).__name__} have no length facet")


@dataclass(frozen=True)
class Facet:
    """Base class; concrete facets override :meth:`check`."""

    def check(self, value: object, literal: str) -> None:
        raise NotImplementedError

    @property
    def name(self) -> str:
        """The XSD facet element name, e.g. ``maxInclusive``."""
        raise NotImplementedError


@dataclass(frozen=True)
class LengthFacet(Facet):
    length: int

    name = "length"

    def check(self, value: object, literal: str) -> None:
        if value_length(value) != self.length:
            raise FacetError(
                f"length {value_length(value)} != required {self.length}")


@dataclass(frozen=True)
class MinLengthFacet(Facet):
    length: int

    name = "minLength"

    def check(self, value: object, literal: str) -> None:
        if value_length(value) < self.length:
            raise FacetError(
                f"length {value_length(value)} < minLength {self.length}")


@dataclass(frozen=True)
class MaxLengthFacet(Facet):
    length: int

    name = "maxLength"

    def check(self, value: object, literal: str) -> None:
        if value_length(value) > self.length:
            raise FacetError(
                f"length {value_length(value)} > maxLength {self.length}")


@dataclass(frozen=True)
class PatternFacet(Facet):
    """One or more alternative XSD patterns (alternatives are OR-ed)."""

    patterns: tuple[str, ...]
    _compiled: "tuple[re.Pattern[str], ...]" = field(
        init=False, repr=False, compare=False, default=())

    name = "pattern"

    def __post_init__(self) -> None:
        compiled = tuple(compile_pattern(p) for p in self.patterns)
        object.__setattr__(self, "_compiled", compiled)

    def check(self, value: object, literal: str) -> None:
        if not any(rx.match(literal) for rx in self._compiled):
            raise FacetError(
                f"{literal!r} matches none of the patterns {self.patterns}")


@dataclass(frozen=True)
class EnumerationFacet(Facet):
    """Restriction of the value space to an explicit set of values."""

    values: tuple[object, ...]

    name = "enumeration"

    def check(self, value: object, literal: str) -> None:
        for allowed in self.values:
            try:
                if value == allowed:
                    return
            except IndeterminateOrder:
                continue
        raise FacetError(f"{literal!r} is not one of the enumerated values")


def _compare(value: object, bound: object, op: str) -> bool:
    try:
        if op == "<":
            return value < bound  # type: ignore[operator]
        if op == "<=":
            return value <= bound  # type: ignore[operator]
        if op == ">":
            return value > bound  # type: ignore[operator]
        return value >= bound  # type: ignore[operator]
    except (TypeError, IndeterminateOrder) as exc:
        raise FacetError(
            f"value {value!r} is not comparable with bound {bound!r}") from exc


@dataclass(frozen=True)
class MinInclusiveFacet(Facet):
    bound: object

    name = "minInclusive"

    def check(self, value: object, literal: str) -> None:
        if not _compare(value, self.bound, ">="):
            raise FacetError(f"{literal!r} < minInclusive {self.bound!r}")


@dataclass(frozen=True)
class MinExclusiveFacet(Facet):
    bound: object

    name = "minExclusive"

    def check(self, value: object, literal: str) -> None:
        if not _compare(value, self.bound, ">"):
            raise FacetError(f"{literal!r} <= minExclusive {self.bound!r}")


@dataclass(frozen=True)
class MaxInclusiveFacet(Facet):
    bound: object

    name = "maxInclusive"

    def check(self, value: object, literal: str) -> None:
        if not _compare(value, self.bound, "<="):
            raise FacetError(f"{literal!r} > maxInclusive {self.bound!r}")


@dataclass(frozen=True)
class MaxExclusiveFacet(Facet):
    bound: object

    name = "maxExclusive"

    def check(self, value: object, literal: str) -> None:
        if not _compare(value, self.bound, "<"):
            raise FacetError(f"{literal!r} >= maxExclusive {self.bound!r}")


@dataclass(frozen=True)
class TotalDigitsFacet(Facet):
    digits: int

    name = "totalDigits"

    def check(self, value: object, literal: str) -> None:
        if not isinstance(value, (int, Decimal)):
            raise FacetError("totalDigits applies only to decimal types")
        text = str(abs(Decimal(value))).replace(".", "").lstrip("0")
        significant = len(text) or 1
        if significant > self.digits:
            raise FacetError(
                f"{literal!r} has {significant} digits > "
                f"totalDigits {self.digits}")


@dataclass(frozen=True)
class FractionDigitsFacet(Facet):
    digits: int

    name = "fractionDigits"

    def check(self, value: object, literal: str) -> None:
        if not isinstance(value, (int, Decimal)):
            raise FacetError("fractionDigits applies only to decimal types")
        exponent = Decimal(value).normalize().as_tuple().exponent
        fraction = max(0, -int(exponent))
        if fraction > self.digits:
            raise FacetError(
                f"{literal!r} has {fraction} fraction digits > "
                f"fractionDigits {self.digits}")


@dataclass(frozen=True)
class WhiteSpaceFacet(Facet):
    """The whitespace normalization rule; checked structurally, not per value."""

    mode: str  # "preserve" | "replace" | "collapse"

    name = "whiteSpace"

    _ORDER = {"preserve": 0, "replace": 1, "collapse": 2}

    def __post_init__(self) -> None:
        if self.mode not in self._ORDER:
            raise FacetError(f"unknown whiteSpace mode {self.mode!r}")

    def check(self, value: object, literal: str) -> None:
        # Normalization happens before parsing; nothing to verify here.
        return

    def at_least_as_strict_as(self, other: "WhiteSpaceFacet") -> bool:
        """Restrictions may only move towards ``collapse``."""
        return self._ORDER[self.mode] >= self._ORDER[other.mode]
