"""Builtin derived simple types (the non-primitive builtins of Part 2).

The derivation chains follow the specification exactly:

* string → normalizedString → token → {language, NMTOKEN, Name}
  with Name → NCName → {ID, IDREF, ENTITY},
* decimal → integer → {nonPositiveInteger → negativeInteger,
  long → int → short → byte,
  nonNegativeInteger → {unsignedLong → unsignedInt → unsignedShort →
  unsignedByte, positiveInteger}},
* the three builtin list types NMTOKENS, IDREFS, ENTITIES.
"""

from __future__ import annotations

from repro.xmlio.qname import QName, xsd
from repro.xsdtypes.base import AtomicType, ListType, SimpleType
from repro.xsdtypes.facets import (
    Facet,
    MaxInclusiveFacet,
    MinInclusiveFacet,
    MinLengthFacet,
    PatternFacet,
    WhiteSpaceFacet,
)
from repro.xsdtypes.primitives import canonical_integer, parse_integer

#: (name, base name, facet builders) for the string-derived chain.
_STRING_CHAIN: tuple[tuple[str, str, tuple[Facet, ...]], ...] = (
    ("normalizedString", "string", (WhiteSpaceFacet("replace"),)),
    ("token", "normalizedString", (WhiteSpaceFacet("collapse"),)),
    ("language", "token",
     (PatternFacet(("[a-zA-Z]{1,8}(-[a-zA-Z0-9]{1,8})*",)),)),
    ("NMTOKEN", "token", (PatternFacet(("\\c+",)),)),
    ("Name", "token", (PatternFacet(("\\i\\c*",)),)),
    # The spec writes NCName as [\i-[:]][\c-[:]]* using character-class
    # subtraction, which the regex translator does not support; this
    # simpler conjunction with the Name base pattern is equivalent.
    ("NCName", "Name", (PatternFacet(("[^\\s:]+",)),)),
    ("ID", "NCName", ()),
    ("IDREF", "NCName", ()),
    ("ENTITY", "NCName", ()),
)

#: (name, base name, minimum, maximum) for the integer-derived chain.
_INTEGER_CHAIN: tuple[tuple[str, str, int | None, int | None], ...] = (
    ("nonPositiveInteger", "integer", None, 0),
    ("negativeInteger", "nonPositiveInteger", None, -1),
    ("long", "integer", -2**63, 2**63 - 1),
    ("int", "long", -2**31, 2**31 - 1),
    ("short", "int", -2**15, 2**15 - 1),
    ("byte", "short", -128, 127),
    ("nonNegativeInteger", "integer", 0, None),
    ("unsignedLong", "nonNegativeInteger", 0, 2**64 - 1),
    ("unsignedInt", "unsignedLong", 0, 2**32 - 1),
    ("unsignedShort", "unsignedInt", 0, 2**16 - 1),
    ("unsignedByte", "unsignedShort", 0, 255),
    ("positiveInteger", "nonNegativeInteger", 1, None),
)

#: Builtin list types: (list name, item type name).
_BUILTIN_LISTS = (
    ("NMTOKENS", "NMTOKEN"),
    ("IDREFS", "IDREF"),
    ("ENTITIES", "ENTITY"),
)

def build_derived_types(
        builtins: dict[QName, SimpleType]) -> dict[QName, SimpleType]:
    """Create every builtin derived type given the primitives.

    *builtins* must already contain the primitives (and ``xs:integer``'s
    base ``xs:decimal``); the result maps each new name to its type and
    can be merged into the registry.
    """
    created: dict[QName, SimpleType] = {}

    def lookup(local: str) -> SimpleType:
        name = xsd(local)
        if name in created:
            return created[name]
        return builtins[name]

    # integer itself: derived from decimal but with an integer value space.
    integer = AtomicType(
        xsd("integer"), lookup("decimal"),
        facets=(PatternFacet(("[+-]?\\d+",)),),
        parser=parse_integer, canonicalizer=canonical_integer)
    created[integer.name] = integer

    for local, base_local, facets in _STRING_CHAIN:
        derived = AtomicType(xsd(local), lookup(base_local), facets=facets)
        created[derived.name] = derived

    for local, base_local, minimum, maximum in _INTEGER_CHAIN:
        facets: list[Facet] = []
        if minimum is not None:
            facets.append(MinInclusiveFacet(minimum))
        if maximum is not None:
            facets.append(MaxInclusiveFacet(maximum))
        derived = AtomicType(xsd(local), lookup(base_local),
                             facets=tuple(facets))
        created[derived.name] = derived

    for list_local, item_local in _BUILTIN_LISTS:
        list_type = ListType(xsd(list_local), lookup(item_local),
                             facets=(MinLengthFacet(1),))
        created[list_type.name] = list_type

    return created
