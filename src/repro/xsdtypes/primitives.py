"""The nineteen primitive types of XML Schema Part 2 (Section 4).

Each primitive supplies a lexical parser (literal → value) and a
canonicalizer (value → canonical literal).  The registry in
:mod:`repro.xsdtypes.registry` instantiates them as
:class:`~repro.xsdtypes.base.AtomicType` objects.
"""

from __future__ import annotations

import base64
import binascii
import math
import re
from decimal import Decimal, InvalidOperation

from repro.errors import LexicalError
from repro.xmlio.chars import is_ncname
from repro.xsdtypes.values import Binary, Duration, Temporal, days_in_month

# ----------------------------------------------------------------------
# Numeric types

_DECIMAL_RX = re.compile(r"[+-]?(\d+(\.\d*)?|\.\d+)\Z")
_INTEGER_RX = re.compile(r"[+-]?\d+\Z")
_FLOAT_RX = re.compile(
    r"([+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?|[+-]?INF|NaN)\Z")


def parse_boolean(literal: str) -> bool:
    if literal in ("true", "1"):
        return True
    if literal in ("false", "0"):
        return False
    raise LexicalError("xs:boolean", literal)


def canonical_boolean(value: object) -> str:
    return "true" if value else "false"


def parse_decimal(literal: str) -> Decimal:
    if not _DECIMAL_RX.match(literal):
        raise LexicalError("xs:decimal", literal)
    try:
        return Decimal(literal)
    except InvalidOperation as exc:  # pragma: no cover - regex guards this
        raise LexicalError("xs:decimal", literal) from exc


def canonical_decimal(value: object) -> str:
    dec = Decimal(value)
    text = format(dec.normalize(), "f")
    if "." not in text:
        text += ".0"
    if text.startswith("."):
        text = "0" + text
    if text.startswith("-."):
        text = "-0" + text[1:]
    return text


def parse_integer(literal: str) -> int:
    if not _INTEGER_RX.match(literal):
        raise LexicalError("xs:integer", literal)
    return int(literal)


def canonical_integer(value: object) -> str:
    return str(int(value))


def _parse_floating(literal: str, type_name: str) -> float:
    if not _FLOAT_RX.match(literal):
        raise LexicalError(type_name, literal)
    if literal == "INF" or literal == "+INF":
        return math.inf
    if literal == "-INF":
        return -math.inf
    if literal == "NaN":
        return math.nan
    return float(literal)


def parse_float(literal: str) -> float:
    return _parse_floating(literal, "xs:float")


def parse_double(literal: str) -> float:
    return _parse_floating(literal, "xs:double")


def canonical_float(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "INF" if number > 0 else "-INF"
    mantissa, _, exponent = f"{number:E}".partition("E")
    mantissa = mantissa.rstrip("0")
    if mantissa.endswith("."):
        mantissa += "0"
    return f"{mantissa}E{int(exponent)}"


# ----------------------------------------------------------------------
# String-ish types

def parse_string(literal: str) -> str:
    return literal


def parse_any_uri(literal: str) -> str:
    # Any string is accepted; RFC 3986 checking is out of the paper's
    # scope and XSD itself imposes almost none.
    return literal


def parse_qname(literal: str) -> str:
    if ":" in literal:
        prefix, _, local = literal.partition(":")
        if not (is_ncname(prefix) and is_ncname(local)):
            raise LexicalError("xs:QName", literal)
    elif not is_ncname(literal):
        raise LexicalError("xs:QName", literal)
    return literal


# ----------------------------------------------------------------------
# Binary types

_HEX_RX = re.compile(r"([0-9a-fA-F]{2})*\Z")
_BASE64_RX = re.compile(r"[A-Za-z0-9+/ ]*={0,2}\Z")


def parse_hex_binary(literal: str) -> Binary:
    if not _HEX_RX.match(literal):
        raise LexicalError("xs:hexBinary", literal)
    return Binary(bytes.fromhex(literal))


def canonical_hex_binary(value: object) -> str:
    if not isinstance(value, Binary):
        raise LexicalError("xs:hexBinary", repr(value))
    return value.hex()


def parse_base64_binary(literal: str) -> Binary:
    if not _BASE64_RX.match(literal):
        raise LexicalError("xs:base64Binary", literal)
    compact = literal.replace(" ", "")
    if len(compact) % 4:
        raise LexicalError("xs:base64Binary", literal)
    try:
        return Binary(base64.b64decode(compact, validate=True))
    except (binascii.Error, ValueError) as exc:
        raise LexicalError("xs:base64Binary", literal) from exc


def canonical_base64_binary(value: object) -> str:
    if not isinstance(value, Binary):
        raise LexicalError("xs:base64Binary", repr(value))
    return base64.b64encode(value.octets).decode("ascii")


# ----------------------------------------------------------------------
# Duration

_DURATION_RX = re.compile(
    r"(?P<sign>-)?P"
    r"(?:(?P<years>\d+)Y)?"
    r"(?:(?P<months>\d+)M)?"
    r"(?:(?P<days>\d+)D)?"
    r"(?:T"
    r"(?:(?P<hours>\d+)H)?"
    r"(?:(?P<minutes>\d+)M)?"
    r"(?:(?P<seconds>\d+(\.\d+)?)S)?"
    r")?\Z")


def parse_duration(literal: str) -> Duration:
    match = _DURATION_RX.match(literal)
    if not match:
        raise LexicalError("xs:duration", literal)
    groups = match.groupdict()
    fields = ("years", "months", "days", "hours", "minutes", "seconds")
    if all(groups[f] is None for f in fields):
        raise LexicalError("xs:duration", literal,
                           "at least one component is required")
    if "T" in literal and literal.rstrip().endswith("T"):
        raise LexicalError("xs:duration", literal,
                           "'T' must be followed by a time component")
    sign = -1 if groups["sign"] else 1
    months = (int(groups["years"] or 0) * 12 + int(groups["months"] or 0))
    seconds = (Decimal(groups["days"] or 0) * 86400
               + Decimal(groups["hours"] or 0) * 3600
               + Decimal(groups["minutes"] or 0) * 60
               + Decimal(groups["seconds"] or 0))
    return Duration(months=sign * months, seconds=sign * seconds)


def canonical_duration(value: object) -> str:
    if not isinstance(value, Duration):
        raise LexicalError("xs:duration", repr(value))
    return value.canonical()


# ----------------------------------------------------------------------
# The date/time family

_TZ_FRAG = r"(?P<tz>Z|[+-]\d{2}:\d{2})?"
_YEAR_FRAG = r"(?P<year>-?(?:[1-9]\d{3,}|0\d{3}))"
_MONTH_FRAG = r"(?P<month>\d{2})"
_DAY_FRAG = r"(?P<day>\d{2})"
_TIME_FRAG = (r"(?P<hour>\d{2}):(?P<minute>\d{2})"
              r":(?P<second>\d{2}(\.\d+)?)")

_TEMPORAL_PATTERNS = {
    "dateTime": re.compile(
        f"{_YEAR_FRAG}-{_MONTH_FRAG}-{_DAY_FRAG}T{_TIME_FRAG}{_TZ_FRAG}\\Z"),
    "date": re.compile(f"{_YEAR_FRAG}-{_MONTH_FRAG}-{_DAY_FRAG}{_TZ_FRAG}\\Z"),
    "time": re.compile(f"{_TIME_FRAG}{_TZ_FRAG}\\Z"),
    "gYearMonth": re.compile(f"{_YEAR_FRAG}-{_MONTH_FRAG}{_TZ_FRAG}\\Z"),
    "gYear": re.compile(f"{_YEAR_FRAG}{_TZ_FRAG}\\Z"),
    "gMonthDay": re.compile(f"--{_MONTH_FRAG}-{_DAY_FRAG}{_TZ_FRAG}\\Z"),
    "gDay": re.compile(f"---{_DAY_FRAG}{_TZ_FRAG}\\Z"),
    "gMonth": re.compile(f"--{_MONTH_FRAG}{_TZ_FRAG}\\Z"),
}


def _parse_tz(tz: str | None) -> int | None:
    if tz is None:
        return None
    if tz == "Z":
        return 0
    sign = -1 if tz[0] == "-" else 1
    hours, minutes = int(tz[1:3]), int(tz[4:6])
    if hours > 14 or minutes > 59 or (hours == 14 and minutes != 0):
        raise ValueError(f"timezone {tz} out of range")
    return sign * (hours * 60 + minutes)


def _make_temporal_parser(kind: str):
    pattern = _TEMPORAL_PATTERNS[kind]
    type_name = f"xs:{kind}"

    def parse(literal: str) -> Temporal:
        match = pattern.match(literal)
        if not match:
            raise LexicalError(type_name, literal)
        groups = match.groupdict()
        try:
            tz_minutes = _parse_tz(groups.get("tz"))
        except ValueError as exc:
            raise LexicalError(type_name, literal, str(exc)) from exc
        year = int(groups["year"]) if "year" in groups else 1
        month = int(groups["month"]) if "month" in groups else 1
        day = int(groups["day"]) if "day" in groups else 1
        hour = int(groups["hour"]) if "hour" in groups else 0
        minute = int(groups["minute"]) if "minute" in groups else 0
        second = Decimal(groups["second"]) if "second" in groups else Decimal(0)
        if "month" in groups and not 1 <= month <= 12:
            raise LexicalError(type_name, literal, f"month {month} invalid")
        if "day" in groups:
            max_day = days_in_month(year if "year" in groups else 2000, month)
            if not 1 <= day <= max_day:
                raise LexicalError(type_name, literal, f"day {day} invalid")
        if "hour" in groups:
            end_of_day = (hour == 24 and minute == 0 and second == 0)
            if not (hour <= 23 and minute <= 59 and second < 60
                    or end_of_day):
                raise LexicalError(type_name, literal, "time out of range")
            if end_of_day:
                hour = 0  # 24:00:00 normalizes to 00:00:00 next day...
                if kind == "dateTime":
                    day += 1  # simplified: valid because source day checked
                    if day > days_in_month(year, month):
                        day = 1
                        month += 1
                        if month > 12:
                            month, year = 1, year + 1
        return Temporal(kind=kind, year=year, month=month, day=day,
                        hour=hour, minute=minute, second=second,
                        tz_minutes=tz_minutes)

    return parse


def canonical_temporal(value: object) -> str:
    if not isinstance(value, Temporal):
        raise LexicalError("xs:dateTime", repr(value))
    return value.canonical()


parse_date_time = _make_temporal_parser("dateTime")
parse_date = _make_temporal_parser("date")
parse_time = _make_temporal_parser("time")
parse_g_year_month = _make_temporal_parser("gYearMonth")
parse_g_year = _make_temporal_parser("gYear")
parse_g_month_day = _make_temporal_parser("gMonthDay")
parse_g_day = _make_temporal_parser("gDay")
parse_g_month = _make_temporal_parser("gMonth")


#: Specification of every primitive: name -> (parser, canonicalizer).
PRIMITIVE_SPECS: dict[str, tuple] = {
    "string": (parse_string, str),
    "boolean": (parse_boolean, canonical_boolean),
    "decimal": (parse_decimal, canonical_decimal),
    "float": (parse_float, canonical_float),
    "double": (parse_double, canonical_float),
    "duration": (parse_duration, canonical_duration),
    "dateTime": (parse_date_time, canonical_temporal),
    "time": (parse_time, canonical_temporal),
    "date": (parse_date, canonical_temporal),
    "gYearMonth": (parse_g_year_month, canonical_temporal),
    "gYear": (parse_g_year, canonical_temporal),
    "gMonthDay": (parse_g_month_day, canonical_temporal),
    "gDay": (parse_g_day, canonical_temporal),
    "gMonth": (parse_g_month, canonical_temporal),
    "hexBinary": (parse_hex_binary, canonical_hex_binary),
    "base64Binary": (parse_base64_binary, canonical_base64_binary),
    "anyURI": (parse_any_uri, str),
    "QName": (parse_qname, str),
    "NOTATION": (parse_qname, str),
}
