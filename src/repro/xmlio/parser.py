"""A from-scratch, non-validating XML 1.0 parser.

The parser is a hand-written recursive-descent scanner over the input
string.  It supports the features a schema-described document can use:

* the XML declaration and a (skipped) DOCTYPE without entity definitions,
* elements with attributes and self-closing tags,
* character data, CDATA sections, character and predefined entity
  references,
* comments and processing instructions (skipped, as the paper's model
  deliberately leaves them out),
* namespace declaration and resolution (default and prefixed).

Well-formedness violations raise :class:`~repro.errors.XmlSyntaxError`
with the 1-based line and column of the offending position.
"""

from __future__ import annotations

from repro.errors import XmlSyntaxError
from repro.xmlio.chars import (
    is_name_char,
    is_name_start_char,
    is_whitespace,
    is_xml_char,
)
from repro.xmlio.nodes import XmlDocument, XmlElement, XmlText
from repro.xmlio.qname import XMLNS_NAMESPACE, QName, split_prefixed

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

#: Namespace bindings mandated by the XML namespaces recommendation.
_BUILTIN_BINDINGS = {
    "xml": "http://www.w3.org/XML/1998/namespace",
    "xmlns": XMLNS_NAMESPACE,
}


class _Scanner:
    """Cursor over the input text with error-position reporting."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def error(self, message: str, pos: int | None = None) -> XmlSyntaxError:
        at = self.pos if pos is None else pos
        line = self.text.count("\n", 0, at) + 1
        last_nl = self.text.rfind("\n", 0, at)
        column = at - last_nl
        return XmlSyntaxError(message, line, column)

    def eof(self) -> bool:
        return self.pos >= self.length

    def peek(self) -> str:
        if self.pos >= self.length:
            raise self.error("unexpected end of input")
        return self.text[self.pos]

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_whitespace(self) -> int:
        """Skip whitespace; return how many characters were skipped."""
        start = self.pos
        while self.pos < self.length and is_whitespace(self.text[self.pos]):
            self.pos += 1
        return self.pos - start

    def read_name(self) -> str:
        start = self.pos
        if self.eof() or not is_name_start_char(self.peek()):
            raise self.error("expected a name")
        self.pos += 1
        while self.pos < self.length and is_name_char(self.text[self.pos]):
            self.pos += 1
        return self.text[start:self.pos]

    def read_until(self, token: str, context: str) -> str:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.error(f"unterminated {context}")
        chunk = self.text[self.pos:end]
        self.pos = end + len(token)
        return chunk


class XmlParser:
    """Parses a complete XML document string into an :class:`XmlDocument`."""

    def __init__(self, text: str, base_uri: str | None = None) -> None:
        if text.startswith("﻿"):
            text = text[1:]
        self._scanner = _Scanner(text)
        self._base_uri = base_uri
        # Namespace environment: list of dicts, innermost last.
        self._ns_stack: list[dict[str, str]] = [dict(_BUILTIN_BINDINGS)]

    def parse(self) -> XmlDocument:
        """Parse the whole input and return the document."""
        scanner = self._scanner
        self._skip_prolog()
        if scanner.eof() or scanner.peek() != "<":
            raise scanner.error("expected the root element")
        root = self._parse_element()
        self._skip_misc()
        if not scanner.eof():
            raise scanner.error("content after the root element")
        return XmlDocument(root, base_uri=self._base_uri)

    # ------------------------------------------------------------------
    # Prolog and miscellaneous content

    def _skip_prolog(self) -> None:
        scanner = self._scanner
        scanner.skip_whitespace()
        if scanner.startswith("<?xml") and self._is_xml_decl():
            scanner.read_until("?>", "XML declaration")
        self._skip_misc()
        if scanner.startswith("<!DOCTYPE"):
            self._skip_doctype()
            self._skip_misc()

    def _is_xml_decl(self) -> bool:
        # "<?xml" must be followed by whitespace to be the declaration
        # (as opposed to a PI named e.g. "xmlfoo").
        scanner = self._scanner
        after = scanner.pos + len("<?xml")
        return (after < scanner.length
                and is_whitespace(scanner.text[after]))

    def _skip_doctype(self) -> None:
        scanner = self._scanner
        scanner.expect("<!DOCTYPE")
        depth = 0
        while True:
            if scanner.eof():
                raise scanner.error("unterminated DOCTYPE")
            ch = scanner.peek()
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth == 0:
                scanner.pos += 1
                return
            scanner.pos += 1

    def _skip_misc(self) -> None:
        """Skip whitespace, comments and processing instructions."""
        scanner = self._scanner
        while True:
            scanner.skip_whitespace()
            if scanner.startswith("<!--"):
                self._skip_comment()
            elif scanner.startswith("<?"):
                self._skip_pi()
            else:
                return

    def _skip_comment(self) -> None:
        scanner = self._scanner
        scanner.expect("<!--")
        body = scanner.read_until("-->", "comment")
        if "--" in body:
            raise scanner.error("'--' is not allowed inside a comment")

    def _skip_pi(self) -> None:
        scanner = self._scanner
        scanner.expect("<?")
        target = scanner.read_name()
        if target.lower() == "xml":
            raise scanner.error("processing instruction may not be named 'xml'")
        scanner.read_until("?>", "processing instruction")

    # ------------------------------------------------------------------
    # Elements

    def _parse_element(self) -> XmlElement:
        scanner = self._scanner
        scanner.expect("<")
        name = scanner.read_name()
        raw_attrs, ns_decls = self._parse_attributes()
        self._ns_stack.append(ns_decls)
        try:
            element = XmlElement(
                name=self._resolve(name, is_attribute=False),
                attributes=self._resolve_attributes(raw_attrs),
                namespace_decls=ns_decls,
            )
            scanner.skip_whitespace()
            if scanner.startswith("/>"):
                scanner.pos += 2
                return element
            scanner.expect(">")
            self._parse_content(element)
            end_name = scanner.read_name()
            if end_name != name:
                raise scanner.error(
                    f"end tag </{end_name}> does not match <{name}>")
            scanner.skip_whitespace()
            scanner.expect(">")
            return element
        finally:
            self._ns_stack.pop()

    def _parse_attributes(
            self) -> tuple[dict[str, str], dict[str, str]]:
        """Read the attribute list of a start tag.

        Returns the plain attributes (lexical name -> value) and the
        namespace declarations made on this element (prefix -> URI, with
        ``""`` as the key of the default namespace).
        """
        scanner = self._scanner
        attrs: dict[str, str] = {}
        ns_decls: dict[str, str] = {}
        while True:
            skipped = scanner.skip_whitespace()
            if scanner.eof():
                raise scanner.error("unterminated start tag")
            ch = scanner.peek()
            if ch in (">", "/"):
                return attrs, ns_decls
            if not skipped:
                raise scanner.error("whitespace required before attribute")
            name = scanner.read_name()
            scanner.skip_whitespace()
            scanner.expect("=")
            scanner.skip_whitespace()
            value = self._parse_attribute_value()
            if name == "xmlns":
                ns_decls[""] = value
            elif name.startswith("xmlns:"):
                prefix = name[len("xmlns:"):]
                if not prefix:
                    raise scanner.error("empty namespace prefix")
                if not value:
                    raise scanner.error(
                        f"prefix {prefix!r} may not be bound to the empty URI")
                ns_decls[prefix] = value
            else:
                if name in attrs:
                    raise scanner.error(f"duplicate attribute {name!r}")
                attrs[name] = value

    def _parse_attribute_value(self) -> str:
        scanner = self._scanner
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.pos += 1
        parts: list[str] = []
        while True:
            if scanner.eof():
                raise scanner.error("unterminated attribute value")
            ch = scanner.peek()
            if ch == quote:
                scanner.pos += 1
                return "".join(parts)
            if ch == "<":
                raise scanner.error("'<' is not allowed in attribute values")
            if ch == "&":
                parts.append(self._parse_reference())
            else:
                # Attribute-value normalization: whitespace becomes space.
                parts.append(" " if ch in "\t\r\n" else ch)
                scanner.pos += 1

    def _parse_content(self, element: XmlElement) -> None:
        scanner = self._scanner
        text_parts: list[str] = []

        def flush_text() -> None:
            if text_parts:
                element.append(XmlText("".join(text_parts)))
                text_parts.clear()

        while True:
            if scanner.eof():
                raise scanner.error(
                    f"unterminated element <{element.name.lexical}>")
            ch = scanner.peek()
            if ch == "<":
                if scanner.startswith("</"):
                    flush_text()
                    scanner.pos += 2
                    return
                if scanner.startswith("<!--"):
                    self._skip_comment()
                elif scanner.startswith("<![CDATA["):
                    scanner.pos += len("<![CDATA[")
                    text_parts.append(
                        scanner.read_until("]]>", "CDATA section"))
                elif scanner.startswith("<?"):
                    self._skip_pi()
                else:
                    flush_text()
                    element.append(self._parse_element())
            elif ch == "&":
                text_parts.append(self._parse_reference())
            else:
                if ch == "]" and scanner.startswith("]]>"):
                    raise scanner.error("']]>' is not allowed in content")
                if not is_xml_char(ch):
                    raise scanner.error(
                        f"illegal character U+{ord(ch):04X} in content")
                # Line-end normalization (XML 1.0 section 2.11).
                if ch == "\r":
                    text_parts.append("\n")
                    scanner.pos += 1
                    if not scanner.eof() and scanner.peek() == "\n":
                        scanner.pos += 1
                else:
                    text_parts.append(ch)
                    scanner.pos += 1

    # ------------------------------------------------------------------
    # References and namespaces

    def _parse_reference(self) -> str:
        scanner = self._scanner
        start = scanner.pos
        scanner.expect("&")
        if scanner.startswith("#"):
            scanner.pos += 1
            if scanner.startswith("x") or scanner.startswith("X"):
                scanner.pos += 1
                digits = scanner.read_until(";", "character reference")
                base = 16
            else:
                digits = scanner.read_until(";", "character reference")
                base = 10
            try:
                code = int(digits, base)
                ch = chr(code)
            except (ValueError, OverflowError):
                raise scanner.error(
                    f"bad character reference &#{digits};", start) from None
            if not is_xml_char(ch):
                raise scanner.error(
                    f"character reference to illegal character U+{code:04X}",
                    start)
            return ch
        name = scanner.read_name()
        scanner.expect(";")
        try:
            return _PREDEFINED_ENTITIES[name]
        except KeyError:
            raise scanner.error(
                f"reference to undefined entity &{name};", start) from None

    def _lookup_namespace(self, prefix: str) -> str | None:
        for bindings in reversed(self._ns_stack):
            if prefix in bindings:
                return bindings[prefix]
        return None

    def _resolve(self, lexical: str, is_attribute: bool) -> QName:
        prefix, local = split_prefixed(lexical)
        if prefix:
            uri = self._lookup_namespace(prefix)
            if uri is None:
                raise self._scanner.error(f"undeclared prefix {prefix!r}")
            return QName(uri, local, prefix)
        if is_attribute:
            # Unprefixed attributes are in no namespace.
            return QName("", local)
        uri = self._lookup_namespace("") or ""
        return QName(uri, local)

    def _resolve_attributes(
            self, raw: dict[str, str]) -> dict[QName, str]:
        resolved: dict[QName, str] = {}
        for lexical, value in raw.items():
            qname = self._resolve(lexical, is_attribute=True)
            if qname in resolved:
                raise self._scanner.error(
                    f"duplicate attribute {qname.clark!r} after "
                    "namespace resolution")
            resolved[qname] = value
        return resolved


def parse_document(text: str, base_uri: str | None = None) -> XmlDocument:
    """Parse *text* into an :class:`XmlDocument`.

    This is the module-level convenience entry point; see
    :class:`XmlParser` for the feature list.
    """
    return XmlParser(text, base_uri=base_uri).parse()


def parse_element(text: str) -> XmlElement:
    """Parse *text* and return just the root element."""
    return parse_document(text).root
