"""From-scratch XML parsing and serialization substrate.

This package provides the raw syntactic layer beneath the formal model:
a namespace-aware, non-validating XML 1.0 parser and a serializer.  The
formal document trees of Section 6 are built *from* these raw trees by
the mapping ``f`` in :mod:`repro.mapping`.
"""

from repro.xmlio.nodes import XmlChild, XmlDocument, XmlElement, XmlText
from repro.xmlio.parser import XmlParser, parse_document, parse_element
from repro.xmlio.qname import (
    XDT_NAMESPACE,
    XSD_NAMESPACE,
    XSI_NAMESPACE,
    QName,
    split_prefixed,
    xdt,
    xsd,
)
from repro.xmlio.serializer import (
    XmlSerializer,
    escape_attribute,
    escape_text,
    serialize_document,
    serialize_element,
)

__all__ = [
    "QName",
    "XDT_NAMESPACE",
    "XSD_NAMESPACE",
    "XSI_NAMESPACE",
    "XmlChild",
    "XmlDocument",
    "XmlElement",
    "XmlParser",
    "XmlSerializer",
    "XmlText",
    "escape_attribute",
    "escape_text",
    "parse_document",
    "parse_element",
    "serialize_document",
    "serialize_element",
    "split_prefixed",
    "xdt",
    "xsd",
]
