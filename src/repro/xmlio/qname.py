"""Qualified names.

The paper's data model uses QNames for ``node-name`` and ``type`` accessor
values.  We model a QName as an immutable (namespace URI, local name,
prefix) triple.  Equality and hashing ignore the prefix, as required by the
XDM: two QNames are the same name when their URIs and local parts match.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import XmlSyntaxError
from repro.xmlio.chars import is_ncname

#: Conventional namespace URIs used throughout the library.
XSD_NAMESPACE = "http://www.w3.org/2001/XMLSchema"
XDT_NAMESPACE = "http://www.w3.org/2004/10/xpath-datatypes"
XSI_NAMESPACE = "http://www.w3.org/2001/XMLSchema-instance"
XMLNS_NAMESPACE = "http://www.w3.org/2000/xmlns/"


@dataclass(frozen=True)
class QName:
    """An expanded qualified name.

    ``uri`` is ``""`` for names in no namespace.  The ``prefix`` is kept
    only for serialization fidelity; it does not participate in equality.
    """

    uri: str
    local: str
    prefix: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not is_ncname(self.local):
            raise XmlSyntaxError(f"invalid local name {self.local!r}")
        if self.prefix and not is_ncname(self.prefix):
            raise XmlSyntaxError(f"invalid prefix {self.prefix!r}")

    @property
    def lexical(self) -> str:
        """The prefixed lexical form, e.g. ``xsd:string``."""
        if self.prefix:
            return f"{self.prefix}:{self.local}"
        return self.local

    @property
    def clark(self) -> str:
        """Clark notation, e.g. ``{http://...}string``."""
        if self.uri:
            return f"{{{self.uri}}}{self.local}"
        return self.local

    def __str__(self) -> str:
        return self.lexical

    def __repr__(self) -> str:
        return f"QName({self.clark})"


def split_prefixed(name: str) -> tuple[str, str]:
    """Split a lexical QName into ``(prefix, local)``.

    A name without a colon yields an empty prefix.  More than one colon is
    rejected, as is an empty prefix or local part.
    """
    if ":" not in name:
        return "", name
    prefix, _, local = name.partition(":")
    if not prefix or not local or ":" in local:
        raise XmlSyntaxError(f"malformed qualified name {name!r}")
    return prefix, local


def xsd(local: str) -> QName:
    """Build a QName in the XML Schema namespace (prefix ``xs``)."""
    return QName(XSD_NAMESPACE, local, "xs")


def xdt(local: str) -> QName:
    """Build a QName in the XPath datatypes namespace (prefix ``xdt``)."""
    return QName(XDT_NAMESPACE, local, "xdt")
