"""Raw parse-tree nodes produced by the XML parser.

These are deliberately *not* the data-model nodes of the paper (those live
in :mod:`repro.xdm`); they are the plain syntactic tree one level above the
character stream: an element has a resolved :class:`~repro.xmlio.qname.QName`,
an attribute map, and an ordered list of element/text children.  The
mapping ``f`` of Section 8 converts this tree into a formal document tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.xmlio.qname import QName

XmlChild = Union["XmlElement", "XmlText"]


@dataclass
class XmlText:
    """A run of character data (text or CDATA) inside an element."""

    text: str

    def __repr__(self) -> str:
        preview = self.text if len(self.text) <= 30 else self.text[:27] + "..."
        return f"XmlText({preview!r})"


@dataclass
class XmlElement:
    """A parsed element: resolved name, attributes and ordered children.

    ``attributes`` preserves document order (Python dicts are ordered).
    ``namespace_decls`` keeps the ``xmlns`` declarations that appeared on
    this element so serialization can reproduce them.
    """

    name: QName
    attributes: dict[QName, str] = field(default_factory=dict)
    children: list[XmlChild] = field(default_factory=list)
    namespace_decls: dict[str, str] = field(default_factory=dict)

    def append(self, child: XmlChild) -> None:
        """Append a child, merging adjacent text runs into one node."""
        if (isinstance(child, XmlText) and self.children
                and isinstance(self.children[-1], XmlText)):
            self.children[-1].text += child.text
        else:
            self.children.append(child)

    def element_children(self) -> list["XmlElement"]:
        """The child elements, in document order, skipping text."""
        return [c for c in self.children if isinstance(c, XmlElement)]

    def text_content(self) -> str:
        """Concatenation of all descendant text, in document order."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, XmlText):
                parts.append(child.text)
            else:
                parts.append(child.text_content())
        return "".join(parts)

    def find(self, local: str) -> "XmlElement | None":
        """First child element whose local name is *local*, if any."""
        for child in self.element_children():
            if child.name.local == local:
                return child
        return None

    def find_all(self, local: str) -> list["XmlElement"]:
        """All child elements whose local name is *local*."""
        return [c for c in self.element_children() if c.name.local == local]

    def get(self, local: str, default: str | None = None) -> str | None:
        """Attribute value looked up by local name (namespace-less match)."""
        for qname, value in self.attributes.items():
            if qname.local == local and not qname.uri:
                return value
        return default

    def iter(self) -> Iterator["XmlElement"]:
        """Depth-first pre-order iteration over this element's subtree."""
        yield self
        for child in self.element_children():
            yield from child.iter()

    def __repr__(self) -> str:
        return (f"XmlElement({self.name.lexical!r}, "
                f"{len(self.attributes)} attrs, "
                f"{len(self.children)} children)")


@dataclass
class XmlDocument:
    """A parsed document: exactly one root element plus an optional URI.

    The paper (Section 3) restricts the document information item to a
    single element child, which conveniently matches XML well-formedness.
    """

    root: XmlElement
    base_uri: str | None = None

    def __repr__(self) -> str:
        return f"XmlDocument(root={self.root.name.lexical!r})"
