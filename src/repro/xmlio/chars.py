"""Character classification for the XML 1.0 grammar.

Only the rules the parser needs are implemented: name characters,
whitespace, and the legal character range for content.  The classification
follows the productions of the XML 1.0 (Fifth Edition) recommendation,
restricted to the Basic Multilingual Plane plus the supplementary planes
reachable from Python strings.
"""

from __future__ import annotations

#: The four XML whitespace characters (production [3] ``S``).
WHITESPACE = " \t\r\n"

_NAME_START_RANGES = (
    (ord(":"), ord(":")),
    (ord("A"), ord("Z")),
    (ord("_"), ord("_")),
    (ord("a"), ord("z")),
    (0xC0, 0xD6),
    (0xD8, 0xF6),
    (0xF8, 0x2FF),
    (0x370, 0x37D),
    (0x37F, 0x1FFF),
    (0x200C, 0x200D),
    (0x2070, 0x218F),
    (0x2C00, 0x2FEF),
    (0x3001, 0xD7FF),
    (0xF900, 0xFDCF),
    (0xFDF0, 0xFFFD),
    (0x10000, 0xEFFFF),
)

_NAME_EXTRA_RANGES = (
    (ord("-"), ord("-")),
    (ord("."), ord(".")),
    (ord("0"), ord("9")),
    (0xB7, 0xB7),
    (0x300, 0x36F),
    (0x203F, 0x2040),
)


def _in_ranges(code: int, ranges: tuple[tuple[int, int], ...]) -> bool:
    for lo, hi in ranges:
        if lo <= code <= hi:
            return True
    return False


def is_whitespace(ch: str) -> bool:
    """Return True for the XML whitespace characters (space, tab, CR, LF)."""
    return ch in WHITESPACE


def is_name_start_char(ch: str) -> bool:
    """Return True if *ch* may start an XML Name (production [4])."""
    return _in_ranges(ord(ch), _NAME_START_RANGES)


def is_name_char(ch: str) -> bool:
    """Return True if *ch* may continue an XML Name (production [4a])."""
    code = ord(ch)
    return (_in_ranges(code, _NAME_START_RANGES)
            or _in_ranges(code, _NAME_EXTRA_RANGES))


def is_xml_char(ch: str) -> bool:
    """Return True if *ch* is a legal XML document character ([2] Char)."""
    code = ord(ch)
    return (code in (0x9, 0xA, 0xD)
            or 0x20 <= code <= 0xD7FF
            or 0xE000 <= code <= 0xFFFD
            or 0x10000 <= code <= 0x10FFFF)


def is_name(text: str) -> bool:
    """Return True if *text* is a non-empty XML Name."""
    if not text:
        return False
    if not is_name_start_char(text[0]):
        return False
    return all(is_name_char(ch) for ch in text[1:])


def is_ncname(text: str) -> bool:
    """Return True if *text* is an NCName (an XML Name without colons)."""
    return is_name(text) and ":" not in text


def collapse_whitespace(text: str) -> str:
    """Apply the XSD ``collapse`` whitespace facet to *text*.

    Leading and trailing whitespace is removed and every internal run of
    whitespace characters is replaced by a single space.
    """
    return " ".join(text.split())


def replace_whitespace(text: str) -> str:
    """Apply the XSD ``replace`` whitespace facet to *text*.

    Every tab, carriage return and line feed becomes a single space.
    """
    out = []
    for ch in text:
        out.append(" " if ch in "\t\r\n" else ch)
    return "".join(out)
