"""Serialization of raw XML trees back to text.

The serializer is the syntactic half of the paper's mapping ``g``
(Section 8): given a tree of :class:`~repro.xmlio.nodes.XmlElement` and
:class:`~repro.xmlio.nodes.XmlText` nodes it produces a well-formed XML
document whose re-parse is content-equal to the original tree.
"""

from __future__ import annotations

from repro.xmlio.nodes import XmlDocument, XmlElement, XmlText
from repro.xmlio.qname import QName


def escape_text(text: str) -> str:
    """Escape character data for element content."""
    return (text.replace("&", "&amp;")
                .replace("<", "&lt;")
                .replace(">", "&gt;"))


def escape_attribute(text: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (text.replace("&", "&amp;")
                .replace("<", "&lt;")
                .replace('"', "&quot;")
                .replace("\t", "&#9;")
                .replace("\n", "&#10;")
                .replace("\r", "&#13;"))


class XmlSerializer:
    """Writes an :class:`XmlDocument` or element subtree to a string.

    ``indent`` enables pretty-printing; it is only applied around
    element-only content so that mixed content (where whitespace is
    significant) round-trips unchanged.
    """

    def __init__(self, indent: str | None = None,
                 xml_declaration: bool = False) -> None:
        self._indent = indent
        self._xml_declaration = xml_declaration

    def serialize(self, document: XmlDocument) -> str:
        parts: list[str] = []
        if self._xml_declaration:
            parts.append('<?xml version="1.0" encoding="UTF-8"?>')
            if self._indent is not None:
                parts.append("\n")
        self._write_element(document.root, parts, depth=0)
        if self._indent is not None:
            parts.append("\n")
        return "".join(parts)

    def serialize_element(self, element: XmlElement) -> str:
        parts: list[str] = []
        self._write_element(element, parts, depth=0)
        return "".join(parts)

    # ------------------------------------------------------------------

    def _write_element(self, element: XmlElement, parts: list[str],
                       depth: int) -> None:
        name = element.name.lexical
        parts.append(f"<{name}")
        for prefix, uri in element.namespace_decls.items():
            attr = f"xmlns:{prefix}" if prefix else "xmlns"
            parts.append(f' {attr}="{escape_attribute(uri)}"')
        for qname, value in element.attributes.items():
            parts.append(
                f' {self._attribute_name(qname)}="{escape_attribute(value)}"')
        if not element.children:
            parts.append("/>")
            return
        parts.append(">")
        pretty = (self._indent is not None
                  and not any(isinstance(c, XmlText)
                              for c in element.children))
        for child in element.children:
            if pretty:
                parts.append("\n" + self._indent * (depth + 1))
            if isinstance(child, XmlText):
                parts.append(escape_text(child.text))
            else:
                self._write_element(child, parts, depth + 1)
        if pretty:
            parts.append("\n" + self._indent * depth)
        parts.append(f"</{name}>")

    @staticmethod
    def _attribute_name(qname: QName) -> str:
        return qname.lexical


def serialize_document(document: XmlDocument, indent: str | None = None,
                       xml_declaration: bool = False) -> str:
    """Serialize *document*; convenience wrapper over :class:`XmlSerializer`."""
    return XmlSerializer(indent=indent,
                         xml_declaration=xml_declaration).serialize(document)


def serialize_element(element: XmlElement,
                      indent: str | None = None) -> str:
    """Serialize one element subtree to a string."""
    return XmlSerializer(indent=indent).serialize_element(element)
