"""XQuery-lite: the paper's announced next step, implemented.

A FLWOR language over the path engine, evaluated directly on the
Section 5/6 data model: for/let/where/order by/return, general
comparisons, a subset of the fn:* library, and element constructors
with XQuery copy semantics.
"""

from repro.xquery.ast import Expression, Flwor
from repro.xquery.evaluator import (
    XQueryEvaluator,
    execute,
    execute_values,
)
from repro.xquery.lexer import Token, tokenize
from repro.xquery.parser import XQueryParser, parse_query

__all__ = [
    "Expression",
    "Flwor",
    "Token",
    "XQueryEvaluator",
    "XQueryParser",
    "execute",
    "execute_values",
    "parse_query",
    "tokenize",
]
