"""Evaluation of XQuery-lite over the formal data model.

Values are flat sequences of items: nodes, :class:`AtomicValue`
wrappers, or plain Python scalars from literals.  The semantics is the
"simple semantics of a data manipulation language" the paper's
conclusion sketches, built directly on the accessors:

* paths delegate to :mod:`repro.query`;
* atomization uses ``typed-value`` (via :mod:`repro.xdm.functions`);
* general comparisons are existential over atomized operands, with
  untyped values compared numerically against numbers and as strings
  otherwise (a pragmatic subset of the XPath 2.0 rules);
* FLWOR iterates for-bindings in document order, filters with
  ``where``, sorts with ``order by`` and concatenates ``return`` results;
* element constructors build *new* nodes in a fresh state algebra,
  deep-copying any node content (XQuery's copy semantics).
"""

from __future__ import annotations

from decimal import Decimal, InvalidOperation
from typing import Iterator

from repro.errors import QueryError
from repro.xmlio.qname import QName
from repro.xdm import functions as fn
from repro.xdm.node import (
    AttributeNode,
    DocumentNode,
    ElementNode,
    Node,
    TextNode,
)
from repro.xsdtypes.base import AtomicValue
from repro.algebra.state import StateAlgebra
from repro.query.engine import evaluate_tree
from repro.xquery.ast import (
    BooleanExpr,
    Comparison,
    Constructor,
    Expression,
    Flwor,
    ForClause,
    FunctionCall,
    LetClause,
    Literal,
    PathExpr,
    SequenceExpr,
    VarPath,
    VarRef,
)
from repro.xquery.parser import parse_query

Item = object  # Node | AtomicValue | str | int | Decimal
Bindings = dict[str, list[Item]]


class XQueryEvaluator:
    """Evaluates queries against one context document."""

    def __init__(self, document: Node) -> None:
        self._document = document
        self._algebra = StateAlgebra()  # for constructed nodes

    def evaluate(self, query: "str | Expression") -> list[Item]:
        expression = (parse_query(query) if isinstance(query, str)
                      else query)
        return self._eval(expression, {})

    # ------------------------------------------------------------------

    def _eval(self, expression: Expression,
              bindings: Bindings) -> list[Item]:
        if isinstance(expression, PathExpr):
            return list(evaluate_tree(self._document, expression.path))
        if isinstance(expression, VarRef):
            return self._lookup(expression.name, bindings)
        if isinstance(expression, VarPath):
            out: list[Item] = []
            for item in self._lookup(expression.name, bindings):
                if not isinstance(item, Node):
                    raise QueryError(
                        f"${expression.name} holds a non-node; cannot "
                        "apply a path to it")
                out.extend(evaluate_tree(item, expression.path))
            return out
        if isinstance(expression, Literal):
            return [expression.value]
        if isinstance(expression, SequenceExpr):
            out = []
            for part in expression.items:
                out.extend(self._eval(part, bindings))
            return out
        if isinstance(expression, Comparison):
            return [self._compare(expression, bindings)]
        if isinstance(expression, BooleanExpr):
            left = self._boolean(self._eval(expression.left, bindings))
            if expression.operator == "and":
                if not left:
                    return [False]
                return [self._boolean(
                    self._eval(expression.right, bindings))]
            if left:
                return [True]
            return [self._boolean(self._eval(expression.right, bindings))]
        if isinstance(expression, FunctionCall):
            return self._call(expression, bindings)
        if isinstance(expression, Constructor):
            return [self._construct(expression, bindings)]
        if isinstance(expression, Flwor):
            return self._flwor(expression, bindings)
        raise QueryError(f"cannot evaluate {expression!r}")

    @staticmethod
    def _lookup(name: str, bindings: Bindings) -> list[Item]:
        try:
            return bindings[name]
        except KeyError:
            raise QueryError(f"unbound variable ${name}") from None

    # -- FLWOR -----------------------------------------------------------

    def _flwor(self, flwor: Flwor, bindings: Bindings) -> list[Item]:
        tuples = self._bind(flwor.clauses, 0, dict(bindings))
        if flwor.where is not None:
            tuples = (env for env in tuples
                      if self._boolean(self._eval(flwor.where, env)))
        materialized = list(tuples)
        if flwor.order is not None:
            spec = flwor.order

            def key(env: Bindings):
                return _order_key(self._eval(spec.key, env))

            materialized.sort(key=key, reverse=spec.descending)
        out: list[Item] = []
        for env in materialized:
            out.extend(self._eval(flwor.body, env))
        return out

    def _bind(self, clauses, index: int,
              env: Bindings) -> Iterator[Bindings]:
        if index == len(clauses):
            yield dict(env)
            return
        clause = clauses[index]
        if isinstance(clause, LetClause):
            env[clause.variable] = self._eval(clause.value, env)
            yield from self._bind(clauses, index + 1, env)
            del env[clause.variable]
            return
        assert isinstance(clause, ForClause)
        for item in self._eval(clause.source, env):
            env[clause.variable] = [item]
            yield from self._bind(clauses, index + 1, env)
        env.pop(clause.variable, None)

    # -- comparisons ----------------------------------------------------------

    def _compare(self, comparison: Comparison,
                 bindings: Bindings) -> bool:
        left_items = _atomize(self._eval(comparison.left, bindings))
        right_items = _atomize(self._eval(comparison.right, bindings))
        op = comparison.operator
        for left in left_items:
            for right in right_items:
                if _value_compare(left, right, op):
                    return True
        return False

    @staticmethod
    def _boolean(items: list[Item]) -> bool:
        """Effective boolean value: empty=false; single boolean as-is;
        a sequence starting with a node is true; else truthiness of
        the single atomic item."""
        if not items:
            return False
        first = items[0]
        if isinstance(first, Node):
            return True
        if len(items) > 1:
            raise QueryError(
                "effective boolean value of a multi-item atomic "
                "sequence is undefined")
        if isinstance(first, bool):
            return first
        if isinstance(first, AtomicValue):
            return bool(first.value)
        return bool(first)

    # -- functions -----------------------------------------------------------

    def _call(self, call: FunctionCall, bindings: Bindings) -> list[Item]:
        arguments = [self._eval(arg, bindings) for arg in call.arguments]

        def single() -> list[Item]:
            if len(arguments) != 1:
                raise QueryError(
                    f"{call.name}() expects exactly one argument")
            return arguments[0]

        if call.name == "count":
            return [len(single())]
        if call.name == "exists":
            return [len(single()) > 0]
        if call.name == "empty":
            return [len(single()) == 0]
        if call.name == "not":
            return [not self._boolean(single())]
        if call.name == "string":
            items = single()
            if not items:
                return [""]
            return [_string_of(items[0])]
        if call.name == "data":
            return list(_atomize(single()))
        if call.name == "distinct-values":
            seen: list[object] = []
            out: list[Item] = []
            for value in _atomize(single()):
                if not any(value == other for other in seen):
                    seen.append(value)
                    out.append(value)
            return out
        if call.name == "string-join":
            if len(arguments) not in (1, 2):
                raise QueryError("string-join() takes 1 or 2 arguments")
            separator = ""
            if len(arguments) == 2:
                (separator_item,) = arguments[1]
                separator = _string_of(separator_item)
            return [separator.join(_string_of(item)
                                   for item in arguments[0])]
        raise QueryError(f"unknown function {call.name}()")

    # -- constructors ---------------------------------------------------------

    def _construct(self, constructor: Constructor,
                   bindings: Bindings) -> ElementNode:
        element = self._algebra.create_element(
            QName("", constructor.name))
        for child_expr in constructor.children:
            for item in self._eval(child_expr, bindings):
                self._append_content(element, item)
        return element

    def _append_content(self, element: ElementNode, item: Item) -> None:
        algebra = self._algebra
        if isinstance(item, ElementNode):
            algebra.append_child(element, self._copy_element(item))
        elif isinstance(item, TextNode):
            algebra.append_child(element,
                                 algebra.create_text(item.string_value()))
        elif isinstance(item, AttributeNode):
            attribute = algebra.create_attribute(
                item.node_name().head(), item.string_value())
            algebra.attach_attribute(element, attribute)
        elif isinstance(item, DocumentNode):
            algebra.append_child(
                element, self._copy_element(item.document_element()))
        else:
            algebra.append_child(element,
                                 algebra.create_text(_string_of(item)))

    def _copy_element(self, source: ElementNode) -> ElementNode:
        """Deep copy into the evaluator's algebra (XQuery node copy)."""
        algebra = self._algebra
        element = algebra.create_element(source.name)
        for attribute in source.attributes():
            copy = algebra.create_attribute(
                attribute.node_name().head(), attribute.string_value())
            algebra.attach_attribute(element, copy)
        for child in source.children():
            if isinstance(child, ElementNode):
                algebra.append_child(element, self._copy_element(child))
            else:
                algebra.append_child(
                    element, algebra.create_text(child.string_value()))
        return element


# ----------------------------------------------------------------------
# Value helpers


def _atomize(items: list[Item]) -> list[object]:
    out: list[object] = []
    for item in items:
        if isinstance(item, Node):
            out.extend(atomic.value for atomic in fn.data(item))
        elif isinstance(item, AtomicValue):
            out.append(item.value)
        else:
            out.append(item)
    return out


def _string_of(item: Item) -> str:
    if isinstance(item, Node):
        return item.string_value()
    if isinstance(item, AtomicValue):
        return item.type.canonical(item.value)
    if isinstance(item, bool):
        return "true" if item else "false"
    return str(item)


def _as_number(value: object) -> "Decimal | None":
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, Decimal)):
        return Decimal(value)
    if isinstance(value, float):
        return Decimal(str(value))
    if isinstance(value, str):
        try:
            return Decimal(value.strip())
        except InvalidOperation:
            return None
    return None


def _value_compare(left: object, right: object, op: str) -> bool:
    # Numeric comparison when both sides are (convertible to) numbers
    # and at least one side is genuinely numeric.
    if isinstance(left, (int, Decimal, float)) or \
            isinstance(right, (int, Decimal, float)):
        left_number = _as_number(left)
        right_number = _as_number(right)
        if left_number is not None and right_number is not None:
            return _apply(op, left_number, right_number)
        if op == "=":
            return False
        if op == "!=":
            return True
    left_text = left if isinstance(left, str) else _string_of(left)
    right_text = right if isinstance(right, str) else _string_of(right)
    return _apply(op, left_text, right_text)


def _apply(op: str, left, right) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _order_key(items: list[Item]):
    values = _atomize(items)
    if not values:
        return (0, "")
    value = values[0]
    number = _as_number(value)
    if number is not None and not isinstance(value, str):
        return (1, number)
    return (2, _string_of(value))  # type: ignore[arg-type]


def execute(document: Node, query: str) -> list[Item]:
    """Parse and evaluate *query* against *document*."""
    return XQueryEvaluator(document).evaluate(query)


def execute_values(document: Node, query: str) -> list[str]:
    """Like :func:`execute` but stringifies every result item."""
    return [_string_of(item) for item in execute(document, query)]
