"""Evaluation of XQuery-lite over the formal data model.

Values are flat sequences of items: nodes, :class:`AtomicValue`
wrappers, or plain Python scalars from literals.  The semantics is the
"simple semantics of a data manipulation language" the paper's
conclusion sketches, built directly on the accessors:

* paths delegate to :mod:`repro.query`;
* atomization uses ``typed-value``;
* general comparisons are existential over atomized operands, with
  untyped values compared numerically against numbers and as strings
  otherwise (a pragmatic subset of the XPath 2.0 rules);
* FLWOR iterates for-bindings in document order, filters with
  ``where``, sorts with ``order by`` and concatenates ``return`` results;
* element constructors build *new* nodes in a fresh state algebra,
  deep-copying any node content (XQuery's copy semantics).

The evaluator reads the context document exclusively through the
:class:`~repro.xdm.store.NodeStore` protocol, so it runs unchanged
over the state-algebra tree and the Sedna storage: pass a tree
``Node`` (the historical API) or any ``NodeStore``.  Result sequences
then contain the store's own references — tree nodes in one case,
storage descriptors in the other — plus tree nodes for constructed
content, and the evaluator dispatches per item on the owning store.
"""

from __future__ import annotations

from decimal import Decimal, InvalidOperation
from typing import Iterator, Optional

from repro import obs
from repro.errors import QueryError
from repro.xmlio.qname import QName
from repro.xdm.node import ElementNode, Node
from repro.xdm.store import TREE_STORE, NodeStore, Ref, as_node_store
from repro.xsdtypes.base import AtomicValue
from repro.algebra.state import StateAlgebra
from repro.query.engine import evaluate_store
from repro.xquery.ast import (
    BooleanExpr,
    Comparison,
    Constructor,
    Expression,
    Flwor,
    ForClause,
    FunctionCall,
    LetClause,
    Literal,
    PathExpr,
    SequenceExpr,
    VarPath,
    VarRef,
)
from repro.xquery.parser import parse_query

Item = object  # node reference | AtomicValue | str | int | Decimal
Bindings = dict[str, list[Item]]


class XQueryEvaluator:
    """Evaluates queries against one context document — a tree node or
    any :class:`NodeStore`."""

    def __init__(self, document: "Node | NodeStore") -> None:
        self._store = as_node_store(document)
        self._algebra = StateAlgebra()  # for constructed nodes

    def evaluate(self, query: "str | Expression") -> list[Item]:
        expression = (parse_query(query) if isinstance(query, str)
                      else query)
        return self._eval(expression, {})

    def evaluate_values(self, query: "str | Expression") -> list[str]:
        """Like :meth:`evaluate` but stringifies every result item."""
        return [self._string_of(item) for item in self.evaluate(query)]

    # ------------------------------------------------------------------

    def _store_of(self, item: Item) -> Optional[NodeStore]:
        """The store owning *item*, or None for atomic items.

        Constructed and tree nodes belong to the tree interpretation;
        anything the context store recognises (e.g. a storage
        descriptor) belongs to the context store.
        """
        if isinstance(item, Node):
            return TREE_STORE
        if self._store.owns_ref(item):
            return self._store
        return None

    def _eval(self, expression: Expression,
              bindings: Bindings) -> list[Item]:
        if isinstance(expression, PathExpr):
            return list(evaluate_store(self._store, expression.path))
        if isinstance(expression, VarRef):
            return self._lookup(expression.name, bindings)
        if isinstance(expression, VarPath):
            out: list[Item] = []
            for item in self._lookup(expression.name, bindings):
                store = self._store_of(item)
                if store is None:
                    raise QueryError(
                        f"${expression.name} holds a non-node; cannot "
                        "apply a path to it")
                out.extend(evaluate_store(store, expression.path, item))
            return out
        if isinstance(expression, Literal):
            return [expression.value]
        if isinstance(expression, SequenceExpr):
            out = []
            for part in expression.items:
                out.extend(self._eval(part, bindings))
            return out
        if isinstance(expression, Comparison):
            return [self._compare(expression, bindings)]
        if isinstance(expression, BooleanExpr):
            left = self._boolean(self._eval(expression.left, bindings))
            if expression.operator == "and":
                if not left:
                    return [False]
                return [self._boolean(
                    self._eval(expression.right, bindings))]
            if left:
                return [True]
            return [self._boolean(self._eval(expression.right, bindings))]
        if isinstance(expression, FunctionCall):
            return self._call(expression, bindings)
        if isinstance(expression, Constructor):
            return [self._construct(expression, bindings)]
        if isinstance(expression, Flwor):
            return self._flwor(expression, bindings)
        raise QueryError(f"cannot evaluate {expression!r}")

    @staticmethod
    def _lookup(name: str, bindings: Bindings) -> list[Item]:
        try:
            return bindings[name]
        except KeyError:
            raise QueryError(f"unbound variable ${name}") from None

    # -- FLWOR -----------------------------------------------------------

    def _flwor(self, flwor: Flwor, bindings: Bindings) -> list[Item]:
        if obs.ENABLED:
            return self._flwor_traced(flwor, bindings)
        tuples = self._bind(flwor.clauses, 0, dict(bindings))
        if flwor.where is not None:
            tuples = (env for env in tuples
                      if self._boolean(self._eval(flwor.where, env)))
        materialized = list(tuples)
        if flwor.order is not None:
            spec = flwor.order

            def key(env: Bindings):
                return self._order_key(self._eval(spec.key, env))

            materialized.sort(key=key, reverse=spec.descending)
        out: list[Item] = []
        for env in materialized:
            out.extend(self._eval(flwor.body, env))
        return out

    def _flwor_traced(self, flwor: Flwor,
                      bindings: Bindings) -> list[Item]:
        """The instrumented FLWOR: each clause runs under its own span,
        which requires materializing the tuple stream per phase (the
        untraced path above keeps ``where`` lazy instead)."""
        tracer = obs.TRACER
        with tracer.span("xquery.flwor"):
            with tracer.span("xquery.flwor.bind"):
                materialized = list(
                    self._bind(flwor.clauses, 0, dict(bindings)))
            if flwor.where is not None:
                with tracer.span("xquery.flwor.where",
                                 tuples=len(materialized)):
                    materialized = [
                        env for env in materialized
                        if self._boolean(self._eval(flwor.where, env))]
            if flwor.order is not None:
                spec = flwor.order

                def key(env: Bindings):
                    return self._order_key(self._eval(spec.key, env))

                with tracer.span("xquery.flwor.order",
                                 tuples=len(materialized)):
                    materialized.sort(key=key, reverse=spec.descending)
            out: list[Item] = []
            with tracer.span("xquery.flwor.return",
                             tuples=len(materialized)):
                for env in materialized:
                    out.extend(self._eval(flwor.body, env))
        obs.REGISTRY.counter("xquery.flwor.evaluations").inc()
        obs.REGISTRY.counter("xquery.flwor.tuples").inc(len(materialized))
        return out

    def _bind(self, clauses, index: int,
              env: Bindings) -> Iterator[Bindings]:
        if index == len(clauses):
            yield dict(env)
            return
        clause = clauses[index]
        if isinstance(clause, LetClause):
            env[clause.variable] = self._eval(clause.value, env)
            yield from self._bind(clauses, index + 1, env)
            del env[clause.variable]
            return
        assert isinstance(clause, ForClause)
        for item in self._eval(clause.source, env):
            env[clause.variable] = [item]
            yield from self._bind(clauses, index + 1, env)
        env.pop(clause.variable, None)

    # -- comparisons ----------------------------------------------------------

    def _compare(self, comparison: Comparison,
                 bindings: Bindings) -> bool:
        left_items = self._atomize(self._eval(comparison.left, bindings))
        right_items = self._atomize(self._eval(comparison.right,
                                               bindings))
        op = comparison.operator
        for left in left_items:
            for right in right_items:
                if _value_compare(left, right, op):
                    return True
        return False

    def _boolean(self, items: list[Item]) -> bool:
        """Effective boolean value: empty=false; single boolean as-is;
        a sequence starting with a node is true; else truthiness of
        the single atomic item."""
        if not items:
            return False
        first = items[0]
        if self._store_of(first) is not None:
            return True
        if len(items) > 1:
            raise QueryError(
                "effective boolean value of a multi-item atomic "
                "sequence is undefined")
        if isinstance(first, bool):
            return first
        if isinstance(first, AtomicValue):
            return bool(first.value)
        return bool(first)

    # -- value helpers over the owning store ---------------------------------

    def _atomize(self, items: list[Item]) -> list[object]:
        out: list[object] = []
        for item in items:
            store = self._store_of(item)
            if store is not None:
                out.extend(atomic.value
                           for atomic in store.typed_value(item))
            elif isinstance(item, AtomicValue):
                out.append(item.value)
            else:
                out.append(item)
        return out

    def _string_of(self, item: Item) -> str:
        store = self._store_of(item)
        if store is not None:
            return store.string_value(item)
        return _atomic_string(item)

    def _order_key(self, items: list[Item]):
        values = self._atomize(items)
        if not values:
            return (0, "")
        value = values[0]
        number = _as_number(value)
        if number is not None and not isinstance(value, str):
            return (1, number)
        return (2, _atomic_string(value))  # type: ignore[arg-type]

    # -- functions -----------------------------------------------------------

    def _call(self, call: FunctionCall, bindings: Bindings) -> list[Item]:
        arguments = [self._eval(arg, bindings) for arg in call.arguments]

        def single() -> list[Item]:
            if len(arguments) != 1:
                raise QueryError(
                    f"{call.name}() expects exactly one argument")
            return arguments[0]

        if call.name == "count":
            return [len(single())]
        if call.name == "exists":
            return [len(single()) > 0]
        if call.name == "empty":
            return [len(single()) == 0]
        if call.name == "not":
            return [not self._boolean(single())]
        if call.name == "string":
            items = single()
            if not items:
                return [""]
            return [self._string_of(items[0])]
        if call.name == "data":
            return list(self._atomize(single()))
        if call.name == "distinct-values":
            seen: list[object] = []
            out: list[Item] = []
            for value in self._atomize(single()):
                if not any(value == other for other in seen):
                    seen.append(value)
                    out.append(value)
            return out
        if call.name == "string-join":
            if len(arguments) not in (1, 2):
                raise QueryError("string-join() takes 1 or 2 arguments")
            separator = ""
            if len(arguments) == 2:
                (separator_item,) = arguments[1]
                separator = self._string_of(separator_item)
            return [separator.join(self._string_of(item)
                                   for item in arguments[0])]
        raise QueryError(f"unknown function {call.name}()")

    # -- constructors ---------------------------------------------------------

    def _construct(self, constructor: Constructor,
                   bindings: Bindings) -> ElementNode:
        element = self._algebra.create_element(
            QName("", constructor.name))
        for child_expr in constructor.children:
            for item in self._eval(child_expr, bindings):
                self._append_content(element, item)
        return element

    def _append_content(self, element: ElementNode, item: Item) -> None:
        algebra = self._algebra
        store = self._store_of(item)
        if store is None:
            algebra.append_child(
                element, algebra.create_text(self._string_of(item)))
            return
        kind = store.node_kind(item)
        if kind == "element":
            algebra.append_child(element, self._copy_element(store, item))
        elif kind == "text":
            algebra.append_child(
                element, algebra.create_text(store.string_value(item)))
        elif kind == "attribute":
            attribute = algebra.create_attribute(
                store.node_name(item), store.string_value(item))
            algebra.attach_attribute(element, attribute)
        else:  # a document: its element content is copied
            algebra.append_child(
                element,
                self._copy_element(store, store.document_element(item)))

    def _copy_element(self, store: NodeStore, source: Ref) -> ElementNode:
        """Deep copy into the evaluator's algebra (XQuery node copy)."""
        algebra = self._algebra
        element = algebra.create_element(store.node_name(source))
        for attribute in store.attributes(source):
            copy = algebra.create_attribute(
                store.node_name(attribute), store.string_value(attribute))
            algebra.attach_attribute(element, copy)
        for child in store.children(source):
            if store.node_kind(child) == "element":
                algebra.append_child(element,
                                     self._copy_element(store, child))
            else:
                algebra.append_child(
                    element,
                    algebra.create_text(store.string_value(child)))
        return element


# ----------------------------------------------------------------------
# Value helpers


def _atomic_string(item: Item) -> str:
    if isinstance(item, Node):
        return item.string_value()
    if isinstance(item, AtomicValue):
        return item.type.canonical(item.value)
    if isinstance(item, bool):
        return "true" if item else "false"
    return str(item)


def _as_number(value: object) -> "Decimal | None":
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, Decimal)):
        return Decimal(value)
    if isinstance(value, float):
        return Decimal(str(value))
    if isinstance(value, str):
        try:
            return Decimal(value.strip())
        except InvalidOperation:
            return None
    return None


def _value_compare(left: object, right: object, op: str) -> bool:
    # Numeric comparison when both sides are (convertible to) numbers
    # and at least one side is genuinely numeric.
    if isinstance(left, (int, Decimal, float)) or \
            isinstance(right, (int, Decimal, float)):
        left_number = _as_number(left)
        right_number = _as_number(right)
        if left_number is not None and right_number is not None:
            return _apply(op, left_number, right_number)
        if op == "=":
            return False
        if op == "!=":
            return True
    left_text = left if isinstance(left, str) else _atomic_string(left)
    right_text = right if isinstance(right, str) else _atomic_string(right)
    return _apply(op, left_text, right_text)


def _apply(op: str, left, right) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def execute(document: "Node | NodeStore", query: str) -> list[Item]:
    """Parse and evaluate *query* against *document* (a tree node or
    any ``NodeStore``)."""
    return XQueryEvaluator(document).evaluate(query)


def execute_values(document: "Node | NodeStore",
                   query: str) -> list[str]:
    """Like :func:`execute` but stringifies every result item."""
    return XQueryEvaluator(document).evaluate_values(query)
