"""Recursive-descent parser for XQuery-lite."""

from __future__ import annotations

from decimal import Decimal

from repro.errors import QueryError
from repro.query.cache import cached_parse_path as parse_path
from repro.xquery.ast import (
    BooleanExpr,
    Comparison,
    Constructor,
    Expression,
    Flwor,
    ForClause,
    FunctionCall,
    LetClause,
    Literal,
    OrderSpec,
    PathExpr,
    SequenceExpr,
    VarPath,
    VarRef,
)
from repro.xquery.lexer import Token, tokenize

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

#: Functions the evaluator provides (subset of fn:*).
KNOWN_FUNCTIONS = frozenset((
    "count", "string", "data", "distinct-values", "string-join",
    "exists", "empty", "not",
))


class _Cursor:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self) -> Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self._index += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self.peek()
        if token is None or token.kind != kind:
            return None
        if text is not None and token.text != text:
            return None
        self._index += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            actual = self.peek()
            wanted = text or kind
            raise QueryError(
                f"expected {wanted!r}, got "
                f"{actual.text if actual else 'end of query'!r}")
        return token

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)


class XQueryParser:
    """Parses one query string into the AST."""

    def parse(self, source: str) -> Expression:
        cursor = _Cursor(tokenize(source))
        expression = self._expr(cursor)
        if not cursor.at_end():
            leftover = cursor.peek()
            raise QueryError(
                f"unexpected trailing input {leftover.text!r}")
        return expression

    # ------------------------------------------------------------------

    def _expr(self, cursor: _Cursor) -> Expression:
        token = cursor.peek()
        if token is not None and token.kind == "keyword" and \
                token.text in ("for", "let"):
            return self._flwor(cursor)
        return self._or_expr(cursor)

    def _flwor(self, cursor: _Cursor) -> Flwor:
        clauses: list[ForClause | LetClause] = []
        while True:
            token = cursor.peek()
            if token is None or token.kind != "keyword":
                break
            if token.text == "for":
                cursor.next()
                while True:
                    variable = cursor.expect("variable").text
                    cursor.expect("keyword", "in")
                    clauses.append(ForClause(variable,
                                             self._or_expr(cursor)))
                    if not cursor.accept("punct", ","):
                        break
            elif token.text == "let":
                cursor.next()
                while True:
                    variable = cursor.expect("variable").text
                    cursor.expect("assign")
                    clauses.append(LetClause(variable,
                                             self._or_expr(cursor)))
                    if not cursor.accept("punct", ","):
                        break
            else:
                break
        if not clauses:
            raise QueryError("FLWOR needs at least one for/let clause")
        where = None
        if cursor.accept("keyword", "where"):
            where = self._or_expr(cursor)
        order = None
        if cursor.accept("keyword", "order"):
            cursor.expect("keyword", "by")
            key = self._or_expr(cursor)
            descending = bool(cursor.accept("keyword", "descending"))
            if not descending:
                cursor.accept("keyword", "ascending")
            order = OrderSpec(key, descending)
        cursor.expect("keyword", "return")
        body = self._expr(cursor)
        return Flwor(tuple(clauses), where, order, body)

    def _or_expr(self, cursor: _Cursor) -> Expression:
        left = self._and_expr(cursor)
        while cursor.accept("keyword", "or"):
            left = BooleanExpr("or", left, self._and_expr(cursor))
        return left

    def _and_expr(self, cursor: _Cursor) -> Expression:
        left = self._comparison(cursor)
        while cursor.accept("keyword", "and"):
            left = BooleanExpr("and", left, self._comparison(cursor))
        return left

    def _comparison(self, cursor: _Cursor) -> Expression:
        left = self._primary(cursor)
        token = cursor.peek()
        if token is not None and token.kind == "comparison":
            cursor.next()
            right = self._primary(cursor)
            return Comparison(token.text, left, right)
        return left

    def _primary(self, cursor: _Cursor) -> Expression:
        token = cursor.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        if token.kind == "path":
            cursor.next()
            return PathExpr(parse_path(token.text))
        if token.kind == "variable":
            cursor.next()
            follow = cursor.peek()
            if follow is not None and follow.kind == "path":
                cursor.next()
                return VarPath(token.text, parse_path(follow.text))
            return VarRef(token.text)
        if token.kind == "string":
            cursor.next()
            return Literal(token.text)
        if token.kind == "number":
            cursor.next()
            if "." in token.text:
                return Literal(Decimal(token.text))
            return Literal(int(token.text))
        if token.kind == "name":
            return self._function_call(cursor)
        if token.kind == "start_tag":
            return self._constructor(cursor)
        if token.kind == "punct" and token.text == "(":
            cursor.next()
            items = [self._or_expr(cursor)]
            while cursor.accept("punct", ","):
                items.append(self._or_expr(cursor))
            cursor.expect("punct", ")")
            if len(items) == 1:
                return items[0]
            return SequenceExpr(tuple(items))
        raise QueryError(f"unexpected token {token.text!r}")

    def _function_call(self, cursor: _Cursor) -> FunctionCall:
        name = cursor.expect("name").text
        if name not in KNOWN_FUNCTIONS:
            raise QueryError(f"unknown function {name}()")
        cursor.expect("punct", "(")
        arguments: list[Expression] = []
        if not cursor.accept("punct", ")"):
            arguments.append(self._or_expr(cursor))
            while cursor.accept("punct", ","):
                arguments.append(self._or_expr(cursor))
            cursor.expect("punct", ")")
        return FunctionCall(name, tuple(arguments))

    def _constructor(self, cursor: _Cursor) -> Constructor:
        open_token = cursor.expect("start_tag")
        children: list[Expression] = []
        while True:
            token = cursor.peek()
            if token is None:
                raise QueryError(
                    f"unterminated constructor <{open_token.text}>")
            if token.kind == "close_tag":
                cursor.next()
                if token.text != open_token.text:
                    raise QueryError(
                        f"</{token.text}> does not close "
                        f"<{open_token.text}>")
                return Constructor(open_token.text, tuple(children))
            if token.kind == "punct" and token.text == "{":
                cursor.next()
                children.append(self._or_expr(cursor))
                cursor.expect("punct", "}")
            elif token.kind == "start_tag":
                children.append(self._constructor(cursor))
            else:
                raise QueryError(
                    "constructor content must be {expressions} or "
                    f"nested constructors, got {token.text!r}")


def parse_query(source: str) -> Expression:
    """Parse *source* into the XQuery-lite AST."""
    return XQueryParser().parse(source)
