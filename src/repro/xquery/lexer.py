"""Tokenizer for the XQuery-lite language.

The paper's conclusion announces "defining a simple semantics of a
data manipulation language like XQuery" as the next step; this package
is that step, scoped to FLWOR expressions over the path language:

* ``for $x in <expr>`` (several, comma-separated),
* ``let $y := <expr>``,
* ``where <comparison>``,
* ``order by <expr> [ascending|descending]``,
* ``return <expr>`` with element constructors.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import QueryError

KEYWORDS = frozenset((
    "for", "let", "where", "order", "by", "return", "in",
    "ascending", "descending", "and", "or",
))

_TOKEN_RX = re.compile(r"""
    (?P<ws>\s+)
  | (?P<number>\d+(\.\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<assign>:=)
  | (?P<comparison>!=|<=|>=|=|<(?![a-zA-Z/])|>)
  | (?P<variable>\$[A-Za-z_][\w-]*)
  | (?P<path>//?(?:text\(\)|\[[^\]]*\]|[^\s,(){}<>=!\[\]])+)
  | (?P<name>[A-Za-z_][\w-]*)
  | (?P<open_tag></?[A-Za-z_][\w-]*\s*>)
  | (?P<punct>[(),{}])
""", re.VERBOSE)


@dataclass(frozen=True)
class Token:
    """One lexical token: a kind tag, the text, and its offset."""

    kind: str
    text: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> list[Token]:
    """Split *source* into tokens; raises QueryError on junk."""
    tokens: list[Token] = []
    position = 0
    length = len(source)
    while position < length:
        match = _TOKEN_RX.match(source, position)
        if match is None:
            raise QueryError(
                f"unexpected character {source[position]!r} at "
                f"offset {position}")
        kind = match.lastgroup or ""
        text = match.group()
        position = match.end()
        if kind == "ws":
            continue
        if kind == "name" and text in KEYWORDS:
            kind = "keyword"
        if kind == "string":
            text = text[1:-1]
        if kind == "variable":
            text = text[1:]
        if kind == "open_tag":
            # Distinguish <name> / </name> constructor delimiters.
            kind = "close_tag" if text.startswith("</") else "start_tag"
            text = text.strip("</> \t")
        tokens.append(Token(kind, text, match.start()))
    return tokens
