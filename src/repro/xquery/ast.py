"""Abstract syntax of the XQuery-lite language."""

from __future__ import annotations

from dataclasses import dataclass
from decimal import Decimal
from typing import Union

from repro.query.paths import Path

Expression = Union[
    "PathExpr", "VarRef", "VarPath", "Literal", "Comparison",
    "BooleanExpr", "FunctionCall", "Constructor", "Flwor", "SequenceExpr",
]


@dataclass(frozen=True)
class PathExpr:
    """An absolute path evaluated against the context document."""

    path: Path


@dataclass(frozen=True)
class VarRef:
    """``$name``."""

    name: str


@dataclass(frozen=True)
class VarPath:
    """``$name/rel/ative/path`` — a path applied to a binding."""

    name: str
    path: Path


@dataclass(frozen=True)
class Literal:
    """A string or numeric literal."""

    value: "str | int | Decimal"


@dataclass(frozen=True)
class Comparison:
    """A general comparison: existential over atomized operands."""

    operator: str  # "=", "!=", "<", "<=", ">", ">="
    left: Expression
    right: Expression


@dataclass(frozen=True)
class BooleanExpr:
    """``and`` / ``or`` over comparisons."""

    operator: str  # "and" | "or"
    left: Expression
    right: Expression


@dataclass(frozen=True)
class FunctionCall:
    """A call to one of the fn:* primitives."""

    name: str
    arguments: tuple[Expression, ...]


@dataclass(frozen=True)
class Constructor:
    """``<name>{expr}...</name>`` — a direct element constructor whose
    content is a sequence of embedded expressions and nested
    constructors."""

    name: str
    children: tuple[Expression, ...]


@dataclass(frozen=True)
class ForClause:
    variable: str
    source: Expression


@dataclass(frozen=True)
class LetClause:
    variable: str
    value: Expression


@dataclass(frozen=True)
class OrderSpec:
    key: Expression
    descending: bool = False


@dataclass(frozen=True)
class Flwor:
    """The FLWOR expression."""

    clauses: tuple["ForClause | LetClause", ...]
    where: "Expression | None"
    order: "OrderSpec | None"
    body: Expression


@dataclass(frozen=True)
class SequenceExpr:
    """``(e1, e2, ...)`` — sequence concatenation."""

    items: tuple[Expression, ...]
