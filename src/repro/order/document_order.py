"""Document order — the ``<<`` relation of Section 7.

The paper orders a tree ``s`` as follows: the document node precedes
its element child; every element precedes its attributes; attributes
precede the element's children; and the subtrees of consecutive
children are ordered blockwise (``tree(end_j) << tree(end_{j+1})``).

Three implementations are provided, all agreeing:

* :func:`document_order` — the ordered node list by one traversal,
* :class:`DocumentOrderIndex` — an O(1) comparator after O(n) setup,
* :func:`before` — a pure structural comparison that walks parent
  chains (no precomputation), the baseline the numbering-scheme
  benchmarks compare against.

The traversal and the precomputed index are stated over the
:class:`~repro.xdm.store.NodeStore` protocol
(:func:`store_document_order`, :class:`StoreOrderIndex`), so they run
unchanged over the state-algebra tree and the Sedna storage; the
Node-typed functions below are the tree specializations kept for the
historical API.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.errors import ModelError
from repro.xdm.node import AttributeNode, Node
from repro.xdm.store import TREE_STORE, NodeStore, Ref


def store_document_order(store: NodeStore,
                         root: Ref = None) -> list[Ref]:
    """The document-ordered reference list of (the subtree at) *root*
    in *store* — the §7 traversal over any accessor-protocol model."""
    return list(store.iter_document_order(root))


class StoreOrderIndex:
    """Precomputed positions for O(1) document-order comparison over
    any :class:`NodeStore` (positions are keyed on the store's stable
    node keys)."""

    def __init__(self, store: NodeStore, root: Ref = None) -> None:
        self._store = store
        self._positions: dict[Hashable, int] = {
            store.node_key(ref): position
            for position, ref in enumerate(
                store.iter_document_order(root))}

    def position(self, ref: Ref) -> int:
        try:
            return self._positions[self._store.node_key(ref)]
        except KeyError:
            raise ModelError(f"{ref!r} is not in the indexed tree") \
                from None

    def before(self, first: Ref, second: Ref) -> bool:
        return self.position(first) < self.position(second)

    def compare(self, first: Ref, second: Ref) -> int:
        delta = self.position(first) - self.position(second)
        if delta == 0:
            return 0
        return -1 if delta < 0 else 1

    def __len__(self) -> int:
        return len(self._positions)


def iter_document_order(root: Node) -> Iterator[Node]:
    """All nodes of the tree rooted at *root*, in document order."""
    return TREE_STORE.iter_document_order(root)


def document_order(root: Node) -> list[Node]:
    """The document-ordered node list of the tree rooted at *root*."""
    return list(iter_document_order(root))


def iter_subtree_elements(root: Node) -> Iterator[Node]:
    """The subtree of *root* in document order, attributes skipped.

    This is the building block of the ``following`` axis: XPath's
    ``following`` excludes attribute nodes, so axes built from this
    iterator never materialize node sets just to filter them out
    again.
    """
    yield root
    for child in root.children():
        yield from iter_subtree_elements(child)


def iter_subtree_elements_reversed(root: Node) -> Iterator[Node]:
    """The subtree of *root* in **reverse** document order, attributes
    skipped — the building block of the ``preceding`` axis."""
    for child in reversed(list(root.children())):
        yield from iter_subtree_elements_reversed(child)
    yield root


def _order_path(node: Node) -> tuple[tuple[int, int], ...]:
    """The root-to-node position path.

    Each step is ``(slot, index)``: slot 0 for attributes, slot 1 for
    children, so attributes sort before children of the same element,
    and a prefix (an ancestor) sorts before its descendants.
    """
    steps: list[tuple[int, int]] = []
    current = node
    parent = current.parent_or_none()
    while parent is not None:
        if isinstance(current, AttributeNode):
            attributes = list(parent.attributes())
            steps.append((0, _index_of(attributes, current)))
        else:
            children = list(parent.children())
            steps.append((1, _index_of(children, current)))
        current = parent
        parent = current.parent_or_none()
    steps.reverse()
    return tuple(steps)


def _index_of(nodes: list[Node], target: Node) -> int:
    for index, node in enumerate(nodes):
        if node is target:
            return index
    raise ModelError(f"{target!r} not found among its parent's nodes")


def before(first: Node, second: Node) -> bool:
    """``first << second`` by structural comparison (parent-chain walk).

    Both nodes must belong to the same tree; comparing a node with
    itself yields False (``<<`` is strict).
    """
    if first is second:
        return False
    path_a = _order_path(first)
    path_b = _order_path(second)
    if first.root() is not second.root():
        raise ModelError("nodes belong to different trees")
    return path_a < path_b


def compare(first: Node, second: Node) -> int:
    """-1, 0 or 1 as *first* precedes, is, or follows *second*."""
    if first is second:
        return 0
    return -1 if before(first, second) else 1


class DocumentOrderIndex(StoreOrderIndex):
    """Precomputed positions for O(1) document-order comparison — the
    tree specialization of :class:`StoreOrderIndex`."""

    def __init__(self, root: Node) -> None:
        super().__init__(TREE_STORE, root)


def tree_before(first: Node, second: Node) -> bool:
    """The paper's ``tree(nd1) << tree(nd2)``: every node of the first
    subtree precedes every node of the second."""
    first_nodes = document_order(first)
    second_nodes = document_order(second)
    last_of_first = first_nodes[-1]
    first_of_second = second_nodes[0]
    return before(last_of_first, first_of_second)


def is_total_order(root: Node) -> bool:
    """Check that ``<<`` is a strict total order on the tree (used by
    the property tests)."""
    nodes = document_order(root)
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            if not before(a, b) or before(b, a):
                return False
        if before(a, a):
            return False
    return True
