"""Document order (Section 7): the << relation and its implementations."""

from repro.order.document_order import (
    DocumentOrderIndex,
    StoreOrderIndex,
    before,
    compare,
    document_order,
    is_total_order,
    iter_document_order,
    iter_subtree_elements,
    iter_subtree_elements_reversed,
    store_document_order,
    tree_before,
)

__all__ = [
    "DocumentOrderIndex",
    "StoreOrderIndex",
    "store_document_order",
    "before",
    "compare",
    "document_order",
    "is_total_order",
    "iter_document_order",
    "iter_subtree_elements",
    "iter_subtree_elements_reversed",
    "tree_before",
]
