"""Observability: metrics, events, span tracing and query EXPLAIN.

Zero-dependency and process-local, in **two tiers**:

* **Telemetry** (:data:`TELEMETRY`, *on by default*) — the production
  tier: lock-cheap counters and windowed histograms (p50/p95/p99)
  across WAL appends, transaction commits, checkpoints, recovery
  replay, index maintenance and compiled-query execution.  Overhead
  is a measured budget (< 5% on cached-query ops; see
  ``BENCH_query.json`` ``obs_overhead``), so it stays on in
  production — the numbers ``repro metrics --prom`` and ``repro top``
  serve.
* **Diagnostics** (:data:`ENABLED`, off by default) — the deep tier:
  span tracing, per-query EXPLAIN collection and the explain log.
  These allocate per operation, so they are for investigations, not
  steady state.

Four facilities share the switches:

* :data:`REGISTRY` — the process metrics registry
  (:class:`~repro.obs.metrics.MetricsRegistry`): counters, gauges,
  histograms with snapshot/reset and Prometheus exposition;
* :data:`EVENTS` — the structured event log
  (:class:`~repro.obs.events.EventLog`): JSON-lines records with
  severity and monotonic timestamps — home of the slow-query log;
* :data:`TRACER` — the span tracer
  (:class:`~repro.obs.tracing.Tracer`): nested wall-time spans with
  tags, an in-memory recorder, a human dump and Chrome-trace export;
* :data:`EXPLAINS` — the query EXPLAIN log
  (:class:`~repro.obs.explain.ExplainLog`): per-query plan strategy,
  cache hit/miss, axis steps and nodes visited/returned.

Hot-path guards: counter/histogram sites test :data:`RECORDING`
(true when either tier is on — one attribute test when everything is
off); span and EXPLAIN sites test :data:`ENABLED` (or the explain
module's ``ACTIVE is None`` protocol on the innermost kernel).
Inherent counters (the LRU caches) use registry instruments directly
because counting is their job, enabled or not.

The **slow-query log** arms through
:func:`set_slow_query_threshold`: with a threshold set, every
evaluation collects its EXPLAIN and any query over budget emits a
``query.slow`` event to :data:`EVENTS` carrying the complete record.

Typical use::

    from repro import obs

    obs.enable()            # diagnostics on top of telemetry
    ...                     # run queries / updates / checks
    print(obs.REGISTRY.snapshot())
    print(obs.TRACER.dump())
    obs.disable()           # telemetry stays on
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import (
    DEFAULT_EVENT_LIMIT,
    EventLog,
    EventRecord,
)
from repro.obs.explain import (
    DEFAULT_EXPLAIN_LIMIT,
    ExplainLog,
    QueryExplain,
    collect,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.statistics import NodeStats, StatisticsCollector
from repro.obs.tracing import DEFAULT_SPAN_LIMIT, SpanRecord, Tracer

#: The diagnostics switch (spans + EXPLAIN collection).  Read directly
#: (``obs.ENABLED``) on hot paths; flip only through
#: :func:`enable`/:func:`disable` so the derived flags stay in sync.
ENABLED = False

#: The always-on production tier: counters and windowed histograms.
#: Flip only through :func:`set_telemetry`.
TELEMETRY = True

#: ``ENABLED or TELEMETRY`` — the one attribute counter sites test.
#: Derived; never assign it directly.
RECORDING = True

#: Slow-query threshold in nanoseconds, or ``None`` (disarmed).  Set
#: through :func:`set_slow_query_threshold`.
SLOW_QUERY_NS: Optional[int] = None

#: The process metrics registry.
REGISTRY = MetricsRegistry()

#: The process structured event log (slow queries, checkpoints, …).
EVENTS = EventLog()

#: The process span tracer (enabled/disabled with diagnostics).
TRACER = Tracer()

#: The process query-EXPLAIN log.
EXPLAINS = ExplainLog()


def _derive() -> None:
    global RECORDING
    RECORDING = ENABLED or TELEMETRY


def enable(tracing: bool = True) -> None:
    """Turn diagnostics on (EXPLAIN collection; *tracing* optional)."""
    global ENABLED
    ENABLED = True
    TRACER.enabled = tracing
    _derive()


def disable() -> None:
    """Turn diagnostics off (telemetry keeps its own switch)."""
    global ENABLED
    ENABLED = False
    TRACER.enabled = False
    _derive()


def set_telemetry(on: bool) -> None:
    """Switch the always-on tier (off only for overhead measurement
    and hermetic zero-count tests)."""
    global TELEMETRY
    TELEMETRY = bool(on)
    _derive()


def set_slow_query_threshold(seconds: Optional[float]) -> None:
    """Arm (or with ``None`` disarm) the slow-query log.

    Any evaluation slower than *seconds* emits a ``query.slow`` event
    to :data:`EVENTS` carrying its complete EXPLAIN record.
    """
    global SLOW_QUERY_NS
    SLOW_QUERY_NS = None if seconds is None else int(seconds * 1e9)


def is_enabled() -> bool:
    return ENABLED


def reset() -> None:
    """Zero counters, drop spans/events/explains; keep the switches."""
    REGISTRY.reset()
    TRACER.reset()
    EXPLAINS.reset()
    EVENTS.reset()


def snapshot() -> dict:
    """The registry snapshot (the ``metrics`` payload of reports)."""
    return REGISTRY.snapshot()


__all__ = [
    "Counter",
    "DEFAULT_EVENT_LIMIT",
    "DEFAULT_EXPLAIN_LIMIT",
    "DEFAULT_SPAN_LIMIT",
    "ENABLED",
    "EVENTS",
    "EXPLAINS",
    "EventLog",
    "EventRecord",
    "ExplainLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NodeStats",
    "QueryExplain",
    "RECORDING",
    "REGISTRY",
    "SLOW_QUERY_NS",
    "SpanRecord",
    "StatisticsCollector",
    "TELEMETRY",
    "TRACER",
    "Tracer",
    "collect",
    "disable",
    "enable",
    "is_enabled",
    "render_prometheus",
    "reset",
    "set_slow_query_threshold",
    "set_telemetry",
    "snapshot",
]
