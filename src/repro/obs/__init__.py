"""Observability: metrics, span tracing and query EXPLAIN.

Zero-dependency, process-local, **off by default**.  The paper's
operational claims — §6.2 conformance checking, the §9 block and
descriptor layout, §9.3 Proposition 1 ("labels survive updates without
global relabeling") — are machinery this repository previously ran
blind; this package is the substrate that counts them.

Three facilities share one on/off switch:

* :data:`REGISTRY` — the process metrics registry
  (:class:`~repro.obs.metrics.MetricsRegistry`): counters, gauges,
  histograms with snapshot/reset;
* :data:`TRACER` — the span tracer
  (:class:`~repro.obs.tracing.Tracer`): nested wall-time spans with
  tags, an in-memory recorder and a human-readable dump;
* :data:`EXPLAINS` — the query EXPLAIN log
  (:class:`~repro.obs.explain.ExplainLog`): per-query plan strategy,
  cache hit/miss, axis steps and nodes visited/returned.

The switch is the module attribute :data:`ENABLED`.  Instrumented hot
paths guard with ``if obs.ENABLED:`` (one attribute test when off) or,
on the innermost query kernel, with the explain module's ``ACTIVE is
None`` test; inherent counters (the LRU caches) use registry
instruments directly because counting is their job, enabled or not.

Typical use::

    from repro import obs

    obs.enable()
    ...  # run queries / updates / checks
    print(obs.REGISTRY.snapshot())
    print(obs.TRACER.dump())
    obs.disable()
"""

from __future__ import annotations

from repro.obs.explain import (
    DEFAULT_EXPLAIN_LIMIT,
    ExplainLog,
    QueryExplain,
    collect,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import DEFAULT_SPAN_LIMIT, SpanRecord, Tracer

#: The master switch.  Read directly (``obs.ENABLED``) on hot paths;
#: flip only through :func:`enable`/:func:`disable` so the tracer's own
#: flag stays in sync.
ENABLED = False

#: The process metrics registry.
REGISTRY = MetricsRegistry()

#: The process span tracer (enabled/disabled together with the rest).
TRACER = Tracer()

#: The process query-EXPLAIN log.
EXPLAINS = ExplainLog()


def enable(tracing: bool = True) -> None:
    """Turn instrumentation on (metrics + explain; *tracing* optional)."""
    global ENABLED
    ENABLED = True
    TRACER.enabled = tracing


def disable() -> None:
    """Turn instrumentation off (the default state)."""
    global ENABLED
    ENABLED = False
    TRACER.enabled = False


def is_enabled() -> bool:
    return ENABLED


def reset() -> None:
    """Zero counters, drop spans and explain records; keep the switch."""
    REGISTRY.reset()
    TRACER.reset()
    EXPLAINS.reset()


def snapshot() -> dict:
    """The registry snapshot (the ``metrics`` payload of reports)."""
    return REGISTRY.snapshot()


__all__ = [
    "Counter",
    "DEFAULT_EXPLAIN_LIMIT",
    "DEFAULT_SPAN_LIMIT",
    "EXPLAINS",
    "ENABLED",
    "ExplainLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryExplain",
    "REGISTRY",
    "SpanRecord",
    "TRACER",
    "Tracer",
    "collect",
    "disable",
    "enable",
    "is_enabled",
    "reset",
    "snapshot",
]
