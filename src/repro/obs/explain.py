"""Query EXPLAIN: per-query execution records for the storage engine.

One :class:`QueryExplain` captures what the §9 query stack actually
did for a single evaluation: which plan strategy the planner chose,
whether the plan/parse caches hit, how many descriptive-schema nodes
the plan scans (and how many structural pruning discarded), how many
axis steps were navigated, and the nodes *visited* versus *returned* —
the node-visit accounting that Koch's complexity results and the
navigational-expressiveness literature tie evaluation cost to.

The recording protocol is deliberately passive so the hot path stays
hot: :data:`ACTIVE` is a module global that is ``None`` whenever no
explain is being collected.  Instrumented sites (the navigation kernel,
plan execution, the planner) read it once and add to its counters only
when it is not ``None`` — the disabled cost is one ``is None`` test.

``StorageQueryEngine.evaluate`` opens a collection scope with
:func:`collect` when observability is enabled and appends the finished
record to the process :class:`ExplainLog` (``repro explain`` and the
benchmark harness read it back).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

#: Default bound on retained explain records.
DEFAULT_EXPLAIN_LIMIT = 256


class QueryExplain:
    """The execution record of one query evaluation."""

    __slots__ = ("path", "strategy", "plan_cache", "parse_cache",
                 "schema_nodes_scanned", "pruned_schema_nodes",
                 "axis_steps", "nodes_visited", "nodes_returned",
                 "elapsed_s", "index_used", "compiled", "stage_ns",
                 "not_lowerable_reason", "cost_table",
                 "cost_estimated_rows", "cost_total")

    def __init__(self, path: str) -> None:
        self.path = path
        #: "empty" | "index" | "scan" | "hybrid" | "naive"
        #: (set by the planner).
        self.strategy = ""
        #: "value:<path>" / "path:<path>" when a secondary index
        #: answered the decisive step, "" otherwise.
        self.index_used = ""
        #: "hit" | "miss" | "invalidated" (stale plan dropped, then miss).
        self.plan_cache = ""
        #: "hit" | "miss" | "" (plans passed as Path objects skip parse).
        self.parse_cache = ""
        self.schema_nodes_scanned = 0
        self.pruned_schema_nodes = 0
        self.axis_steps = 0
        self.nodes_visited = 0
        self.nodes_returned = 0
        self.elapsed_s = 0.0
        #: True when the evaluation ran a lowered closure chain
        #: (:mod:`repro.query.compiled`) rather than the interpreted
        #: plan dispatch.
        self.compiled = False
        #: Per-stage ``(name, elapsed_ns)`` pairs of the closure chain,
        #: source first; empty for interpreted runs.
        self.stage_ns: list = []
        #: Why lowering declined this plan (empty when the plan
        #: compiled, or no lowering was attempted yet).
        self.not_lowerable_reason = ""
        #: Per-candidate cost estimates from the cost-based planner
        #: (one dict per candidate, the chosen one flagged); empty
        #: when the plan was picked structurally.
        self.cost_table: list = []
        #: The chosen candidate's estimated output cardinality and
        #: total cost units — printed next to the observed rows and
        #: elapsed time for calibration.  None without a cost model.
        self.cost_estimated_rows: float | None = None
        self.cost_total: float | None = None

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "strategy": self.strategy,
            "index_used": self.index_used,
            "plan_cache": self.plan_cache,
            "parse_cache": self.parse_cache,
            "schema_nodes_scanned": self.schema_nodes_scanned,
            "pruned_schema_nodes": self.pruned_schema_nodes,
            "axis_steps": self.axis_steps,
            "nodes_visited": self.nodes_visited,
            "nodes_returned": self.nodes_returned,
            "elapsed_s": self.elapsed_s,
            "compiled": self.compiled,
            "not_lowerable_reason": self.not_lowerable_reason,
            "stage_ns": [[name, elapsed] for name, elapsed
                         in self.stage_ns],
            "cost_table": list(self.cost_table),
            "cost_estimated_rows": self.cost_estimated_rows,
            "cost_total": self.cost_total,
        }

    def render(self) -> str:
        """The human-readable EXPLAIN block for the CLI."""
        lines = [
            f"query:                {self.path}",
            f"  plan strategy:      {self.strategy or '?'}",
            f"  index used:         {self.index_used or 'none'}",
            f"  plan cache:         {self.plan_cache or 'bypassed'}",
            f"  parse cache:        {self.parse_cache or 'bypassed'}",
            f"  schema nodes:       {self.schema_nodes_scanned} scanned, "
            f"{self.pruned_schema_nodes} pruned",
            f"  axis steps:         {self.axis_steps}",
            f"  nodes visited:      {self.nodes_visited}",
            f"  nodes returned:     {self.nodes_returned}",
            f"  elapsed:            {self.elapsed_s * 1e3:.3f}ms",
            f"  compiled:           {'yes' if self.compiled else 'no'}",
        ]
        if not self.compiled and self.not_lowerable_reason:
            lines.append(
                f"  not lowerable:      {self.not_lowerable_reason}")
        for name, elapsed_ns in self.stage_ns:
            lines.append(
                f"    stage {name + ':':<22}{elapsed_ns / 1e6:.3f}ms")
        if self.cost_table:
            lines.append("  cost candidates:    "
                         "(chosen marked ->, abstract units)")
            for row in self.cost_table:
                marker = "->" if row.get("chosen") else "  "
                label = row.get("strategy", "?")
                if row.get("index_used"):
                    label += f"[{row['index_used']}]"
                lines.append(
                    f"    {marker} {label:<40}"
                    f"total={row.get('total', 0):>10.1f}  "
                    f"blocks={row.get('blocks', 0):>6.1f}  "
                    f"postings={row.get('postings', 0):>8.1f}  "
                    f"residual={row.get('residual', 0):>8.1f}  "
                    f"out={row.get('output_rows', 0):>8.1f}")
            lines.append(
                f"  cost calibration:   estimated "
                f"{self.cost_estimated_rows:.1f} rows vs "
                f"{self.nodes_returned} observed; "
                f"{self.cost_total:.1f} units vs "
                f"{self.elapsed_s * 1e9:.0f}ns observed")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"QueryExplain({self.path!r}, {self.strategy}, "
                f"visited={self.nodes_visited}, "
                f"returned={self.nodes_returned})")


#: The explain record currently collecting, or None (the common case).
#: Hot-path sites read this once per call and test ``is None``.
ACTIVE: Optional[QueryExplain] = None


def current() -> Optional[QueryExplain]:
    """The explain record currently collecting, if any."""
    return ACTIVE


@contextmanager
def collect(path: str) -> Iterator[QueryExplain]:
    """Collect one query's execution record.

    Nested evaluations (a hybrid plan navigating its suffix calls the
    shared kernel again) accumulate into the same record — that is the
    point: the record totals the whole query.  A nested ``collect``
    (e.g. XQuery evaluating an inner path) stacks and restores.
    """
    global ACTIVE
    previous = ACTIVE
    record = QueryExplain(path)
    ACTIVE = record
    try:
        yield record
    finally:
        ACTIVE = previous


class ExplainLog:
    """A bounded in-memory log of finished explain records."""

    def __init__(self, limit: int = DEFAULT_EXPLAIN_LIMIT) -> None:
        self.limit = limit
        self.records: List[QueryExplain] = []

    def append(self, record: QueryExplain) -> None:
        if len(self.records) >= self.limit:
            del self.records[0]
        self.records.append(record)

    def last(self) -> Optional[QueryExplain]:
        return self.records[-1] if self.records else None

    def reset(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[QueryExplain]:
        return iter(self.records)

    def __repr__(self) -> str:
        return f"ExplainLog({len(self.records)} records)"
