"""Span tracing: nested wall-time measurements via context managers.

A :class:`Tracer` records :class:`SpanRecord`\\ s into an in-memory
ring; spans nest (the tracer tracks depth), carry string tags, and are
timed with an injectable monotonic clock so tests can pin durations
exactly.  ``event()`` records a zero-duration span — used for discrete
occurrences that want a site attached (e.g. a conformance violation
with its location path).

When the tracer is disabled, :meth:`Tracer.span` returns a shared
null context manager: the cost of a disabled span is one attribute
test and one constant return, with no allocation.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, List, Optional

#: Default bound on retained spans; oldest records are dropped beyond it
#: (tracing must never grow without bound inside a long benchmark run).
DEFAULT_SPAN_LIMIT = 10_000


class SpanRecord:
    """One completed (or still-open) span."""

    __slots__ = ("name", "start", "elapsed", "depth", "tags")

    def __init__(self, name: str, start: float, depth: int,
                 tags: dict) -> None:
        self.name = name
        self.start = start
        #: Wall-clock seconds; ``None`` while the span is still open.
        self.elapsed: Optional[float] = None
        self.depth = depth
        self.tags = tags

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "depth": self.depth,
            "elapsed_s": self.elapsed,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:
        elapsed = ("open" if self.elapsed is None
                   else f"{self.elapsed * 1e3:.3f}ms")
        return f"SpanRecord({self.name!r}, {elapsed}, depth={self.depth})"


class _NullSpan:
    """The shared no-op context manager handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An armed span: records on entry, stamps elapsed on exit."""

    __slots__ = ("_tracer", "_name", "_tags", "_record", "_started")

    def __init__(self, tracer: "Tracer", name: str, tags: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._tags = tags

    def __enter__(self) -> SpanRecord:
        self._record = self._tracer._open(self._name, self._tags)
        self._started = self._tracer._clock()
        return self._record

    def __exit__(self, *exc) -> bool:
        self._tracer._close(self._record,
                            self._tracer._clock() - self._started)
        return False


class Tracer:
    """Records nested spans; disabled by default.

    *clock* is any zero-argument callable returning monotonically
    increasing seconds — ``time.perf_counter`` in production, a counter
    stub in the determinism tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 limit: int = DEFAULT_SPAN_LIMIT) -> None:
        self._clock = clock
        self.enabled = False
        self.limit = limit
        self.records: List[SpanRecord] = []
        self._depth = 0
        self.dropped = 0

    # -- recording ------------------------------------------------------

    def span(self, name: str, **tags: object):
        """A context manager timing one named span (no-op if disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, tags)

    def event(self, name: str, **tags: object) -> None:
        """Record a zero-duration span (a discrete occurrence)."""
        if not self.enabled:
            return
        record = self._open(name, tags)
        self._close(record, 0.0)

    def _open(self, name: str, tags: dict) -> SpanRecord:
        record = SpanRecord(name, self._clock(), self._depth, tags)
        self._depth += 1
        if len(self.records) >= self.limit:
            del self.records[0]
            self.dropped += 1
        self.records.append(record)
        return record

    def _close(self, record: SpanRecord, elapsed: float) -> None:
        self._depth -= 1
        record.elapsed = elapsed

    # -- inspection -----------------------------------------------------

    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def find(self, name: str) -> List[SpanRecord]:
        return [r for r in self.records if r.name == name]

    def iter_roots(self) -> Iterator[SpanRecord]:
        return (r for r in self.records if r.depth == 0)

    def reset(self) -> None:
        self.records.clear()
        self._depth = 0
        self.dropped = 0

    def chrome_trace(self) -> dict:
        """The recorded spans as a Chrome-trace-viewer object.

        Complete ``"X"`` (duration) events in microseconds, loadable
        directly by ``chrome://tracing`` / Perfetto.  Open spans are
        exported with zero duration; tags ride in ``args``.
        """
        events = []
        for record in self.records:
            events.append({
                "name": record.name,
                "ph": "X",
                "ts": record.start * 1e6,
                "dur": (record.elapsed or 0.0) * 1e6,
                "pid": 1,
                "tid": 1,
                "args": {key: str(value)
                         for key, value in record.tags.items()},
            })
        return {"traceEvents": events,
                "displayTimeUnit": "ms",
                "otherData": {"dropped_spans": self.dropped}}

    def dump(self) -> str:
        """A human-readable indented trace (records in start order)."""
        if not self.records:
            return "(no spans recorded)"
        lines = []
        for record in self.records:
            indent = "  " * record.depth
            elapsed = ("open" if record.elapsed is None
                       else f"{record.elapsed * 1e3:.3f}ms")
            tags = ""
            if record.tags:
                tags = " " + " ".join(f"{k}={v}"
                                      for k, v in record.tags.items())
            lines.append(f"{indent}{record.name:<32s} {elapsed}{tags}")
        if self.dropped:
            lines.append(f"({self.dropped} older spans dropped)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"Tracer({state}, {len(self.records)} spans)"
